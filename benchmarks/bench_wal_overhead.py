#!/usr/bin/env python
"""Write-ahead-log overhead of the durability subsystem.

Measures the makespan of a GBU batched-update workload on a single
:class:`~repro.core.index.MovingObjectIndex` with durability off (the
baseline), with group commit (one appended + fsynced frame per batch, the
intended operating point) and with ``sync="none"`` (append + OS flush, no
fsync — isolates the fsync cost from the serialisation cost).  A second,
smaller per-operation workload contrasts ``sync="always"`` (one fsync per
update, the classical worst case group commit exists to amortise) against
its own no-WAL baseline.

The headline number is ``group_overhead`` — group-commit makespan divided
by the no-WAL makespan on the batched workload.  The durability design
targets ``<= 1.25`` at full scale: logging a batch is one frame append and
one fsync riding an execution that already touches hundreds of pages.
``--check`` enforces that ceiling on the checked-in report
(``BENCH_wal_overhead.json``).

Crash-recovery equivalence is asserted in-run: after the group-commit cell
finishes, the benchmark reloads the index purely from its checkpoint plus
WAL replay (:func:`repro.core.persistence.load_index`) and requires final
object positions, range-query answers and kNN answers to match the live
index — the overhead being measured is the cost of an actually working
recovery path, not of writes nobody can read back.

Usage::

    python benchmarks/bench_wal_overhead.py               # full run
    python benchmarks/bench_wal_overhead.py --scale 0.05  # CI smoke scale
    python benchmarks/bench_wal_overhead.py --check       # validate JSON

``--check`` validates the report's schema and — only when the report was
produced at full scale — fails (exit 1) when ``group_overhead`` exceeds
``--max-overhead`` (default 1.25).  At smoke scale only schema and parity
are enforced (timing is meaningless there).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import open_index  # noqa: E402
from repro.core.persistence import load_index  # noqa: E402
from repro.geometry import Point, Rect, kernels  # noqa: E402

SCHEMA_VERSION = 1
#: (workload, sync) cells; sync=None means no durability attached at all.
CELLS: Tuple[Tuple[str, Optional[str]], ...] = (
    ("batch", None),
    ("batch", "group"),
    ("batch", "none"),
    ("perop", None),
    ("perop", "always"),
)

#: Full-scale workload (scale = 1.0).
BASE_OBJECTS = 4_000
BASE_UPDATES = 8_000
BASE_BATCH = 500
#: Per-op cells run a smaller stream: ``always`` pays one fsync per update,
#: which is exactly the point of the contrast and needs no 8k samples.
BASE_PEROP_UPDATES = 2_000
GROUP_SIZE = 64
PARITY_WINDOWS = 8
PARITY_KNN = 8
KNN_K = 10


def make_workload(objects: int, updates: int, seed: int):
    """Initial placements plus a deterministic stream of (oid, new_position)."""
    rng = random.Random(seed)
    points = [(oid, Point(rng.random(), rng.random())) for oid in range(objects)]
    positions = {oid: p for oid, p in points}
    moves: List[Tuple[int, Point]] = []
    for _ in range(updates):
        oid = rng.randrange(objects)
        p = positions[oid]
        target = Point(
            p.x + rng.uniform(-0.05, 0.05), p.y + rng.uniform(-0.05, 0.05)
        ).clamped()
        positions[oid] = target
        moves.append((oid, target))
    return points, moves


def parity_probes(seed: int):
    rng = random.Random(seed + 1)
    windows = []
    for _ in range(PARITY_WINDOWS):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        windows.append(Rect(x, y, x + 0.2, y + 0.2))
    knn_points = [Point(rng.random(), rng.random()) for _ in range(PARITY_KNN)]
    return windows, knn_points


def fingerprint_of(index, probes) -> dict:
    windows, knn_points = probes
    return {
        # Range answers are compared as sets: a recovered tree holds the
        # same objects in a physically different page layout.
        "ranges": [sorted(index.range_query(window)) for window in windows],
        "knn": [index.knn(point, KNN_K) for point in knn_points],
        "positions": sorted(
            (oid, p.x, p.y) for oid, p in index._positions.items()
        ),
        "objects": len(index),
    }


def run_cell(
    workload_kind: str,
    sync: Optional[str],
    workload,
    probes,
    batch: int,
    wal_root: Path,
) -> Tuple[float, dict, Optional[Path]]:
    """One measurement: build, run, fingerprint; returns the WAL dir if any."""
    points, moves = workload
    spec: Dict = {"config": {"strategy": "GBU"}}
    wal_dir: Optional[Path] = None
    if sync is not None:
        wal_dir = wal_root / f"{workload_kind}-{sync}"
        if wal_dir.exists():
            shutil.rmtree(wal_dir)
        spec["durability"] = {
            "dir": str(wal_dir),
            "sync": sync,
            "group_size": GROUP_SIZE,
        }
    index = open_index(spec)
    index.load(points)  # checkpoints here when durable: the WAL logs updates only

    start = time.perf_counter()
    if workload_kind == "batch":
        for lo in range(0, len(moves), batch):
            index.update_many(moves[lo : lo + batch])
    else:
        for oid, target in moves:
            index.update(oid, target)
    makespan = time.perf_counter() - start

    if index.durability is not None:
        index.durability.flush()
    fingerprint = fingerprint_of(index, probes)
    index.validate()
    return makespan, fingerprint, wal_dir


def assert_recovery_equivalence(wal_dir: Path, live_fingerprint: dict, probes) -> None:
    """Reload purely from checkpoint + WAL replay; answers must match."""
    recovered = load_index(wal_dir / "checkpoint.json")
    recovered.validate()
    if fingerprint_of(recovered, probes) != live_fingerprint:
        raise AssertionError(
            f"recovery from {wal_dir} diverged from the live index: "
            "positions/answers mismatch after WAL replay"
        )


def run_benchmark(scale: float, repeats: int, seed: int) -> dict:
    objects = max(80, int(BASE_OBJECTS * scale))
    updates = max(200, int(BASE_UPDATES * scale))
    perop_updates = max(100, int(BASE_PEROP_UPDATES * scale))
    batch = max(50, int(BASE_BATCH * scale))
    probes = parity_probes(seed)
    workloads = {
        "batch": make_workload(objects, updates, seed),
        "perop": make_workload(objects, perop_updates, seed),
    }

    wal_root = Path(tempfile.mkdtemp(prefix="bench-wal-"))
    cells: List[dict] = []
    derived: Dict[str, float] = {}
    try:
        best: Dict[Tuple[str, Optional[str]], float] = {}
        baselines: Dict[str, Optional[dict]] = {"batch": None, "perop": None}
        recovery_checked = False
        for repeat in range(repeats):
            for workload_kind, sync in CELLS:
                makespan, fingerprint, wal_dir = run_cell(
                    workload_kind,
                    sync,
                    workloads[workload_kind],
                    probes,
                    batch,
                    wal_root,
                )
                if sync is None:
                    if baselines[workload_kind] is None:
                        baselines[workload_kind] = fingerprint
                elif fingerprint != baselines[workload_kind]:
                    raise AssertionError(
                        f"{workload_kind}/{sync} diverged from the no-WAL "
                        "baseline: logging must not change answers"
                    )
                if sync == "group" and not recovery_checked:
                    assert assert_recovery_equivalence(
                        wal_dir, fingerprint, probes
                    ) is None
                    recovery_checked = True
                key = (workload_kind, sync)
                if key not in best or makespan < best[key]:
                    best[key] = makespan
                label = "off" if sync is None else sync
                print(
                    f"  repeat {repeat + 1}/{repeats} {workload_kind}/{label}: "
                    f"{makespan:.3f}s",
                    file=sys.stderr,
                )
        for workload_kind, sync in CELLS:
            makespan = best[(workload_kind, sync)]
            baseline = best[(workload_kind, None)]
            cells.append(
                {
                    "workload": workload_kind,
                    "sync": "off" if sync is None else sync,
                    "seconds": round(makespan, 4),
                    "overhead_vs_off": round(makespan / baseline, 3),
                }
            )
        derived["group_overhead"] = round(
            best[("batch", "group")] / best[("batch", None)], 3
        )
        derived["none_overhead"] = round(
            best[("batch", "none")] / best[("batch", None)], 3
        )
        derived["always_overhead"] = round(
            best[("perop", "always")] / best[("perop", None)], 3
        )
    finally:
        shutil.rmtree(wal_root, ignore_errors=True)

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "wal_overhead",
        "paper": "conf_vldb_LeeHJT03",
        "scale": scale,
        "objects": objects,
        "updates": updates,
        "perop_updates": perop_updates,
        "batch": batch,
        "group_size": GROUP_SIZE,
        "repeats": repeats,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel_backend": kernels.get_backend(),
        "answer_parity": "asserted in-run against the no-WAL baseline",
        "recovery": "checkpoint + WAL replay equivalence asserted in-run",
        "cells": cells,
        "derived": derived,
    }


def validate_report(report: dict, max_overhead: float) -> List[str]:
    """Schema + (full-scale only) overhead-ceiling validation; empty = ok."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if report.get("benchmark") != "wal_overhead":
        problems.append(
            f"benchmark is {report.get('benchmark')!r}, expected 'wal_overhead'"
        )
    for key in (
        "scale",
        "objects",
        "updates",
        "group_size",
        "cpu_count",
        "python",
        "kernel_backend",
        "cells",
        "derived",
    ):
        if key not in report:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    seen = set()
    for row in report["cells"]:
        for key in ("workload", "sync", "seconds", "overhead_vs_off"):
            if key not in row:
                problems.append(f"cell missing {key!r}: {row}")
                break
        else:
            if not (isinstance(row["seconds"], (int, float)) and row["seconds"] > 0):
                problems.append(f"non-positive seconds: {row}")
            seen.add((row["workload"], row["sync"]))
    for workload_kind, sync in CELLS:
        label = "off" if sync is None else sync
        if (workload_kind, label) not in seen:
            problems.append(f"missing cell {(workload_kind, label)}")

    if report["scale"] >= 1.0:
        overhead = report["derived"].get("group_overhead")
        if overhead is None:
            problems.append("derived missing 'group_overhead'")
        elif overhead > max_overhead:
            problems.append(
                f"group_overhead = {overhead} exceeds the ceiling {max_overhead}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0, help="workload scale (1.0 = 4k objects)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repeats per cell; best is reported"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_wal_overhead.json",
        help="report path (default: repo root BENCH_wal_overhead.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the existing report instead of running the benchmark",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=1.25,
        help="with --check on a full-scale report: group-commit overhead ceiling",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            report = json.loads(args.output.read_text())
        except (OSError, ValueError) as error:
            print(f"cannot read report {args.output}: {error}", file=sys.stderr)
            return 1
        problems = validate_report(report, args.max_overhead)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"OK: {args.output} valid; "
            + ", ".join(f"{k}={v}x" for k, v in sorted(report["derived"].items()))
        )
        return 0

    report = run_benchmark(args.scale, args.repeats, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for key, value in sorted(report["derived"].items()):
        print(f"  {key}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
