"""Figure 6(g)-(h) — effect of the buffer size.

Paper shape to reproduce: every technique improves as the buffer grows, for
updates and for queries; GBU stays clearly the best throughout; LBU loses its
advantage over TD once a buffer exists (TD's repeated descents hit the buffer,
while LBU's scattered parent/sibling accesses benefit less).
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig6_buffers(figure_runner):
    rows = figure_runner("fig6_buffers")
    update = pivot_by_strategy(rows, "avg_update_io")
    query = pivot_by_strategy(rows, "avg_query_io")
    buffers = sorted(update)

    # Bigger buffers help every strategy (comparing the extremes).
    for strategy in ("TD", "LBU", "GBU"):
        assert update[buffers[-1]][strategy] < update[buffers[0]][strategy]
        assert query[buffers[-1]][strategy] <= query[buffers[0]][strategy] + 1e-9

    # GBU remains the cheapest updater at the paper-relevant buffer sizes
    # (up to 5 %); at 10 % the working set of this scaled-down index fits
    # almost entirely in the buffer and TD catches up to within a few
    # percent, so only near-parity is required there.
    for percent in buffers:
        values = update[percent]
        if percent <= 5.0:
            assert values["GBU"] < values["TD"]
        else:
            assert values["GBU"] <= values["TD"] * 1.1

    # The buffer shrinks TD's disadvantage: the TD/GBU gap is smaller at the
    # largest buffer than without a buffer.
    gap_none = update[buffers[0]]["TD"] - update[buffers[0]]["GBU"]
    gap_large = update[buffers[-1]]["TD"] - update[buffers[-1]]["GBU"]
    assert gap_large <= gap_none

    # Once a buffer exists LBU loses (most of) its advantage over TD — the
    # paper's Figure 6(g) observation.  At the largest buffer LBU must not be
    # meaningfully cheaper than TD anymore.
    assert update[buffers[-1]]["LBU"] >= update[buffers[-1]]["TD"] * 0.95
