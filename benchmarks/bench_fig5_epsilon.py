"""Figure 5(a)-(d) — effect of ε on update and query cost (I/O and CPU).

Paper shape to reproduce:

* GBU has the lowest update I/O and CPU at every ε; its update cost falls as
  ε grows (extensions succeed more often) while its query cost rises (more
  dead space), so a small ε (0.003) is the sweet spot.
* TD is flat in ε (the parameter does not apply to it).
* LBU's update cost is not much better (in the paper: worse) than TD's, and
  its query cost is above TD's because of the all-direction enlargement.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig5_epsilon(figure_runner):
    rows = figure_runner("fig5_epsilon")
    update = pivot_by_strategy(rows, "avg_update_io")
    query = pivot_by_strategy(rows, "avg_query_io")

    # TD ignores epsilon entirely.
    td_updates = {round(values["TD"], 6) for values in update.values()}
    assert len(td_updates) == 1

    # GBU beats TD on update I/O at every epsilon.
    for values in update.values():
        assert values["GBU"] < values["TD"]

    # Larger epsilon helps GBU updates ...
    epsilons = sorted(update)
    assert update[epsilons[-1]]["GBU"] <= update[epsilons[0]]["GBU"] + 1e-9
    # ... and hurts GBU queries.
    assert query[epsilons[-1]]["GBU"] >= query[epsilons[0]]["GBU"] - 1e-9

    # LBU queries are no better than TD queries (enlargement costs overlap).
    for values in query.values():
        assert values["LBU"] >= values["TD"] * 0.95
