"""Figure 5(e)-(f) — effect of the distance threshold D.

Paper shape to reproduce: GBU performs best for every D; TD and LBU are flat
because the parameter only applies to GBU; GBU's update cost varies only
slightly with D (favouring extension for slow movers is marginally better),
and small D keeps query cost down because shifting reduces overlap.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig5_distance_threshold(figure_runner):
    rows = figure_runner("fig5_distance")
    update = pivot_by_strategy(rows, "avg_update_io")

    for values in update.values():
        assert values["GBU"] < values["TD"]

    td_values = {round(values["TD"], 6) for values in update.values()}
    lbu_values = {round(values["LBU"], 6) for values in update.values()}
    assert len(td_values) == 1
    assert len(lbu_values) == 1

    # GBU's sensitivity to D is mild: max/min within 25 %.
    gbu_values = [values["GBU"] for values in update.values()]
    assert max(gbu_values) <= min(gbu_values) * 1.25
