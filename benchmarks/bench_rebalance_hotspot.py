"""Rebalance hotspot — online boundary adjustment vs. the static grid.

Shape to reproduce: under the sharply skewed hotspot workload a static
uniform grid concentrates most objects (and all their update traffic) on one
shard, whose taller tree makes every top-down update more expensive; with
the online rebalancer attached, the partition boundaries are re-cut by
observed load and the displaced objects migrate as conflict-scheduled bulk
leaf groups interleaved with the live clients.  The acceptance criterion:
the rebalanced hotspot makespan — *including* the one-off migration cost —
is strictly below the static hotspot makespan and within 1.5x of the
uniform-workload makespan at the same shard and client count, while the
final shard populations converge towards balance.
"""

def test_rebalance_hotspot(figure_runner):
    rows = figure_runner("rebalance_hotspot")
    series = {row.x_value for row in rows}
    assert series == {"uniform", "hotspot", "hotspot+rebalance"}
    makespan = {row.x_value: row.extras["makespan"] for row in rows}
    imbalance = {row.x_value: row.extras["imbalance"] for row in rows}
    rebalances = {row.x_value: row.extras["rebalances"] for row in rows}

    # Acceptance criterion: the rebalancer strictly beats the static grid on
    # the hotspot workload and lands within 1.5x of the uniform makespan.
    assert makespan["hotspot+rebalance"] < makespan["hotspot"]
    assert makespan["hotspot+rebalance"] <= 1.5 * makespan["uniform"]

    # The feedback loop actually ran and actually balanced the shards.
    assert rebalances["hotspot+rebalance"] >= 1
    assert rebalances["hotspot"] == 0
    assert imbalance["hotspot+rebalance"] < imbalance["hotspot"]

    # The static hotspot run shows the skew the rebalancer removes.
    assert imbalance["hotspot"] > 1.5
