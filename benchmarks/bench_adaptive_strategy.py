#!/usr/bin/env python
"""Adaptive per-shard strategy selection vs. every static global strategy.

The paper's central trade-off — top-down vs. bottom-up update strategies win
under different update/query mixes — bites hardest on a sharded deployment
where shards see different workloads.  This benchmark runs a mixed two-shard
workload where no single global strategy wins: shard 0 is a hot cell of
objects making short moves (its working set fits the 8 % buffer, so TD's
descents are nearly free while every bottom-up update pays an unbuffered
hash probe — TD wins), shard 1 is a uniform spread answering 0.1-extent
window queries (buffer-thrashing, so GBU's summary-guided leaf-only query
path wins).  Five cells: the four static global strategies and the adaptive
configuration (:mod:`repro.shard.adaptive` — Section 4 cost models weighted
by each shard's observed mix, movement distances and buffer hit ratio).

The makespan is the summed per-shard charged I/O (physical reads + writes +
unbuffered hash probes), deterministic at fixed seed.  The adaptive cell
starts on NAIVE — a strategy that wins *neither* shard — so both switches
are real work, and their full cost (warmup under the wrong strategy, the
install sweeps) lands inside the measured makespan.

The headline criterion, asserted **in-run** and by ``--check`` on the
checked-in report (``BENCH_adaptive_strategy.json``): the adaptive makespan
is strictly below every static strategy's.  Answer parity is asserted
in-run too — every cell must end with identical object positions.

The workload floors are high relative to ``--scale`` (the buffer-regime
contrast only exists at the calibrated size), so ``--scale 0.05`` smoke
runs execute the same workload; they exist to prove the pipeline runs.

Usage::

    python benchmarks/bench_adaptive_strategy.py              # full run
    python benchmarks/bench_adaptive_strategy.py --scale 0.05 # CI smoke
    python benchmarks/bench_adaptive_strategy.py --check      # validate JSON
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.figures import (  # noqa: E402
    ADAPTIVE_STRATEGY_BUFFER_PERCENT,
    ADAPTIVE_STRATEGY_INITIAL,
    ADAPTIVE_STRATEGY_PAGE_SIZE,
    ADAPTIVE_STRATEGY_POLICY,
    ADAPTIVE_STRATEGY_SHARDS,
    ADAPTIVE_STRATEGY_VARIANTS,
    adaptive_mixed_workload,
    run_adaptive_variant,
)
from repro.geometry import kernels  # noqa: E402

SCHEMA_VERSION = 1
STATIC_VARIANTS = tuple(v for v in ADAPTIVE_STRATEGY_VARIANTS if v != "adaptive")


def run_benchmark(scale: float, seed: int) -> dict:
    points, ops = adaptive_mixed_workload(scale, seed)
    cells: List[dict] = []
    fingerprints = set()
    by_variant: Dict[str, int] = {}
    for variant in ADAPTIVE_STRATEGY_VARIANTS:
        cell = run_adaptive_variant(variant, points, ops)
        fingerprints.add(cell.pop("fingerprint"))
        by_variant[variant] = cell["makespan_io"]
        cells.append(cell)
        print(
            f"  {variant:8s} makespan_io={cell['makespan_io']:7d} "
            f"per-shard={cell['shard_io']} "
            f"strategies={cell['strategies']} switches={cell['switches']}",
            file=sys.stderr,
        )
    if len(fingerprints) != 1:
        raise AssertionError(
            "variants diverged on final object positions: the makespan "
            "comparison is meaningless unless every cell indexes the same data"
        )

    statics = {name: by_variant[name] for name in STATIC_VARIANTS}
    best_static = min(statics, key=statics.get)
    adaptive = by_variant["adaptive"]
    # The headline criterion, switch cost included: strictly below EVERY
    # static global strategy (the floors keep this the calibrated regime at
    # any --scale, so the assertion holds in smoke runs too).
    for name, makespan in statics.items():
        if adaptive >= makespan:
            raise AssertionError(
                f"adaptive makespan {adaptive} is not strictly below "
                f"static {name} ({makespan})"
            )

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "adaptive_strategy",
        "paper": "conf_vldb_LeeHJT03",
        "scale": scale,
        "seed": seed,
        "shards": ADAPTIVE_STRATEGY_SHARDS,
        "objects": len(points),
        "operations": len(ops),
        "page_size": ADAPTIVE_STRATEGY_PAGE_SIZE,
        "buffer_percent": ADAPTIVE_STRATEGY_BUFFER_PERCENT,
        "initial_strategy": ADAPTIVE_STRATEGY_INITIAL,
        "policy": dict(ADAPTIVE_STRATEGY_POLICY),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel_backend": kernels.get_backend(),
        "metric": "summed per-shard physical reads + writes + hash probes",
        "answer_parity": "asserted in-run across all cells",
        "switch_cost": "inside the measured makespan (adaptive starts on "
        + ADAPTIVE_STRATEGY_INITIAL
        + ")",
        "cells": cells,
        "derived": {
            "adaptive_makespan_io": adaptive,
            "best_static": best_static,
            "best_static_makespan_io": statics[best_static],
            "ratio_vs_best_static": round(adaptive / statics[best_static], 4),
        },
    }


def validate_report(report: dict, max_ratio: float) -> List[str]:
    """Schema + strict-win validation; empty list = report is acceptable."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if report.get("benchmark") != "adaptive_strategy":
        problems.append(
            f"benchmark is {report.get('benchmark')!r}, "
            "expected 'adaptive_strategy'"
        )
    for key in (
        "scale",
        "objects",
        "operations",
        "buffer_percent",
        "policy",
        "cells",
        "derived",
    ):
        if key not in report:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    makespans: Dict[str, int] = {}
    for cell in report["cells"]:
        for key in ("variant", "makespan_io", "shard_io", "strategies", "switches"):
            if key not in cell:
                problems.append(f"cell missing {key!r}: {cell}")
                break
        else:
            if not (
                isinstance(cell["makespan_io"], int) and cell["makespan_io"] > 0
            ):
                problems.append(f"non-positive makespan: {cell}")
            makespans[cell["variant"]] = cell["makespan_io"]
    for variant in ADAPTIVE_STRATEGY_VARIANTS:
        if variant not in makespans:
            problems.append(f"missing cell {variant!r}")
    if problems:
        return problems

    # Strict win over every static, at any scale: the workload floors mean
    # every report was produced in the calibrated regime.
    adaptive = makespans["adaptive"]
    for name in STATIC_VARIANTS:
        if adaptive >= makespans[name]:
            problems.append(
                f"adaptive makespan {adaptive} is not strictly below "
                f"static {name} ({makespans[name]})"
            )
    ratio = report["derived"].get("ratio_vs_best_static")
    if ratio is None:
        problems.append("derived missing 'ratio_vs_best_static'")
    elif ratio >= max_ratio:
        problems.append(
            f"ratio_vs_best_static = {ratio} is not below the ceiling {max_ratio}"
        )
    adaptive_cell = next(c for c in report["cells"] if c["variant"] == "adaptive")
    if adaptive_cell["switches"] < 2:
        problems.append(
            "adaptive cell reports fewer than 2 switches — the controller "
            "did not adapt both shards"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale (floored at the calibrated 3k objects/shard)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_adaptive_strategy.json",
        help="report path (default: repo root BENCH_adaptive_strategy.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the existing report instead of running the benchmark",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.0,
        help="with --check: adaptive/best-static ratio must be below this",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            report = json.loads(args.output.read_text())
        except (OSError, ValueError) as error:
            print(f"cannot read report {args.output}: {error}", file=sys.stderr)
            return 1
        problems = validate_report(report, args.max_ratio)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        derived = report["derived"]
        print(
            f"OK: {args.output} valid; adaptive="
            f"{derived['adaptive_makespan_io']} vs best static "
            f"{derived['best_static']}={derived['best_static_makespan_io']} "
            f"(ratio {derived['ratio_vs_best_static']})"
        )
        return 0

    report = run_benchmark(args.scale, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    derived = report["derived"]
    print(
        f"  adaptive {derived['adaptive_makespan_io']} vs best static "
        f"{derived['best_static']} {derived['best_static_makespan_io']} "
        f"(ratio {derived['ratio_vs_best_static']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
