"""Contention sweep — throughput vs. number of clients on the online engine.

Shape to reproduce: adding virtual clients raises throughput for every
strategy until lock contention saturates the schedule; the bottom-up
strategies, whose updates take fewer exclusive granules, stay above the
top-down baseline at every client count (the Section 3.2.2 argument made
measurable by online lock-scope prediction).

The conflict-aware batch scheduling counterpart (serial vs. concurrent
makespan of one Gaussian batch) runs through the ``batch_throughput`` figure
of the CLI registry: ``rtree-bottomup-bench batch_throughput``.
"""

from repro.bench.reporting import pivot_by_strategy


def test_contention_sweep(figure_runner):
    rows = figure_runner("contention_sweep")
    throughput = pivot_by_strategy(rows, "throughput")
    client_counts = sorted(throughput)

    # More clients never hurt: the engine's all-or-nothing acquisition has
    # no lock thrashing, so throughput is monotone up to saturation noise.
    for strategy in ("TD", "LBU", "GBU"):
        assert throughput[client_counts[-1]][strategy] >= throughput[client_counts[0]][strategy]

    # Bottom-up updates lock fewer exclusive granules, so under many clients
    # the bottom-up strategies sustain a higher transaction rate than TD.
    most = client_counts[-1]
    assert throughput[most]["LBU"] >= throughput[most]["TD"]
    assert throughput[most]["GBU"] >= throughput[most]["TD"]
