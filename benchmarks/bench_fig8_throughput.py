"""Figure 8 — throughput for varying update/query mixes under DGL.

Paper shape to reproduce: the throughput of TD (and LBU) is best at 100 %
queries and falls as the update share grows; the reverse holds for GBU, whose
optimised updates are cheaper than queries; GBU's throughput is consistently
above TD's whenever updates are present.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig8_throughput(figure_runner):
    rows = figure_runner("fig8_throughput")
    throughput = pivot_by_strategy(rows, "throughput")
    fractions = sorted(throughput)

    # TD loses throughput as the update share rises.
    assert throughput[fractions[-1]]["TD"] < throughput[fractions[0]]["TD"]

    # GBU's throughput at a pure-update mix is at least as high as at a
    # balanced mix (the paper's "reverse" trend).
    assert throughput[1.0]["GBU"] >= throughput[0.5]["GBU"] * 0.95

    # GBU is consistently at or above TD whenever updates are present.
    for fraction in fractions:
        if fraction == 0.0:
            continue
        assert throughput[fraction]["GBU"] >= throughput[fraction]["TD"]

    # At a pure-update mix the GBU advantage over TD is substantial.
    assert throughput[1.0]["GBU"] >= throughput[1.0]["TD"] * 1.2
