#!/usr/bin/env python
"""Wall-clock scaling of the parallel shard-execution backends.

Measures the makespan of a batched update workload over a 4-shard
:class:`~repro.shard.index.ShardedIndex` under each execution backend —
``serial`` (in-process, the baseline), ``thread`` and ``process`` with 2 and
4 workers — and writes a schema-versioned JSON report checked in at the
repository root (``BENCH_parallel_scaling.json``) as the per-PR scaling
figure.

Every backend executes the identical logical work: the benchmark itself
asserts, per cell, that final object positions, range-query answers, kNN
answers, and the aggregated I/O counters match the serial baseline exactly
(the shard-equivalence suite proves the same property under pytest).  The
makespan ratio serial/backend is therefore a pure execution-overlap
measurement.

Methodology
-----------
The simulated disk charges a real per-page transfer latency
(:attr:`~repro.storage.disk.DiskManager.io_latency_s`, default 0.25 ms here,
the same value in every cell), standing in for an actual storage device.
Under the serial backend the coordinator waits out every transfer in
sequence; the thread and process backends overlap the per-shard waits, which
is exactly the benefit a multi-shard deployment gets from parallel I/O
channels.  On a multi-core box the process backend additionally overlaps the
CPU work of the R-tree algorithms themselves; ``cpu_count`` is recorded in
the report so the figure is interpretable either way.  Each cell runs
``--repeats`` times and reports its best makespan (load noise only ever
slows a run down).

Two workloads are swept, mirroring the shard-rebalancing experiments:
``uniform`` (updates spread evenly over all shards — the balanced case the
acceptance ratio is measured on) and ``hotspot`` (80 % of updates hammer one
shard's region — the skewed case where scaling is bounded by the hottest
shard).

Usage::

    python benchmarks/bench_parallel_scaling.py               # full run
    python benchmarks/bench_parallel_scaling.py --scale 0.05  # CI smoke scale
    python benchmarks/bench_parallel_scaling.py --check       # validate JSON

``--check`` validates the report's schema and — only when the report was
produced at full scale — fails (exit 1) when the 4-worker process backend's
uniform-workload speedup falls below ``--min-speedup`` (default 1.5).  At
smoke scale only answer parity is enforced (timing is meaningless there).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import IndexConfig  # noqa: E402
from repro.geometry import Point, Rect, kernels  # noqa: E402
from repro.shard import ShardedIndex  # noqa: E402

SCHEMA_VERSION = 1
NUM_SHARDS = 4
WORKLOADS = ("uniform", "hotspot")
#: (backend, workers); serial is the baseline every other cell is checked
#: against and measured relative to.
CELLS: Tuple[Tuple[str, Optional[int]], ...] = (
    ("serial", None),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)

#: Full-scale workload (scale = 1.0).
BASE_OBJECTS = 4_000
BASE_UPDATES = 8_000
BASE_BATCH = 500
IO_LATENCY_MS = 0.25
PARITY_WINDOWS = 8
PARITY_KNN = 8
KNN_K = 10


def make_workload(kind: str, objects: int, updates: int, seed: int):
    """Initial placements plus a deterministic stream of (oid, new_position)."""
    rng = random.Random(seed)
    points = [(oid, Point(rng.random(), rng.random())) for oid in range(objects)]
    positions = {oid: p for oid, p in points}
    moves: List[Tuple[int, Point]] = []
    hot = Rect(0.0, 0.0, 0.5, 0.5)  # shard 0's cell in the 2x2 grid
    for _ in range(updates):
        if kind == "hotspot" and rng.random() < 0.8:
            # Hammer the hot cell: move a random object somewhere inside it.
            oid = rng.randrange(objects)
            target = Point(
                hot.xmin + rng.random() * (hot.xmax - hot.xmin),
                hot.ymin + rng.random() * (hot.ymax - hot.ymin),
            )
        else:
            oid = rng.randrange(objects)
            p = positions[oid]
            target = Point(
                p.x + rng.uniform(-0.05, 0.05), p.y + rng.uniform(-0.05, 0.05)
            ).clamped()
        positions[oid] = target
        moves.append((oid, target))
    return points, moves


def parity_probes(seed: int):
    rng = random.Random(seed + 1)
    windows = []
    for _ in range(PARITY_WINDOWS):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        windows.append(Rect(x, y, x + 0.2, y + 0.2))
    knn_points = [Point(rng.random(), rng.random()) for _ in range(PARITY_KNN)]
    return windows, knn_points


def run_cell(
    backend: str,
    workers: Optional[int],
    workload,
    probes,
    io_latency_s: float,
) -> Tuple[float, dict]:
    """One full measurement: build, attach, run, capture parity fingerprint."""
    points, moves = workload
    windows, knn_points = probes
    index = ShardedIndex(IndexConfig(strategy="GBU"), num_shards=NUM_SHARDS)
    index.load(points)
    if backend != "serial":
        index.set_parallel(backend=backend, workers=workers)
    # Identical simulated device latency in every cell — the only thing the
    # backends change is whether the per-shard waits overlap.
    index.set_io_latency(io_latency_s)

    start = time.perf_counter()
    for lo in range(0, len(moves), BATCH):
        index.update_many(moves[lo : lo + BATCH])
    makespan = time.perf_counter() - start

    # Parity fingerprint, captured while the backend is still attached (so
    # the queries themselves also take the parallel path).
    fingerprint = {
        "ranges": [sorted(index.range_query(window)) for window in windows],
        "knn": [index.knn(point, KNN_K) for point in knn_points],
        "positions": sorted(
            (oid, p.x, p.y)
            for oid, p in ((oid, index.position_of(oid)) for oid, _ in points)
        ),
        "io": index.io_snapshot().as_dict(),
        "objects": len(index),
    }
    if backend != "serial":
        index.detach_parallel()
    index.validate()
    return makespan, fingerprint


def run_benchmark(scale: float, repeats: int, seed: int) -> dict:
    global BATCH
    objects = max(80, int(BASE_OBJECTS * scale))
    updates = max(200, int(BASE_UPDATES * scale))
    BATCH = max(50, int(BASE_BATCH * scale))
    io_latency_s = IO_LATENCY_MS / 1000.0
    probes = parity_probes(seed)

    cells: List[dict] = []
    derived: Dict[str, float] = {}
    for workload_kind in WORKLOADS:
        workload = make_workload(workload_kind, objects, updates, seed)
        best: Dict[Tuple[str, Optional[int]], float] = {}
        baseline_fingerprint = None
        for repeat in range(repeats):
            for backend, workers in CELLS:
                makespan, fingerprint = run_cell(
                    backend, workers, workload, probes, io_latency_s
                )
                if backend == "serial":
                    if baseline_fingerprint is None:
                        baseline_fingerprint = fingerprint
                elif fingerprint != baseline_fingerprint:
                    raise AssertionError(
                        f"{backend}[{workers}] diverged from serial on "
                        f"{workload_kind}: answers/positions/IO mismatch"
                    )
                key = (backend, workers)
                if key not in best or makespan < best[key]:
                    best[key] = makespan
                label = backend if workers is None else f"{backend}[{workers}]"
                print(
                    f"  repeat {repeat + 1}/{repeats} {workload_kind} "
                    f"{label}: {makespan:.3f}s",
                    file=sys.stderr,
                )
        serial_time = best[("serial", None)]
        for backend, workers in CELLS:
            makespan = best[(backend, workers)]
            cells.append(
                {
                    "workload": workload_kind,
                    "backend": backend,
                    "workers": workers,
                    "seconds": round(makespan, 4),
                    "speedup_vs_serial": round(serial_time / makespan, 3),
                }
            )
            if backend != "serial":
                derived[f"{backend}{workers}_speedup_{workload_kind}"] = round(
                    serial_time / makespan, 3
                )

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "parallel_scaling",
        "paper": "conf_vldb_LeeHJT03",
        "scale": scale,
        "num_shards": NUM_SHARDS,
        "objects": objects,
        "updates": updates,
        "batch": BATCH,
        "io_latency_ms": IO_LATENCY_MS,
        "repeats": repeats,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel_backend": kernels.get_backend(),
        "answer_parity": "asserted in-run against the serial baseline",
        "cells": cells,
        "derived": derived,
    }


def validate_report(report: dict, min_speedup: float) -> List[str]:
    """Schema + (full-scale only) scaling validation; empty list = ok."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if report.get("benchmark") != "parallel_scaling":
        problems.append(
            f"benchmark is {report.get('benchmark')!r}, expected 'parallel_scaling'"
        )
    for key in (
        "scale",
        "num_shards",
        "objects",
        "updates",
        "io_latency_ms",
        "cpu_count",
        "python",
        "kernel_backend",
        "cells",
        "derived",
    ):
        if key not in report:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    seen = set()
    for row in report["cells"]:
        for key in ("workload", "backend", "workers", "seconds", "speedup_vs_serial"):
            if key not in row:
                problems.append(f"cell missing {key!r}: {row}")
                break
        else:
            if not (isinstance(row["seconds"], (int, float)) and row["seconds"] > 0):
                problems.append(f"non-positive seconds: {row}")
            seen.add((row["workload"], row["backend"], row["workers"]))
    for workload in WORKLOADS:
        for backend, workers in CELLS:
            if (workload, backend, workers) not in seen:
                problems.append(f"missing cell {(workload, backend, workers)}")

    if report["scale"] >= 1.0:
        key = "process4_speedup_uniform"
        speedup = report["derived"].get(key)
        if speedup is None:
            problems.append(f"derived missing {key!r}")
        elif speedup < min_speedup:
            problems.append(
                f"{key} = {speedup} is below the required minimum {min_speedup}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0, help="workload scale (1.0 = 4k objects)"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="repeats per cell; best is reported"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel_scaling.json",
        help="report path (default: repo root BENCH_parallel_scaling.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the existing report instead of running the benchmark",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="with --check on a full-scale report: minimum process[4] uniform speedup",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            report = json.loads(args.output.read_text())
        except (OSError, ValueError) as error:
            print(f"cannot read report {args.output}: {error}", file=sys.stderr)
            return 1
        problems = validate_report(report, args.min_speedup)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"OK: {args.output} valid; "
            + ", ".join(f"{k}={v}x" for k, v in sorted(report["derived"].items()))
        )
        return 0

    report = run_benchmark(args.scale, args.repeats, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for key, value in sorted(report["derived"].items()):
        print(f"  {key}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
