"""Section 3.1 — how often does each bottom-up strategy fall back to top-down?

The paper motivates the whole design with the observation that the naive
bottom-up idea (update in place or give up) leaves ~82 % of the updates
top-down on uniform data.  This benchmark reproduces the ordering: the naive
strategy falls back the most, LBU much less, and GBU almost never.
"""


def test_naive_fallback(figure_runner):
    rows = figure_runner("naive_fallback")
    fractions = {row.strategy: row.extras["top_down_fraction"] for row in rows}

    assert fractions["NAIVE"] > fractions["LBU"] > fractions["GBU"]
    # The naive strategy loses the majority of its updates to top-down
    # processing (82 % in the paper's full-scale setting).
    assert fractions["NAIVE"] > 0.5
    # GBU handles almost everything bottom-up.
    assert fractions["GBU"] < 0.05
