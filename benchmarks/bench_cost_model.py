"""Section 4 — analytical cost model vs. measured bottom-up cost.

Reproduces the paper's bound: the worst-case bottom-up update cost (even at
the maximum movement distance) does not exceed the best-case top-down cost
``2 * height + 1``, and the measured GBU update cost stays within the
analytical envelope across movement distances.
"""

from repro.bench.reporting import pivot_by_strategy


def test_cost_model(figure_runner):
    rows = figure_runner("cost_model")

    analytic_td = [row for row in rows if row.strategy == "TD-analytic"]
    analytic_gbu = [row for row in rows if row.strategy == "GBU-analytic"]
    measured_gbu = [row for row in rows if row.strategy == "GBU"]

    assert analytic_td and analytic_gbu and measured_gbu
    td_best_case = analytic_td[0].avg_update_io

    # The analytical bottom-up cost never exceeds the top-down best case.
    for row in analytic_gbu:
        assert row.avg_update_io <= td_best_case

    # The measured GBU update cost is bounded by the top-down best case plus
    # a small allowance for node splits the model does not charge.
    for row in measured_gbu:
        assert row.avg_update_io <= td_best_case + 2.0

    # Both the model and the measurement increase with the movement distance.
    model_costs = [row.avg_update_io for row in sorted(analytic_gbu, key=lambda r: r.x_value)]
    assert model_costs == sorted(model_costs)
    measured_costs = [row.avg_update_io for row in sorted(measured_gbu, key=lambda r: r.x_value)]
    assert measured_costs[-1] > measured_costs[0]
