"""Batch vs per-operation update throughput, for all four strategies.

This benchmark quantifies the group-by-leaf batch engine
(:mod:`repro.update.batch`): the same Gaussian update workload is applied
once through the per-operation ``MovingObjectIndex.update`` loop and once
through ``MovingObjectIndex.update_many``, and the physical page I/O and
wall-clock throughput are compared.  The batch run must perform **strictly
fewer physical page reads** for every strategy — grouping k co-located
updates onto one leaf read/write is the whole point — while producing the
same query answers (checked here with a post-run probe and ``validate()``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py \
        [--objects N] [--updates N] [--batch-size N] [--distribution gaussian]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py -q
"""

from __future__ import annotations

import argparse
import random
import time
from pathlib import Path

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Rect
from repro.workload import WorkloadGenerator, WorkloadSpec

STRATEGIES = ["TD", "NAIVE", "LBU", "GBU"]
REPORT_PATH = Path(__file__).parent / "reports" / "batch_throughput.txt"


def build_spec(objects: int, updates: int, distribution: str, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        num_objects=objects,
        num_updates=updates,
        num_queries=0,
        distribution=distribution,
        max_distance=0.03,
        seed=seed,
    )


def run_strategy(strategy: str, spec: WorkloadSpec, batch_size: int) -> dict:
    """Apply the identical workload per-op and batched; return both cost rows."""
    per_op = MovingObjectIndex(IndexConfig(strategy=strategy))
    batched = MovingObjectIndex(IndexConfig(strategy=strategy))
    gen_a, gen_b = WorkloadGenerator(spec), WorkloadGenerator(spec)
    per_op.load(gen_a.initial_objects())
    batched.load(gen_b.initial_objects())

    started = time.perf_counter()
    for oid, _old, new in gen_a.updates():
        per_op.update(oid, new)
    per_op_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch_results = [
        batched.update_many([(oid, new) for oid, _old, new in chunk])
        for chunk in gen_b.update_batches(batch_size)
    ]
    batch_seconds = time.perf_counter() - started

    # Equivalence probe: identical answers, valid structures.
    rng = random.Random(spec.seed)
    for _ in range(25):
        cx, cy, side = rng.random(), rng.random(), rng.uniform(0.0, 0.2)
        window = Rect(
            max(0.0, cx - side),
            max(0.0, cy - side),
            min(1.0, cx + side),
            min(1.0, cy + side),
        )
        assert sorted(per_op.range_query(window)) == sorted(batched.range_query(window))
    per_op.validate()
    batched.validate()

    return {
        "strategy": strategy,
        "per_op_reads": per_op.stats.physical_reads,
        "per_op_writes": per_op.stats.physical_writes,
        "per_op_io": per_op.stats.total_physical_io,
        "per_op_seconds": per_op_seconds,
        "batch_reads": batched.stats.physical_reads,
        "batch_writes": batched.stats.physical_writes,
        "batch_io": batched.stats.total_physical_io,
        "batch_seconds": batch_seconds,
        "groups": sum(result.groups for result in batch_results),
        "residuals": sum(result.residuals for result in batch_results),
        "coalesced": sum(result.coalesced for result in batch_results),
        "updates": spec.num_updates,
    }


def render(rows: list, spec: WorkloadSpec, batch_size: int) -> str:
    lines = [
        "Batch vs per-op update execution "
        f"({spec.num_updates} {spec.distribution} updates on {spec.num_objects} "
        f"objects, batch_size={batch_size})",
        "io/upd is the paper's metric (physical reads + writes + charged hash "
        "probes per update);",
        "io_gain is the disk-bound speedup it implies; cpu is wall-clock on the "
        "simulated (in-memory) disk.",
        f"{'strategy':<9} {'perop_reads':>12} {'batch_reads':>12} {'read_save':>10} "
        f"{'perop_io/u':>11} {'batch_io/u':>11} {'io_gain':>8} {'cpu':>6} "
        f"{'groups':>7} {'resid':>6}",
    ]
    for row in rows:
        saving = 1.0 - row["batch_reads"] / max(row["per_op_reads"], 1)
        per_op_io = row["per_op_io"] / row["updates"]
        batch_io = row["batch_io"] / row["updates"]
        cpu_gain = row["per_op_seconds"] / row["batch_seconds"]
        lines.append(
            f"{row['strategy']:<9} {row['per_op_reads']:>12} {row['batch_reads']:>12} "
            f"{saving:>9.1%} {per_op_io:>11.2f} {batch_io:>11.2f} "
            f"{per_op_io / batch_io:>7.2f}x {cpu_gain:>5.2f}x "
            f"{row['groups']:>7} {row['residuals']:>6}"
        )
    return "\n".join(lines)


def run(
    objects: int = 10_000,
    updates: int = 10_000,
    batch_size: int = 2_500,
    distribution: str = "gaussian",
    seed: int = 1,
) -> list:
    spec = build_spec(objects, updates, distribution, seed)
    rows = [run_strategy(strategy, spec, batch_size) for strategy in STRATEGIES]
    report = render(rows, spec, batch_size)
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(report + "\n", encoding="utf-8")
    print(report)
    for row in rows:
        assert row["batch_reads"] < row["per_op_reads"], (
            f"{row['strategy']}: batch execution must perform strictly fewer "
            f"physical reads ({row['batch_reads']} vs {row['per_op_reads']})"
        )
    return rows


def test_batch_beats_per_op_on_physical_reads():
    """Acceptance check at the issue's scale: 10k Gaussian updates."""
    run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=10_000)
    parser.add_argument("--updates", type=int, default=10_000)
    parser.add_argument("--batch-size", type=int, default=2_500)
    parser.add_argument("--distribution", default="gaussian")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    run(args.objects, args.updates, args.batch_size, args.distribution, args.seed)


if __name__ == "__main__":
    main()
