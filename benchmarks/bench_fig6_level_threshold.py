"""Figure 6(a)-(b) — effect of the level threshold ℓ (ascending the R-tree).

Paper shape to reproduce: GBU-3 (and GBU-2, nearly identical) has the lowest
update cost; GBU-0 — no ascent at all — still beats LBU thanks to the other
optimisations; TD is the most expensive, especially at the fastest movement
setting; query costs favour the higher thresholds because updates are
resolved as locally as possible.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig6_level_threshold(figure_runner):
    rows = figure_runner("fig6_level")
    update = pivot_by_strategy(rows, "avg_update_io")

    for max_distance, values in update.items():
        # Unlimited ascent is at least as good as forbidding it.
        assert values["GBU-3"] <= values["GBU-0"] * 1.05
        # GBU-0 (optimised localized bottom-up) does not lose to LBU.
        assert values["GBU-0"] <= values["LBU"] * 1.10
        # Every GBU variant beats TD.
        for label in ("GBU-0", "GBU-1", "GBU-2", "GBU-3"):
            assert values[label] < values["TD"]

    # GBU-2 and GBU-3 are nearly equivalent (the paper notes this).
    for values in update.values():
        assert abs(values["GBU-2"] - values["GBU-3"]) <= 0.15 * values["GBU-3"] + 0.3
