"""Shard scaling — concurrent makespan vs. the number of spatial shards.

Shape to reproduce: on the uniform workload, partitioning the space into 4+
shards yields a concurrent makespan strictly below the single-shard run of
the identical update stream at the same client count — each shard's tree is
shorter (top-down update cost scales with height) and per-shard DGL lock
namespaces let operations on different shards schedule in parallel, with
boundary-crossing migrations locking both shards.  The hotspot variant runs
the same pipeline on the Zipf-skewed distribution: a uniform grid then
concentrates data and traffic on few shards, so the imbalance column grows
and the win shrinks — the skew caveat, reported alongside.
"""

from repro.bench.reporting import pivot_by_strategy


def test_shard_scaling(figure_runner):
    rows = figure_runner("shard_scaling")
    makespan = pivot_by_strategy(rows, "makespan")
    shard_counts = sorted(makespan)
    assert shard_counts[0] == 1

    # Acceptance criterion: multi-shard concurrent makespan strictly below
    # the single-shard makespan at 4+ shards on the uniform workload.
    for num_shards in shard_counts:
        if num_shards >= 4:
            assert makespan[num_shards]["uniform"] < makespan[1]["uniform"]

    # The hotspot variant is reported alongside, with a measurably less
    # balanced shard assignment than the uniform workload.
    most = shard_counts[-1]
    imbalance = pivot_by_strategy(rows, "imbalance")
    assert imbalance[most]["hotspot"] > imbalance[most]["uniform"]

    # Sharded execution is not free: boundary-crossing updates migrate.
    migrations = pivot_by_strategy(rows, "migrations")
    assert migrations[most]["uniform"] > 0
