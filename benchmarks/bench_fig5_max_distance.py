"""Figure 5(g)-(h) — effect of the maximum distance moved between updates.

Paper shape to reproduce: every technique degrades as objects move faster
(the index keeps reorganising); TD degrades the most at high speeds (more
reinsertion and splits); GBU stays cheapest throughout; query costs stay
comparable until the fastest setting, where TD suffers the most.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig5_max_distance(figure_runner):
    rows = figure_runner("fig5_max_distance")
    update = pivot_by_strategy(rows, "avg_update_io")
    distances = sorted(update)

    # Faster movement costs more updates for every strategy (monotone trend
    # between the slowest and the fastest setting).
    for strategy in ("TD", "LBU", "GBU"):
        assert update[distances[-1]][strategy] > update[distances[0]][strategy]

    # GBU cheapest at every speed, and TD most expensive at every speed.
    for values in update.values():
        assert values["GBU"] <= values["TD"]
        assert values["GBU"] <= values["LBU"] * 1.05
        assert values["TD"] >= values["LBU"]

    # The bottom-up strategies lose part of their advantage at the fastest
    # setting (more updates escape the local repairs), so their own costs
    # grow faster than TD's in relative terms — but GBU never loses the lead.
    assert update[distances[-1]]["GBU"] / update[distances[0]]["GBU"] >= (
        update[distances[-1]]["TD"] / update[distances[0]]["TD"]
    )
