"""Table 1 — workload parameters and their values.

The paper's Table 1 lists every tuning/workload parameter and the values
swept in the evaluation.  This "benchmark" renders the reproduction's
counterpart (including the paper-scale values the scaled workloads stand in
for) so the parameter grid is recorded alongside the measured figures.
"""

from repro.bench.figures import TABLE1_PARAMETERS


def test_table1_parameters(figure_runner):
    rows = figure_runner("table1")
    parameters = {row.x_value for row in rows}
    assert parameters == set(TABLE1_PARAMETERS)
