"""Figure 6(e)-(f) — effect of the number of updates.

Paper shape to reproduce: both update and query costs rise as more updates
are applied (objects drift away from their initial clustering and the index
accumulates dead space); GBU has the lowest update cost at every volume and
its query cost does not degrade faster than TD's — the paper's headline
"query performance for bottom-up indexes does not degrade after even large
amounts of updates".
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig6_num_updates(figure_runner):
    rows = figure_runner("fig6_updates")
    update = pivot_by_strategy(rows, "avg_update_io")
    query = pivot_by_strategy(rows, "avg_query_io")
    volumes = sorted(update)

    # GBU cheapest updater at every update volume.
    for values in update.values():
        assert values["GBU"] < values["TD"]

    # Query cost after the largest volume: GBU does not degrade more than TD.
    assert query[volumes[-1]]["GBU"] <= query[volumes[-1]]["TD"] * 1.1

    # Costs at the largest volume are not lower than at the smallest volume
    # (the index only gets worse with churn) for the top-down baseline.
    assert update[volumes[-1]]["TD"] >= update[volumes[0]]["TD"] * 0.9
