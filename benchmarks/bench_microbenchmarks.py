"""Micro-benchmarks of the individual index operations.

Unlike the figure benchmarks (which measure simulated disk I/O), these use
pytest-benchmark's timing machinery on the in-process data structures: one
update / one query / one insert per strategy, on a pre-built index.  They are
useful for tracking interpreter-level regressions of the hot paths; absolute
times carry no meaning for the paper's claims (see the repro notes in
EXPERIMENTS.md about interpreter overhead).
"""

import random

import pytest

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.workload import WorkloadGenerator, WorkloadSpec


def build_index(strategy: str, num_objects: int = 3_000, seed: int = 3) -> MovingObjectIndex:
    spec = WorkloadSpec(num_objects=num_objects, num_updates=0, num_queries=0, seed=seed)
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=256))
    index.load(generator.initial_objects())
    return index


@pytest.mark.parametrize("strategy", ["TD", "LBU", "GBU"])
def test_update_latency(benchmark, strategy):
    index = build_index(strategy)
    rng = random.Random(7)
    count = len(index)

    def do_update():
        oid = rng.randrange(count)
        position = index.position_of(oid)
        index.update(
            oid,
            Point(
                min(1, max(0, position.x + rng.uniform(-0.02, 0.02))),
                min(1, max(0, position.y + rng.uniform(-0.02, 0.02))),
            ),
        )

    benchmark(do_update)


@pytest.mark.parametrize("strategy", ["TD", "GBU"])
def test_window_query_latency(benchmark, strategy):
    index = build_index(strategy)
    rng = random.Random(9)

    def do_query():
        cx, cy = rng.random(), rng.random()
        side = 0.05
        window = Rect(
            max(0, cx - side), max(0, cy - side), min(1, cx + side), min(1, cy + side)
        )
        index.range_query(window)

    benchmark(do_query)


def test_knn_latency(benchmark):
    index = build_index("GBU")
    rng = random.Random(11)

    def do_knn():
        index.knn(Point(rng.random(), rng.random()), k=10)

    benchmark(do_knn)


def test_insert_latency(benchmark):
    index = build_index("GBU")
    rng = random.Random(13)
    counter = iter(range(10_000_000, 20_000_000))

    def do_insert():
        index.insert(next(counter), Point(rng.random(), rng.random()))

    benchmark(do_insert)
