"""Shared fixtures for the benchmark suite.

Every file under ``benchmarks/`` regenerates one table or figure of the paper
through :mod:`repro.bench.figures` and is executed with pytest-benchmark
(``pytest benchmarks/ --benchmark-only``).

Workload scale
--------------
The paper's experiments run millions of objects and updates; the benchmark
suite defaults to a scale that finishes in a few minutes on a laptop.  Set
the ``REPRO_BENCH_SCALE`` environment variable to grow every workload
proportionally, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only

Reports
-------
Each benchmark renders its figure as a text table (the same series the paper
plots) and writes it to ``benchmarks/reports/<figure>.txt`` so the numbers
survive the pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import get_figure, render_figure_result

#: Default scale of the benchmark workloads (1.0 = the quick scale used by
#: the CLI; the unit tests use far smaller scales).
DEFAULT_SCALE = 0.5

REPORT_DIRECTORY = Path(__file__).parent / "reports"


def bench_scale() -> float:
    """Scale multiplier for the benchmark workloads."""
    value = os.environ.get("REPRO_BENCH_SCALE", "")
    try:
        scale = float(value)
    except ValueError:
        scale = DEFAULT_SCALE
    if not value:
        scale = DEFAULT_SCALE
    return max(scale, 0.05)


def bench_seed() -> int:
    """Workload seed (override with REPRO_BENCH_SEED)."""
    try:
        return int(os.environ.get("REPRO_BENCH_SEED", "1"))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


@pytest.fixture
def figure_runner(benchmark, scale, seed):
    """Run a figure definition once under pytest-benchmark and report it.

    Returns the list of :class:`~repro.bench.metrics.MetricRow` produced, so
    the calling benchmark can additionally assert the expected shape.
    """

    def _run(figure_key: str):
        definition = get_figure(figure_key)
        rows = benchmark.pedantic(
            definition.run,
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        report = render_figure_result(definition, rows)
        REPORT_DIRECTORY.mkdir(exist_ok=True)
        report_path = REPORT_DIRECTORY / f"{figure_key}.txt"
        report_path.write_text(report + "\n", encoding="utf-8")
        print()
        print(report)
        return rows

    return _run
