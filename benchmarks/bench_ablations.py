"""Ablations of GBU's optimisations (Section 3.2.1).

The generalized strategy combines several independent ideas: directional
ε-extension, sibling shifting with piggybacking, summary-assisted queries and
bounded ascent.  This benchmark switches them off one at a time and records
the update/query cost of each variant, quantifying how much each optimisation
contributes (the paper discusses them qualitatively).
"""


def test_gbu_ablations(figure_runner):
    rows = figure_runner("ablations")
    by_variant = {row.strategy: row for row in rows}

    baseline = by_variant["GBU"]

    # Forbidding ascent (L=0) pushes far more updates back to top-down and
    # therefore costs update I/O.
    assert by_variant["GBU-L0"].extras["top_down_fraction"] > baseline.extras["top_down_fraction"]
    assert by_variant["GBU-L0"].avg_update_io >= baseline.avg_update_io

    # Disabling the ε-extension cannot make updates cheaper.
    assert by_variant["GBU-eps0"].avg_update_io >= baseline.avg_update_io * 0.98

    # Disabling summary-assisted queries cannot make queries cheaper.
    assert by_variant["GBU-no-summary-queries"].avg_query_io >= baseline.avg_query_io

    # Disabling piggybacking never helps query cost (it exists to reduce
    # overlap); allow a small tolerance for noise at benchmark scale.
    assert by_variant["GBU-no-piggyback"].avg_query_io >= baseline.avg_query_io * 0.95
