"""Figure 6(c)-(d) — effect of the initial data distribution.

Paper shape to reproduce: updates are cheapest on the uniform distribution
for every technique; the clustered (Gaussian, skewed) distributions cost more
because movement triggers more splits and reinsertions; GBU stays the
cheapest updater everywhere; queries on the skewed distribution are the
cheapest because most of the data space is empty.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig6_distribution(figure_runner):
    rows = figure_runner("fig6_distribution")
    update = pivot_by_strategy(rows, "avg_update_io")
    query = pivot_by_strategy(rows, "avg_query_io")

    # GBU is the cheapest updater on every distribution.
    for values in update.values():
        assert values["GBU"] <= values["TD"]
        assert values["GBU"] <= values["LBU"] * 1.05

    # Clustered data is at least as expensive to update as uniform data.
    for strategy in ("TD", "LBU", "GBU"):
        assert update["gaussian"][strategy] >= update["uniform"][strategy] * 0.9

    # Queries on the skewed distribution are cheaper than on uniform data
    # (most of the space is empty).  The Gaussian case is not compared: at
    # this reproduction's scale the Gaussian cluster is tight enough that
    # most uniformly-placed query windows miss the data entirely, which makes
    # its queries artificially cheap (see EXPERIMENTS.md).
    for strategy in ("TD", "LBU", "GBU"):
        assert query["skewed"][strategy] <= query["uniform"][strategy]
