#!/usr/bin/env python
"""CPU micro-benchmark: single-thread ops/sec per layout, strategy, and op.

Measures the interpreter-level cost of the index hot paths — update, range
query, and kNN — for the TD and GBU strategies in both physical node layouts
(``object`` and ``packed``), and writes a schema-versioned JSON report that
is checked in at the repository root (``BENCH_cpu_ops.json``) as the per-PR
CPU performance trajectory.

Unlike the figure benchmarks (which count simulated disk I/O), the numbers
here are wall-clock rates: they track how fast the data structure itself
runs, which is exactly what the packed columnar layout and the batch kernels
change.  Both layouts execute identical logical work — the equivalence suite
(``tests/test_layout_equivalence.py``) proves answers and I/O counts match —
so the ratio packed/object is a pure CPU-efficiency measurement.

Methodology
-----------
Every (strategy, layout) cell is run ``--repeats`` times with layouts
interleaved inside each repeat (so machine-load noise hits both layouts
alike), and each op reports its **best** repeat: noise on a shared box only
ever makes a run slower, so the fastest repeat is the closest estimate of
the true cost.

Usage::

    python benchmarks/bench_cpu_ops.py                 # full run, writes BENCH_cpu_ops.json
    python benchmarks/bench_cpu_ops.py --scale 0.05    # CI smoke scale
    python benchmarks/bench_cpu_ops.py --check         # validate existing JSON

``--check`` validates the report's schema and fails (exit 1) when the packed
layout regresses below ``--min-update-speedup`` (default 1.0) on any update
benchmark.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import IndexConfig, MovingObjectIndex  # noqa: E402
from repro.geometry import Point, Rect, kernels  # noqa: E402

SCHEMA_VERSION = 1
STRATEGIES = ("TD", "GBU")
LAYOUTS = ("object", "packed")
OPS = ("update", "range", "knn")

#: Full-scale workload: the ISSUE's 10k-object update micro-benchmark.
BASE_OBJECTS = 10_000
UPDATES_PER_OBJECT = 2.0
BASE_RANGE_QUERIES = 2_000
BASE_KNN_QUERIES = 2_000
KNN_K = 10
RANGE_WINDOW_SIDE = 0.05


def make_workload(objects: int, updates: int, ranges: int, knns: int, seed: int):
    rng = random.Random(seed)
    points = [(oid, Point(rng.random(), rng.random())) for oid in range(objects)]
    moves = [
        (rng.randrange(objects), Point(rng.random(), rng.random()))
        for _ in range(updates)
    ]
    windows = []
    for _ in range(ranges):
        x, y = rng.random() * (1 - RANGE_WINDOW_SIDE), rng.random() * (1 - RANGE_WINDOW_SIDE)
        windows.append(Rect(x, y, x + RANGE_WINDOW_SIDE, y + RANGE_WINDOW_SIDE))
    knn_points = [Point(rng.random(), rng.random()) for _ in range(knns)]
    return points, moves, windows, knn_points


def run_cell(strategy: str, layout: str, workload) -> Dict[str, Tuple[int, float]]:
    """One full measurement of every op for (strategy, layout).

    Returns ``{op: (ops, seconds)}``.  A fresh index is built per call so the
    update phase always starts from the same tree shape.
    """
    points, moves, windows, knn_points = workload
    index = MovingObjectIndex(IndexConfig(strategy=strategy, node_layout=layout))
    index.load(points)

    timings: Dict[str, Tuple[int, float]] = {}

    start = time.perf_counter()
    for oid, location in moves:
        index.update(oid, location)
    timings["update"] = (len(moves), time.perf_counter() - start)

    start = time.perf_counter()
    for window in windows:
        index.range_query(window)
    timings["range"] = (len(windows), time.perf_counter() - start)

    start = time.perf_counter()
    for point in knn_points:
        index.knn(point, KNN_K)
    timings["knn"] = (len(knn_points), time.perf_counter() - start)

    return timings


def run_benchmark(scale: float, repeats: int, seed: int) -> dict:
    objects = max(50, int(BASE_OBJECTS * scale))
    updates = int(objects * UPDATES_PER_OBJECT)
    ranges = max(10, int(BASE_RANGE_QUERIES * scale))
    knns = max(10, int(BASE_KNN_QUERIES * scale))
    workload = make_workload(objects, updates, ranges, knns, seed)

    # best[strategy][layout][op] = (ops, best_seconds)
    best: Dict[str, Dict[str, Dict[str, Tuple[int, float]]]] = {
        s: {l: {} for l in LAYOUTS} for s in STRATEGIES
    }
    for repeat in range(repeats):
        for strategy in STRATEGIES:
            for layout in LAYOUTS:
                timings = run_cell(strategy, layout, workload)
                cell = best[strategy][layout]
                for op, (ops, seconds) in timings.items():
                    if op not in cell or seconds < cell[op][1]:
                        cell[op] = (ops, seconds)
                print(
                    f"  repeat {repeat + 1}/{repeats} {strategy}/{layout}: "
                    + " ".join(
                        f"{op}={ops / seconds:.0f}/s"
                        for op, (ops, seconds) in timings.items()
                    ),
                    file=sys.stderr,
                )

    results: List[dict] = []
    for strategy in STRATEGIES:
        for layout in LAYOUTS:
            for op in OPS:
                ops, seconds = best[strategy][layout][op]
                results.append(
                    {
                        "strategy": strategy,
                        "layout": layout,
                        "op": op,
                        "ops": ops,
                        "seconds": round(seconds, 6),
                        "ops_per_sec": round(ops / seconds, 1),
                    }
                )

    derived = {}
    for strategy in STRATEGIES:
        for op in OPS:
            obj = best[strategy]["object"][op]
            packed = best[strategy]["packed"][op]
            speedup = (obj[1] / obj[0]) / (packed[1] / packed[0])
            derived[f"{op}_speedup_{strategy}"] = round(speedup, 3)

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "cpu_ops",
        "paper": "conf_vldb_LeeHJT03",
        "scale": scale,
        "objects": objects,
        "updates": updates,
        "range_queries": ranges,
        "knn_queries": knns,
        "knn_k": KNN_K,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "kernel_backend": kernels.get_backend(),
        "results": results,
        "derived": derived,
    }


def validate_report(report: dict, min_update_speedup: float) -> List[str]:
    """Schema + regression validation; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    if report.get("benchmark") != "cpu_ops":
        problems.append(f"benchmark is {report.get('benchmark')!r}, expected 'cpu_ops'")
    for key in ("scale", "objects", "updates", "python", "kernel_backend", "results", "derived"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    seen = set()
    for row in report["results"]:
        for key in ("strategy", "layout", "op", "ops", "seconds", "ops_per_sec"):
            if key not in row:
                problems.append(f"result row missing {key!r}: {row}")
                break
        else:
            if not (isinstance(row["ops_per_sec"], (int, float)) and row["ops_per_sec"] > 0):
                problems.append(f"non-positive ops_per_sec: {row}")
            seen.add((row["strategy"], row["layout"], row["op"]))
    for strategy in STRATEGIES:
        for layout in LAYOUTS:
            for op in OPS:
                if (strategy, layout, op) not in seen:
                    problems.append(f"missing result cell {(strategy, layout, op)}")

    derived = report["derived"]
    for strategy in STRATEGIES:
        key = f"update_speedup_{strategy}"
        if key not in derived:
            problems.append(f"derived missing {key!r}")
        elif derived[key] < min_update_speedup:
            problems.append(
                f"{key} = {derived[key]} is below the required minimum "
                f"{min_update_speedup} (packed layout regression)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale (1.0 = 10k objects)")
    parser.add_argument("--repeats", type=int, default=3, help="repeats per cell; best is reported")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_cpu_ops.json",
        help="report path (default: repo root BENCH_cpu_ops.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the existing report instead of running the benchmark",
    )
    parser.add_argument(
        "--min-update-speedup", type=float, default=1.0,
        help="with --check: fail when packed/object update speedup is below this",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            report = json.loads(args.output.read_text())
        except (OSError, ValueError) as error:
            print(f"cannot read report {args.output}: {error}", file=sys.stderr)
            return 1
        problems = validate_report(report, args.min_update_speedup)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"OK: {args.output} valid; "
            + ", ".join(f"{k}={v}x" for k, v in sorted(report["derived"].items()) if k.startswith("update"))
        )
        return 0

    report = run_benchmark(args.scale, args.repeats, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for key, value in sorted(report["derived"].items()):
        print(f"  {key}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
