"""Figure 7(a)-(b) — scalability with the dataset size.

Paper shape to reproduce: update cost grows moderately with the number of
objects (the space is fixed, so density rises); GBU remains the cheapest
updater at every size; query costs rise sharply with density and converge
across the strategies.
"""

from repro.bench.reporting import pivot_by_strategy


def test_fig7_scalability(figure_runner):
    rows = figure_runner("fig7_scalability")
    update = pivot_by_strategy(rows, "avg_update_io")
    query = pivot_by_strategy(rows, "avg_query_io")
    sizes = sorted(update)

    # GBU cheapest updater at every dataset size.
    for values in update.values():
        assert values["GBU"] < values["TD"]

    # Query cost rises with density for every strategy (largest vs smallest).
    for strategy in ("TD", "LBU", "GBU"):
        assert query[sizes[-1]][strategy] > query[sizes[0]][strategy]

    # Query costs converge at the largest size: the relative spread between
    # the best and worst strategy stays within ~50 % (the paper reports
    # "pretty much the same" query cost for all techniques at scale).
    largest = query[sizes[-1]]
    assert max(largest.values()) <= min(largest.values()) * 1.5
