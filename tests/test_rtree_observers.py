"""Tests for the tree observer mechanism."""

from repro.geometry import Point
from repro.rtree import RTree, TreeObserver
from repro.rtree.observers import ObserverList
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout

from tests.conftest import SMALL_PAGE_SIZE, make_points


class RecordingObserver(TreeObserver):
    def __init__(self):
        self.created = []
        self.written = []
        self.deleted = []
        self.root_changes = []
        self.removed_objects = []

    def on_node_created(self, node):
        self.created.append(node.page_id)

    def on_node_written(self, node):
        self.written.append(node.page_id)

    def on_node_deleted(self, node):
        self.deleted.append(node.page_id)

    def on_root_changed(self, root_page_id, height):
        self.root_changes.append((root_page_id, height))

    def on_object_removed(self, oid):
        self.removed_objects.append(oid)


def make_tree():
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    return RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))


class TestObserverEvents:
    def test_writes_are_reported(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        tree.insert(1, Point(0.5, 0.5))
        assert tree.root_page_id in observer.written

    def test_root_change_reported_on_growth(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        for oid, point in make_points(tree.leaf_capacity + 1):
            tree.insert(oid, point)
        assert observer.root_changes
        last_root, last_height = observer.root_changes[-1]
        assert last_root == tree.root_page_id
        assert last_height == tree.height == 2

    def test_node_creation_reported_on_split(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        for oid, point in make_points(tree.leaf_capacity + 1):
            tree.insert(oid, point)
        # The split creates at least the sibling leaf and the new root.
        assert len(observer.created) >= 2

    def test_object_removal_reported_on_delete(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        tree.insert(5, Point(0.2, 0.2))
        tree.delete(5, Point(0.2, 0.2))
        assert observer.removed_objects == [5]

    def test_node_deletion_reported_when_nodes_dissolve(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        points = make_points(200)
        for oid, point in points:
            tree.insert(oid, point)
        for oid, point in points:
            tree.delete(oid, point)
        assert observer.deleted  # underflowing nodes were dissolved

    def test_unregistered_observer_stops_receiving_events(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        tree.insert(1, Point(0.1, 0.1))
        seen = len(observer.written)
        tree.unregister_observer(observer)
        tree.insert(2, Point(0.2, 0.2))
        assert len(observer.written) == seen

    def test_observer_registration_is_idempotent(self):
        tree = make_tree()
        observer = RecordingObserver()
        tree.register_observer(observer)
        tree.register_observer(observer)
        tree.insert(1, Point(0.3, 0.3))
        # Each write event is delivered once, not twice.
        assert observer.written.count(tree.root_page_id) == observer.written.count(
            tree.root_page_id
        )
        assert len(tree.observers) == 1


class TestObserverList:
    def test_len_and_iteration(self):
        observers = ObserverList()
        first, second = RecordingObserver(), RecordingObserver()
        observers.register(first)
        observers.register(second)
        assert len(observers) == 2
        assert list(observers) == [first, second]

    def test_unregister_missing_observer_is_silent(self):
        observers = ObserverList()
        observers.unregister(RecordingObserver())  # must not raise

    def test_base_observer_handlers_are_noops(self):
        # The base class must be safely subclassable with partial overrides.
        observer = TreeObserver()
        observer.on_root_changed(1, 1)
        observer.on_object_removed(2)
