"""Tests for the summary structure (direct access table + bit vector) as a whole."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree, bulk_load_str
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.summary import SummaryStructure

from tests.conftest import SMALL_PAGE_SIZE, make_points


def tree_with_summary(count=400, bulk=False):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
    points = dict(make_points(count))
    if bulk:
        bulk_load_str(tree, list(points.items()))
    else:
        for oid, point in points.items():
            tree.insert(oid, point)
    summary = SummaryStructure.build_from_tree(tree)
    return tree, summary, points, stats


class TestBootstrap:
    def test_build_covers_every_internal_node(self):
        tree, summary, _, _ = tree_with_summary()
        assert summary.consistency_errors() == []
        assert len(summary.table) == tree.node_count()["internal"]

    def test_build_covers_every_leaf_in_bit_vector(self):
        tree, summary, _, _ = tree_with_summary()
        assert len(summary.leaf_bits) == tree.node_count()["leaf"]

    def test_build_from_bulk_loaded_tree(self):
        _, summary, _, _ = tree_with_summary(bulk=True)
        assert summary.consistency_errors() == []

    def test_build_charges_no_io(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        for oid, point in make_points(300):
            tree.insert(oid, point)
        before = stats.total_physical_io
        SummaryStructure.build_from_tree(tree)
        assert stats.total_physical_io == before

    def test_root_entry_and_mbr(self):
        tree, summary, points, _ = tree_with_summary()
        mbr = summary.root_mbr()
        assert mbr is not None
        for point in points.values():
            assert mbr.contains_point(point)

    def test_root_mbr_none_when_root_is_leaf(self):
        tree, summary, _, _ = tree_with_summary(count=3)
        assert tree.height == 1
        assert summary.root_mbr() is None


class TestMaintenance:
    def test_consistent_after_inserts(self):
        tree, summary, _, _ = tree_with_summary(count=200)
        for oid, point in make_points(300, seed=5):
            tree.insert(oid + 10_000, point)
        assert summary.consistency_errors() == []

    def test_consistent_after_deletes(self):
        tree, summary, points, _ = tree_with_summary(count=400)
        for oid, point in list(points.items())[::2]:
            tree.delete(oid, point)
        assert summary.consistency_errors() == []

    def test_consistent_after_interleaved_workload(self):
        tree, summary, points, _ = tree_with_summary(count=250)
        rng = random.Random(21)
        next_oid = 50_000
        for _ in range(700):
            if points and rng.random() < 0.5:
                oid = rng.choice(list(points))
                tree.delete(oid, points.pop(oid))
            else:
                point = Point(rng.random(), rng.random())
                tree.insert(next_oid, point)
                points[next_oid] = point
                next_oid += 1
        assert summary.consistency_errors() == []

    def test_root_tracking_follows_tree_growth(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        summary = SummaryStructure.build_from_tree(tree)
        for oid, point in make_points(300):
            tree.insert(oid, point)
        assert summary.root_page_id == tree.root_page_id
        assert summary.height == tree.height

    def test_maintenance_counters_move(self):
        tree, summary, _, _ = tree_with_summary(count=200)
        counters_before = summary.maintenance_counters()
        for oid, point in make_points(200, seed=8):
            tree.insert(oid + 20_000, point)
        counters_after = summary.maintenance_counters()
        assert counters_after["mbr_updates"] >= counters_before["mbr_updates"]
        assert counters_after["entry_insertions"] >= counters_before["entry_insertions"]


class TestParentAndSiblingLookups:
    def test_parent_entry_of_leaf_matches_tree(self):
        tree, summary, _, _ = tree_with_summary()
        for node, parent_page in tree.iter_nodes():
            if node.is_leaf and parent_page is not None:
                entry = summary.parent_entry_of_leaf(node.page_id)
                assert entry is not None and entry.page_id == parent_page

    def test_sibling_leaves_share_the_parent(self):
        tree, summary, _, _ = tree_with_summary()
        leaf = next(iter(tree.leaf_nodes()))
        siblings = summary.sibling_leaves(leaf.page_id)
        parent = summary.parent_entry_of_leaf(leaf.page_id)
        assert leaf.page_id not in siblings
        for sibling in siblings:
            assert sibling in parent.child_page_ids

    def test_is_leaf_full_matches_reality(self):
        tree, summary, _, _ = tree_with_summary()
        for leaf in tree.leaf_nodes():
            assert summary.is_leaf_full(leaf.page_id) == (
                len(leaf.entries) >= tree.leaf_capacity
            )

    def test_path_from_root(self):
        tree, summary, _, _ = tree_with_summary(count=600)
        assert tree.height >= 3
        leaf = next(iter(tree.leaf_nodes()))
        parent = summary.parent_entry_of_leaf(leaf.page_id)
        path = summary.path_from_root(parent.page_id)
        assert path[0] == tree.root_page_id if path else parent.page_id == tree.root_page_id
        # Walking the path from the root must reach the parent's parent chain.
        rebuilt = path + [parent.page_id]
        for upper, lower in zip(rebuilt, rebuilt[1:]):
            assert lower in summary.table.get(upper).child_page_ids

    def test_path_from_root_of_root_is_empty(self):
        tree, summary, _, _ = tree_with_summary()
        assert summary.path_from_root(tree.root_page_id) == []


class TestFindParent:
    def test_find_parent_returns_covering_ancestor(self):
        tree, summary, _, _ = tree_with_summary(count=600)
        leaf = next(iter(tree.leaf_nodes()))
        target = leaf.mbr().center()  # certainly covered by the direct parent
        ancestor_page, path = summary.find_parent(leaf.page_id, target)
        assert ancestor_page == summary.parent_entry_of_leaf(leaf.page_id).page_id
        assert path == summary.path_from_root(ancestor_page)

    def test_find_parent_ascends_for_distant_targets(self):
        tree, summary, _, _ = tree_with_summary(count=600)
        # Pick a leaf in one corner and a target in the opposite corner: the
        # direct parent usually cannot cover it, so the ascent must go higher.
        corner_leaf = min(
            tree.leaf_nodes(), key=lambda leaf: leaf.mbr().center().distance_to(Point(0, 0))
        )
        target = Point(0.99, 0.99)
        ancestor_page, _path = summary.find_parent(corner_leaf.page_id, target)
        assert ancestor_page is not None
        ancestor = summary.table.get(ancestor_page)
        assert ancestor.mbr.contains_point(target) or ancestor_page == tree.root_page_id

    def test_level_threshold_zero_forbids_ascent(self):
        tree, summary, _, _ = tree_with_summary(count=600)
        leaf = next(iter(tree.leaf_nodes()))
        ancestor, path = summary.find_parent(
            leaf.page_id, Point(0.5, 0.5), level_threshold=0
        )
        assert ancestor is None
        assert path == []

    def test_level_threshold_one_only_considers_direct_parent(self):
        tree, summary, _, _ = tree_with_summary(count=600)
        leaf = next(iter(tree.leaf_nodes()))
        parent = summary.parent_entry_of_leaf(leaf.page_id)
        inside = parent.mbr.center()
        ancestor, _ = summary.find_parent(leaf.page_id, inside, level_threshold=1)
        assert ancestor == parent.page_id
        # A point far outside the parent MBR cannot be resolved within one level
        # unless that parent happens to span the whole space.
        outside = Point(0.999, 0.999)
        if not parent.mbr.contains_point(outside):
            ancestor, _ = summary.find_parent(leaf.page_id, outside, level_threshold=1)
            assert ancestor is None

    def test_find_parent_of_root_leaf_returns_none(self):
        tree, summary, _, _ = tree_with_summary(count=3)
        ancestor, path = summary.find_parent(tree.root_page_id, Point(0.5, 0.5))
        assert ancestor is None and path == []


class TestSizing:
    def test_summary_is_a_small_fraction_of_the_tree(self):
        tree, summary, _, _ = tree_with_summary(count=800)
        ratio = summary.size_ratio_to_tree()
        assert 0.0 < ratio < 0.05

    def test_size_bytes_positive(self):
        _, summary, _, _ = tree_with_summary(count=200)
        assert summary.size_bytes() > 0
