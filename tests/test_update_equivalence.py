"""Cross-strategy equivalence: all update strategies must index the same data.

The paper's strategies differ only in *how* the index is maintained, never in
*what* it answers: after applying an identical update stream, TD, NAIVE, LBU
and GBU must return identical answers to every query.  This is the single
most important integration property of the reproduction, because every
performance comparison is meaningless if a cheaper strategy silently loses or
misplaces objects.
"""

import random

import pytest

from repro.geometry import Point, Rect
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import build_index


STRATEGIES = ["TD", "NAIVE", "LBU", "GBU"]


def apply_workload(index, spec_seed=77, num_updates=800, max_distance=0.05):
    spec = WorkloadSpec(
        num_objects=len(index),
        num_updates=num_updates,
        num_queries=0,
        max_distance=max_distance,
        seed=spec_seed,
    )
    generator = WorkloadGenerator(spec)
    for oid, _old, new in generator.updates():
        index.update(oid, new)
    return generator


class TestQueryEquivalence:
    @pytest.mark.parametrize("max_distance", [0.01, 0.05, 0.15])
    def test_all_strategies_answer_queries_identically(self, max_distance):
        indexes = {name: build_index(name, num_objects=350, seed=31) for name in STRATEGIES}
        for index in indexes.values():
            apply_workload(index, num_updates=700, max_distance=max_distance)

        rng = random.Random(5)
        windows = []
        for _ in range(40):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.25)
            windows.append(
                Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
            )
        reference = indexes["TD"]
        for window in windows:
            expected = sorted(reference.range_query(window))
            for name, index in indexes.items():
                assert sorted(index.range_query(window)) == expected, name

    def test_all_strategies_track_identical_positions(self):
        indexes = {name: build_index(name, num_objects=300, seed=13) for name in STRATEGIES}
        for index in indexes.values():
            apply_workload(index, num_updates=600)
        reference = indexes["TD"]
        for oid in range(300):
            expected = reference.position_of(oid)
            for name, index in indexes.items():
                assert index.position_of(oid) == expected, name

    def test_every_strategy_remains_structurally_valid(self):
        for name in STRATEGIES:
            index = build_index(name, num_objects=300, seed=3)
            apply_workload(index, num_updates=900, max_distance=0.1)
            index.validate()

    def test_knn_equivalence_after_updates(self):
        indexes = {name: build_index(name, num_objects=250, seed=23) for name in STRATEGIES}
        for index in indexes.values():
            apply_workload(index, num_updates=500)
        probe = Point(0.4, 0.6)
        reference = [oid for _, oid in indexes["TD"].knn(probe, 10)]
        for name, index in indexes.items():
            assert [oid for _, oid in index.knn(probe, 10)] == reference, name


class TestIOOrderingExpectations:
    """The headline comparative claims of the paper, at test scale."""

    def test_bottom_up_strategies_beat_top_down_on_update_io(self):
        io = {}
        for name in ("TD", "LBU", "GBU"):
            index = build_index(name, num_objects=400, seed=41, buffer_percent=1.0)
            apply_workload(index, num_updates=800, max_distance=0.03)
            io[name] = index.stats.total_physical_io
        assert io["GBU"] < io["TD"]
        assert io["LBU"] < io["TD"]

    def test_gbu_falls_back_to_top_down_least_often(self):
        fractions = {}
        for name in ("NAIVE", "LBU", "GBU"):
            index = build_index(name, num_objects=400, seed=41)
            apply_workload(index, num_updates=800, max_distance=0.05)
            fractions[name] = index.strategy.top_down_fraction()
        assert fractions["GBU"] <= fractions["LBU"] <= fractions["NAIVE"]
