"""Shared pytest fixtures.

The fixtures build small instances of every layer of the stack — a paged
disk, a buffered R-tree, loaded indexes for each update strategy — so
individual test modules can focus on behaviour instead of wiring.  All
randomness is seeded; tests are deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point
from repro.rtree import RTree
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.workload import WorkloadGenerator, WorkloadSpec


# A page layout small enough that trees of a few hundred objects have
# multiple levels, which is what most structural tests need.
SMALL_PAGE_SIZE = 256


@pytest.fixture
def stats() -> IOStatistics:
    return IOStatistics()


@pytest.fixture
def disk(stats: IOStatistics) -> DiskManager:
    return DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)


@pytest.fixture
def unbuffered(disk: DiskManager, stats: IOStatistics) -> BufferPool:
    return BufferPool(disk, capacity=0, stats=stats)


@pytest.fixture
def small_layout() -> PageLayout:
    return PageLayout(page_size=SMALL_PAGE_SIZE)


@pytest.fixture
def empty_tree(unbuffered: BufferPool, small_layout: PageLayout) -> RTree:
    return RTree(unbuffered, layout=small_layout)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20030915)  # VLDB 2003 conference date


def make_points(count: int, seed: int = 7) -> list:
    generator = random.Random(seed)
    return [(oid, Point(generator.random(), generator.random())) for oid in range(count)]


@pytest.fixture
def populated_tree(empty_tree: RTree) -> RTree:
    """A tree with 400 uniformly distributed points inserted one by one."""
    for oid, point in make_points(400):
        empty_tree.insert(oid, point)
    return empty_tree


def build_index(strategy: str, num_objects: int = 600, seed: int = 11, **config_overrides):
    """Build and load a MovingObjectIndex for the given strategy."""
    config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE, **config_overrides)
    index = MovingObjectIndex(config)
    index.load(make_points(num_objects, seed=seed))
    return index


@pytest.fixture(params=["TD", "NAIVE", "LBU", "GBU"])
def any_strategy_index(request) -> MovingObjectIndex:
    """A loaded index, parameterised over every update strategy."""
    return build_index(request.param)


@pytest.fixture
def gbu_index() -> MovingObjectIndex:
    return build_index("GBU")


@pytest.fixture
def workload_generator() -> WorkloadGenerator:
    spec = WorkloadSpec(num_objects=300, num_updates=600, num_queries=50, seed=5)
    return WorkloadGenerator(spec)
