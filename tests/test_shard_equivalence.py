"""Equivalence suite: a sharded index behaves exactly like a single index.

The satellite acceptance criterion of the sharding PR: ``ShardedIndex`` at
1, 2 and 8 shards returns identical range/kNN/update outcomes to a single
``MovingObjectIndex`` on the same seeded workload — including objects whose
updates cross shard boundaries and migrate.  "Identical" is at facade
granularity: the same object→position map, the same query answers, the same
kNN lists; the shard trees may differ in shape from the single tree, exactly
as two update orders may shape one tree differently.
"""

import pytest

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE

SHARD_COUNTS = (1, 2, 8)

SPEC = WorkloadSpec(
    num_objects=900,
    num_updates=1500,
    num_queries=25,
    seed=3,
    max_distance=0.06,  # fast movement: plenty of boundary crossings
)


def run_workload(index, spec=SPEC):
    """Drive the seeded workload through any facade; return its outcomes."""
    generator = WorkloadGenerator(spec)
    index.load(generator.initial_objects())
    for oid, _old, new in generator.updates():
        index.update(oid, new)
    queries = [sorted(index.range_query(window)) for window in generator.queries()]
    knn = [
        index.knn(Point(x, y), 9)
        for x, y in ((0.25, 0.25), (0.5, 0.5), (0.75, 0.75), (0.05, 0.95))
    ]
    positions = {oid: index.position_of(oid) for oid in range(spec.num_objects)}
    index.validate()
    return queries, knn, positions


@pytest.mark.parametrize("strategy", ["TD", "GBU"])
class TestPerOperationEquivalence:
    def test_sharded_matches_single_index(self, strategy):
        config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
        expected = run_workload(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            actual = run_workload(sharded)
            assert actual == expected, f"{strategy} diverged at {num_shards} shards"
            if num_shards > 1:
                # the workload genuinely exercised cross-shard migration
                assert sharded.migrations > 0

    def test_directory_matches_partitioner_after_migrations(self, strategy):
        config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
        sharded = ShardedIndex(config, partitioner=GridPartitioner.for_shards(8))
        run_workload(sharded)
        for oid in range(SPEC.num_objects):
            shard_id = sharded.shard_for(oid)
            assert shard_id == sharded.partitioner.shard_of(sharded.position_of(oid))


class TestBatchEquivalence:
    def test_update_many_matches_single_index_batches(self):
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)

        def run_batched(index):
            generator = WorkloadGenerator(SPEC)
            index.load(generator.initial_objects())
            for batch in generator.update_batches(250):
                index.update_many((oid, new) for oid, _old, new in batch)
            queries = [
                sorted(index.range_query(window)) for window in generator.queries()
            ]
            positions = {
                oid: index.position_of(oid) for oid in range(SPEC.num_objects)
            }
            index.validate()
            return queries, positions

        expected = run_batched(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            assert run_batched(sharded) == expected

    def test_engine_batches_commit_identical_final_positions(self):
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)

        def run_engine_batch(index):
            generator = WorkloadGenerator(SPEC)
            index.load(generator.initial_objects())
            session = index.engine(num_clients=8)
            updates = [(oid, new) for oid, _old, new in generator.updates(600)]
            session.update_many(updates)
            index.validate()
            return {oid: index.position_of(oid) for oid in range(SPEC.num_objects)}

        expected = run_engine_batch(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            assert run_engine_batch(sharded) == expected
