"""Equivalence suite: a sharded index behaves exactly like a single index.

The satellite acceptance criterion of the sharding PR: ``ShardedIndex`` at
1, 2 and 8 shards returns identical range/kNN/update outcomes to a single
``MovingObjectIndex`` on the same seeded workload — including objects whose
updates cross shard boundaries and migrate.  "Identical" is at facade
granularity: the same object→position map, the same query answers, the same
kNN lists; the shard trees may differ in shape from the single tree, exactly
as two update orders may shape one tree differently.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE

SHARD_COUNTS = (1, 2, 8)

SPEC = WorkloadSpec(
    num_objects=900,
    num_updates=1500,
    num_queries=25,
    seed=3,
    max_distance=0.06,  # fast movement: plenty of boundary crossings
)


def run_workload(index, spec=SPEC):
    """Drive the seeded workload through any facade; return its outcomes."""
    generator = WorkloadGenerator(spec)
    index.load(generator.initial_objects())
    for oid, _old, new in generator.updates():
        index.update(oid, new)
    queries = [sorted(index.range_query(window)) for window in generator.queries()]
    knn = [
        index.knn(Point(x, y), 9)
        for x, y in ((0.25, 0.25), (0.5, 0.5), (0.75, 0.75), (0.05, 0.95))
    ]
    positions = {oid: index.position_of(oid) for oid in range(spec.num_objects)}
    index.validate()
    return queries, knn, positions


@pytest.mark.parametrize("strategy", ["TD", "GBU"])
class TestPerOperationEquivalence:
    def test_sharded_matches_single_index(self, strategy):
        config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
        expected = run_workload(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            actual = run_workload(sharded)
            assert actual == expected, f"{strategy} diverged at {num_shards} shards"
            if num_shards > 1:
                # the workload genuinely exercised cross-shard migration
                assert sharded.migrations > 0

    def test_directory_matches_partitioner_after_migrations(self, strategy):
        config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
        sharded = ShardedIndex(config, partitioner=GridPartitioner.for_shards(8))
        run_workload(sharded)
        for oid in range(SPEC.num_objects):
            shard_id = sharded.shard_for(oid)
            assert shard_id == sharded.partitioner.shard_of(sharded.position_of(oid))


class TestBatchEquivalence:
    def test_update_many_matches_single_index_batches(self):
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)

        def run_batched(index):
            generator = WorkloadGenerator(SPEC)
            index.load(generator.initial_objects())
            for batch in generator.update_batches(250):
                index.update_many((oid, new) for oid, _old, new in batch)
            queries = [
                sorted(index.range_query(window)) for window in generator.queries()
            ]
            positions = {
                oid: index.position_of(oid) for oid in range(SPEC.num_objects)
            }
            index.validate()
            return queries, positions

        expected = run_batched(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            assert run_batched(sharded) == expected

    def test_engine_batches_commit_identical_final_positions(self):
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)

        def run_engine_batch(index):
            generator = WorkloadGenerator(SPEC)
            index.load(generator.initial_objects())
            session = index.engine(num_clients=8)
            updates = [(oid, new) for oid, _old, new in generator.updates(600)]
            session.update_many(updates)
            index.validate()
            return {oid: index.position_of(oid) for oid in range(SPEC.num_objects)}

        expected = run_engine_batch(MovingObjectIndex(config))
        for num_shards in SHARD_COUNTS:
            sharded = ShardedIndex(
                config, partitioner=GridPartitioner.for_shards(num_shards)
            )
            assert run_engine_batch(sharded) == expected


class TestCrossShardKNNTies:
    """Equidistant candidates straddling shard boundaries keep the facade order."""

    @staticmethod
    def tie_objects():
        # Four candidates exactly 0.25 from the centre (the coordinates are
        # powers of two, so the distances are bit-identical floats), plus
        # equidistant diagonal candidates and filler points farther out.
        objects = [
            (11, Point(0.25, 0.5)),   # west  -> shard 2 of a 2x2 grid
            (3, Point(0.75, 0.5)),    # east  -> shard 3
            (7, Point(0.5, 0.25)),    # south -> shard 1
            (5, Point(0.5, 0.75)),    # north -> shard 3
            (20, Point(0.25, 0.25)),  # diagonals: all at the same distance
            (21, Point(0.75, 0.75)),
            (22, Point(0.25, 0.75)),
            (23, Point(0.75, 0.25)),
        ]
        filler = 100
        for bx, by in ((0.02, 0.02), (0.82, 0.02), (0.02, 0.82), (0.82, 0.82)):
            for i in range(3):
                for j in range(3):
                    objects.append(
                        (filler, Point(bx + 0.03 * i, by + 0.03 * j))
                    )
                    filler += 1
        return objects

    def test_constructed_tie_case_matches_single_index(self):
        config = IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE)
        objects = self.tie_objects()
        single = MovingObjectIndex(config)
        single.load(objects)
        sharded = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        sharded.load(objects)
        centre = Point(0.5, 0.5)
        for k in (1, 2, 3, 4, 5, 6, 8, 12, len(objects)):
            expected = single.knn(centre, k)
            assert sharded.knn(centre, k) == expected, f"tie order broke at k={k}"
        # The tie group really is a tie: the first four distances are equal
        # and the oids surface in ascending order.
        top = single.knn(centre, 4)
        assert len({distance for distance, _oid in top}) == 1
        assert [oid for _d, oid in top] == sorted(oid for _d, oid in top)

    def test_ties_survive_boundary_crossing_updates(self):
        config = IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE)
        objects = self.tie_objects()
        single = MovingObjectIndex(config)
        single.load(objects)
        sharded = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        sharded.load(objects)
        # Swap two tie members across the vertical boundary (a migration in
        # the sharded index) and move a filler onto the tie circle.
        moves = [
            (11, Point(0.75, 0.5)),
            (3, Point(0.25, 0.5)),
            (100, Point(0.5, 0.75)),
        ]
        for oid, destination in moves:
            single.update(oid, destination)
            sharded.update(oid, destination)
        assert sharded.migrations > 0
        centre = Point(0.5, 0.5)
        for k in (2, 4, 5, 9):
            assert sharded.knn(centre, k) == single.knn(centre, k)


class TestKNNBoundaryProperty:
    """Property test: kNN equivalence under movement near shard boundaries."""

    #: Coordinates biased onto and around the 2x2 grid boundaries at 0.5.
    coordinate = st.sampled_from(
        [0.0, 0.25, 0.49, 0.499, 0.5, 0.501, 0.51, 0.75, 1.0]
    ) | st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)

    @given(
        positions=st.lists(
            st.tuples(coordinate, coordinate), min_size=4, max_size=24
        ),
        moves=st.lists(
            st.tuples(st.integers(min_value=0, max_value=23),
                      st.tuples(coordinate, coordinate)),
            max_size=8,
        ),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sharded_knn_equals_single_after_boundary_movement(
        self, positions, moves, k
    ):
        config = IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE)
        objects = [(oid, Point(x, y)) for oid, (x, y) in enumerate(positions)]
        single = MovingObjectIndex(config)
        single.load(objects)
        sharded = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        sharded.load(objects)
        for oid, (x, y) in moves:
            if oid >= len(objects):
                continue
            single.update(oid, Point(x, y))
            sharded.update(oid, Point(x, y))
        for query in (Point(0.5, 0.5), Point(0.499, 0.501), Point(0.1, 0.9)):
            assert sharded.knn(query, k) == single.knn(query, k)


class TestExecutionBackendEquivalence:
    """serial == thread == process: the backends change *where* shard work
    runs, never *what* it computes — answers, positions, update outcomes and
    every I/O counter must match the serial path exactly.
    """

    #: Fast movement over a 2x2 grid: the stream is migration-heavy, so the
    #: cross-shard delete+insert handoff runs under every backend.
    BACKEND_SPEC = WorkloadSpec(
        num_objects=400,
        num_updates=900,
        num_queries=12,
        seed=11,
        max_distance=0.09,
    )

    def run_with_backend(self, strategy, backend, workers=None):
        config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
        sharded = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        generator = WorkloadGenerator(self.BACKEND_SPEC)
        sharded.load(generator.initial_objects())
        if backend != "serial":
            sharded.set_parallel(backend=backend, workers=workers)
        outcomes = [
            sharded.update(oid, new).name for oid, _old, new in generator.updates()
        ]
        queries = [sorted(sharded.range_query(w)) for w in generator.queries()]
        knn = [
            sharded.knn(Point(x, y), 7)
            for x, y in ((0.5, 0.5), (0.26, 0.74), (0.97, 0.03))
        ]
        positions = {
            oid: sharded.position_of(oid)
            for oid in range(self.BACKEND_SPEC.num_objects)
        }
        io = sharded.io_snapshot().as_dict()
        migrations = sharded.migrations
        if backend != "serial":
            sharded.detach_parallel()
        sharded.validate()
        return {
            "outcomes": outcomes,
            "queries": queries,
            "knn": knn,
            "positions": positions,
            "io": io,
            "migrations": migrations,
        }

    @pytest.mark.parametrize("strategy", ["TD", "NAIVE", "LBU", "GBU"])
    def test_thread_and_process_match_serial(self, strategy):
        expected = self.run_with_backend(strategy, "serial")
        assert expected["migrations"] > 0  # the stream really migrates
        for backend, workers in (("thread", 2), ("process", 2), ("process", 4)):
            actual = self.run_with_backend(strategy, backend, workers)
            assert actual == expected, (
                f"{strategy}: {backend}[{workers}] diverged from serial"
            )

    def test_batched_updates_match_serial_under_process_backend(self):
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)

        def run(backend):
            sharded = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
            generator = WorkloadGenerator(self.BACKEND_SPEC)
            sharded.load(generator.initial_objects())
            if backend != "serial":
                sharded.set_parallel(backend=backend)
            for batch in generator.update_batches(150):
                sharded.update_many((oid, new) for oid, _old, new in batch)
            result = (
                [sorted(sharded.range_query(w)) for w in generator.queries()],
                {
                    oid: sharded.position_of(oid)
                    for oid in range(self.BACKEND_SPEC.num_objects)
                },
                sharded.io_snapshot().as_dict(),
            )
            if backend != "serial":
                sharded.detach_parallel()
            sharded.validate()
            return result

        expected = run("serial")
        assert run("thread") == expected
        assert run("process") == expected
