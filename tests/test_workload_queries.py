"""Tests for the query-window workload."""

import pytest

from repro.geometry import Rect
from repro.workload import QueryWorkload


class TestQueryWindows:
    def test_windows_lie_inside_the_unit_square(self):
        workload = QueryWorkload(max_side=0.1, seed=1)
        for window in workload.windows(500):
            assert Rect.unit().contains_rect(window)

    def test_window_side_bounded_by_max_side(self):
        workload = QueryWorkload(max_side=0.1, seed=2)
        for window in workload.windows(500):
            assert window.width <= 0.1 + 1e-12
            assert window.height <= 0.1 + 1e-12

    def test_min_side_respected_away_from_borders(self):
        workload = QueryWorkload(max_side=0.2, min_side=0.1, seed=3)
        for window in workload.windows(300):
            # Clipping at the data-space border may shrink a window, so the
            # lower bound is only guaranteed for windows away from the border.
            if 0.2 < window.center().x < 0.8 and 0.2 < window.center().y < 0.8:
                assert window.width >= 0.1 - 1e-12
                assert window.height >= 0.1 - 1e-12

    def test_same_seed_same_windows(self):
        assert QueryWorkload(seed=7).windows(20) == QueryWorkload(seed=7).windows(20)

    def test_different_seeds_differ(self):
        assert QueryWorkload(seed=1).windows(20) != QueryWorkload(seed=2).windows(20)

    def test_invalid_sides_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload(max_side=-0.1)
        with pytest.raises(ValueError):
            QueryWorkload(max_side=0.1, min_side=0.2)

    def test_iter_windows_counts(self):
        workload = QueryWorkload(seed=5)
        assert len(list(workload.iter_windows(37))) == 37

    def test_centres_spread_over_the_space(self):
        workload = QueryWorkload(max_side=0.05, seed=9)
        centres = [window.center() for window in workload.windows(2000)]
        quadrants = {(c.x > 0.5, c.y > 0.5) for c in centres}
        assert len(quadrants) == 4
