"""Unit tests for :class:`repro.storage.stats.IOStatistics`."""

import pytest

from repro.storage import IOStatistics


class TestCounters:
    def test_counters_start_at_zero(self):
        stats = IOStatistics()
        assert stats.total_physical_io == 0
        assert stats.total_logical_io == 0
        assert stats.hit_ratio == 0.0

    def test_total_physical_io_includes_hash_probes(self):
        stats = IOStatistics(physical_reads=3, physical_writes=2, hash_index_reads=4)
        assert stats.total_physical_io == 9

    def test_hit_ratio(self):
        stats = IOStatistics(logical_reads=10, buffer_hits=4)
        assert stats.hit_ratio == pytest.approx(0.4)

    def test_bump_labelled_counter(self):
        stats = IOStatistics()
        stats.bump("splits")
        stats.bump("splits", 2)
        assert stats.extra["splits"] == 3


class TestSnapshotAndDelta:
    def test_snapshot_is_independent_copy(self):
        stats = IOStatistics(physical_reads=1)
        snap = stats.snapshot()
        stats.physical_reads += 5
        assert snap.physical_reads == 1

    def test_snapshot_copies_extra_counters(self):
        stats = IOStatistics()
        stats.bump("splits")
        snap = stats.snapshot()
        stats.bump("splits")
        assert snap.extra["splits"] == 1

    def test_delta_since(self):
        stats = IOStatistics(physical_reads=2, physical_writes=1)
        before = stats.snapshot()
        stats.physical_reads += 3
        stats.hash_index_reads += 1
        delta = stats.delta_since(before)
        assert delta.physical_reads == 3
        assert delta.physical_writes == 0
        assert delta.hash_index_reads == 1
        assert delta.total_physical_io == 4

    def test_delta_of_extra_counters(self):
        stats = IOStatistics()
        stats.bump("splits", 2)
        before = stats.snapshot()
        stats.bump("splits", 3)
        stats.bump("merges", 1)
        delta = stats.delta_since(before)
        assert delta.extra == {"splits": 3, "merges": 1}


class TestResetAndExport:
    def test_reset_zeroes_everything(self):
        stats = IOStatistics(physical_reads=5, logical_writes=2)
        stats.bump("splits")
        stats.reset()
        assert stats.physical_reads == 0
        assert stats.logical_writes == 0
        assert stats.extra == {}

    def test_as_dict_contains_core_and_extra_keys(self):
        stats = IOStatistics(physical_reads=1, physical_writes=2, hash_index_reads=3)
        stats.bump("splits", 7)
        exported = stats.as_dict()
        assert exported["physical_reads"] == 1
        assert exported["total_physical_io"] == 6
        assert exported["splits"] == 7
