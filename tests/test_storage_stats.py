"""Unit tests for :class:`repro.storage.stats.IOStatistics`."""

import pytest

from repro.storage import IOStatistics


class TestCounters:
    def test_counters_start_at_zero(self):
        stats = IOStatistics()
        assert stats.total_physical_io == 0
        assert stats.total_logical_io == 0
        assert stats.hit_ratio == 0.0

    def test_total_physical_io_includes_hash_probes(self):
        stats = IOStatistics(physical_reads=3, physical_writes=2, hash_index_reads=4)
        assert stats.total_physical_io == 9

    def test_hit_ratio(self):
        stats = IOStatistics(logical_reads=10, buffer_hits=4)
        assert stats.hit_ratio == pytest.approx(0.4)

    def test_bump_labelled_counter(self):
        stats = IOStatistics()
        stats.bump("splits")
        stats.bump("splits", 2)
        assert stats.extra["splits"] == 3


class TestSnapshotAndDelta:
    def test_snapshot_is_independent_copy(self):
        stats = IOStatistics(physical_reads=1)
        snap = stats.snapshot()
        stats.physical_reads += 5
        assert snap.physical_reads == 1

    def test_snapshot_copies_extra_counters(self):
        stats = IOStatistics()
        stats.bump("splits")
        snap = stats.snapshot()
        stats.bump("splits")
        assert snap.extra["splits"] == 1

    def test_delta_since(self):
        stats = IOStatistics(physical_reads=2, physical_writes=1)
        before = stats.snapshot()
        stats.physical_reads += 3
        stats.hash_index_reads += 1
        delta = stats.delta_since(before)
        assert delta.physical_reads == 3
        assert delta.physical_writes == 0
        assert delta.hash_index_reads == 1
        assert delta.total_physical_io == 4

    def test_delta_of_extra_counters(self):
        stats = IOStatistics()
        stats.bump("splits", 2)
        before = stats.snapshot()
        stats.bump("splits", 3)
        stats.bump("merges", 1)
        delta = stats.delta_since(before)
        assert delta.extra == {"splits": 3, "merges": 1}


class TestAggregation:
    def test_merge_adds_in_place_and_returns_self(self):
        stats = IOStatistics(physical_reads=2, buffer_hits=1)
        stats.bump("splits", 2)
        other = IOStatistics(physical_reads=3, physical_writes=4, hash_index_reads=1)
        other.bump("splits")
        other.bump("merges", 5)
        returned = stats.merge(other)
        assert returned is stats
        assert stats.physical_reads == 5
        assert stats.physical_writes == 4
        assert stats.buffer_hits == 1
        assert stats.hash_index_reads == 1
        assert stats.extra == {"splits": 3, "merges": 5}

    def test_add_returns_new_instance(self):
        a = IOStatistics(physical_reads=1, logical_reads=2)
        b = IOStatistics(physical_reads=4, dirty_evictions=1)
        total = a + b
        assert total.physical_reads == 5
        assert total.logical_reads == 2
        assert total.dirty_evictions == 1
        # the operands are untouched
        assert a.physical_reads == 1
        assert b.physical_reads == 4

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            IOStatistics() + 3

    def test_sum_merges_many(self):
        parts = [IOStatistics(physical_reads=i) for i in (1, 2, 3)]
        combined = IOStatistics.sum(parts)
        assert combined.physical_reads == 6
        assert all(part.physical_reads == i for part, i in zip(parts, (1, 2, 3)))

    def test_total_is_total_physical_io(self):
        stats = IOStatistics(physical_reads=3, physical_writes=2, hash_index_reads=4)
        assert stats.total() == stats.total_physical_io == 9


class TestResetAndExport:
    def test_reset_zeroes_everything(self):
        stats = IOStatistics(physical_reads=5, logical_writes=2)
        stats.bump("splits")
        stats.reset()
        assert stats.physical_reads == 0
        assert stats.logical_writes == 0
        assert stats.extra == {}

    def test_as_dict_contains_core_and_extra_keys(self):
        stats = IOStatistics(physical_reads=1, physical_writes=2, hash_index_reads=3)
        stats.bump("splits", 7)
        exported = stats.as_dict()
        assert exported["physical_reads"] == 1
        assert exported["total_physical_io"] == 6
        assert exported["splits"] == 7


class TestOverCapacityPeak:
    def test_merge_takes_the_maximum_not_the_sum(self):
        from repro.storage import IOStatistics

        a = IOStatistics(over_capacity_peak=3)
        b = IOStatistics(over_capacity_peak=5)
        assert a.merge(b).over_capacity_peak == 5
        assert IOStatistics.sum(
            [IOStatistics(over_capacity_peak=2), IOStatistics(over_capacity_peak=1)]
        ).over_capacity_peak == 2

    def test_delta_reports_the_rise_and_never_goes_negative(self):
        from repro.storage import IOStatistics

        earlier = IOStatistics(over_capacity_peak=2)
        later = IOStatistics(over_capacity_peak=5)
        assert later.delta_since(earlier).over_capacity_peak == 3
        assert earlier.delta_since(later).over_capacity_peak == 0

    def test_snapshot_reset_and_dict_roundtrip(self):
        from repro.storage import IOStatistics

        stats = IOStatistics(over_capacity_peak=4)
        assert stats.snapshot().over_capacity_peak == 4
        assert stats.as_dict()["over_capacity_peak"] == 4
        stats.reset()
        assert stats.over_capacity_peak == 0


class TestPicklability:
    def test_statistics_round_trip_through_pickle(self):
        """Worker processes report their counters by pickling them back."""
        import pickle

        from repro.storage import IOStatistics

        stats = IOStatistics(
            physical_reads=3,
            physical_writes=2,
            logical_reads=9,
            logical_writes=4,
            buffer_hits=6,
            dirty_evictions=1,
            hash_index_reads=5,
            over_capacity_peak=2,
        )
        stats.bump("splits", 3)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert clone.as_dict() == stats.as_dict()
        # The clone is independent state, not a shared reference.
        clone.physical_reads += 1
        clone.bump("splits")
        assert stats.physical_reads == 3
        assert stats.extra["splits"] == 3
