"""Hot-swapping update strategies on a live index: exactness of the transition.

The tentpole of the adaptive-strategy PR: ``set_strategy`` must transition a
live index between any two of TD/NAIVE/LBU/GBU **in place** — installing LBU
parent pointers by one tree sweep, rebuilding or releasing the GBU summary —
without changing a single answer.  These tests run, for every ordered
strategy pair, a workload → swap → workload sequence and assert positions
and query answers identical to a fresh index built with the final strategy
that saw the same operation stream.  The sharded variants do the same with
per-shard swaps under the serial, thread and process backends, and the
checkpoint tests prove the *live* strategy (not the construction-time one)
round-trips through save/load.
"""

import itertools
import random

import pytest

from repro.api import index_spec, open_index
from repro.core.persistence import load_index, save_index
from repro.geometry import Point, Rect

from tests.conftest import SMALL_PAGE_SIZE, build_index, make_points


STRATEGIES = ("TD", "NAIVE", "LBU", "GBU")
ORDERED_PAIRS = [
    (a, b) for a, b in itertools.product(STRATEGIES, repeat=2) if a != b
]
WHOLE_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def update_stream(num_objects, count, seed):
    """Absolute-position updates: path-independent, so any two indexes that
    apply the same stream must agree on every position."""
    rng = random.Random(seed)
    return [
        (rng.randrange(num_objects), Point(rng.random(), rng.random()))
        for _ in range(count)
    ]


def query_windows(count=25, seed=4):
    rng = random.Random(seed)
    windows = []
    for _ in range(count):
        cx, cy, s = rng.random(), rng.random(), rng.uniform(0.02, 0.2)
        windows.append(
            Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
        )
    return windows


def apply_stream(index, stream):
    for oid, position in stream:
        index.update(oid, position)


def assert_equivalent(actual, reference, num_objects):
    for oid in range(num_objects):
        assert actual.position_of(oid) == reference.position_of(oid), oid
    for window in query_windows():
        assert sorted(actual.range_query(window)) == sorted(
            reference.range_query(window)
        )
    actual.validate()


class TestSingleIndexSwap:
    NUM_OBJECTS = 250

    @pytest.mark.parametrize("initial,final", ORDERED_PAIRS)
    def test_swap_matches_fresh_index_of_final_strategy(self, initial, final):
        before = update_stream(self.NUM_OBJECTS, 200, seed=101)
        after = update_stream(self.NUM_OBJECTS, 200, seed=202)

        swapped = build_index(initial, num_objects=self.NUM_OBJECTS, seed=17)
        apply_stream(swapped, before)
        assert swapped.set_strategy(final) == final
        assert swapped.active_strategy == final
        apply_stream(swapped, after)

        fresh = build_index(final, num_objects=self.NUM_OBJECTS, seed=17)
        apply_stream(fresh, before)
        apply_stream(fresh, after)

        assert_equivalent(swapped, fresh, self.NUM_OBJECTS)

    def test_swap_to_same_strategy_is_a_noop(self):
        index = build_index("GBU", num_objects=100, seed=9)
        strategy = index.strategy
        assert index.set_strategy("gbu") == "GBU"
        assert index.strategy is strategy

    def test_unknown_strategy_is_rejected(self):
        index = build_index("TD", num_objects=50, seed=9)
        with pytest.raises(ValueError, match="unknown strategy"):
            index.set_strategy("BOGUS")
        assert index.active_strategy == "TD"

    def test_config_keeps_the_initial_strategy(self):
        index = build_index("TD", num_objects=50, seed=9)
        index.set_strategy("LBU")
        assert index.config.strategy == "TD"
        assert index.active_strategy == "LBU"

    def test_round_trip_swap_restores_original_behaviour(self):
        # A → B → A must leave a fully functional A (aux state reinstalled).
        for a, b in (("LBU", "TD"), ("GBU", "NAIVE")):
            index = build_index(a, num_objects=150, seed=29)
            index.set_strategy(b)
            index.set_strategy(a)
            assert index.active_strategy == a
            apply_stream(index, update_stream(150, 150, seed=31))
            index.validate()

    def test_checkpoint_round_trips_the_live_strategy(self, tmp_path):
        index = build_index("TD", num_objects=120, seed=5)
        index.set_strategy("GBU")
        apply_stream(index, update_stream(120, 80, seed=7))
        save_index(index, tmp_path / "checkpoint.json")
        restored = load_index(tmp_path / "checkpoint.json")
        assert restored.active_strategy == "GBU"
        assert restored.config.strategy == "TD"
        stream = update_stream(120, 80, seed=12)
        apply_stream(index, stream)
        apply_stream(restored, stream)
        assert_equivalent(restored, index, 120)


def build_sharded(strategy, num_objects, seed, shards=4):
    index = open_index(
        {
            "kind": "sharded",
            "shards": shards,
            "config": {"strategy": strategy, "page_size": SMALL_PAGE_SIZE},
        }
    )
    index.load(make_points(num_objects, seed=seed))
    return index


class TestShardedSwap:
    NUM_OBJECTS = 240

    def run_swapped(self, initial, final, backend):
        before = update_stream(self.NUM_OBJECTS, 160, seed=301)
        after = update_stream(self.NUM_OBJECTS, 160, seed=302)

        swapped = build_sharded(initial, self.NUM_OBJECTS, seed=23)
        if backend != "serial":
            swapped.set_parallel(backend=backend, workers=2)
        apply_stream(swapped, before)
        swapped.set_strategy(final)
        assert swapped.active_strategies() == [final] * swapped.num_shards
        apply_stream(swapped, after)

        fresh = build_sharded(final, self.NUM_OBJECTS, seed=23)
        apply_stream(fresh, before)
        apply_stream(fresh, after)
        try:
            assert_equivalent(swapped, fresh, self.NUM_OBJECTS)
        finally:
            if backend != "serial":
                swapped.detach_parallel()
        swapped.validate()

    @pytest.mark.parametrize("initial,final", ORDERED_PAIRS)
    def test_all_pairs_serial(self, initial, final):
        self.run_swapped(initial, final, "serial")

    @pytest.mark.parametrize("initial,final", ORDERED_PAIRS)
    def test_all_pairs_thread(self, initial, final):
        self.run_swapped(initial, final, "thread")

    @pytest.mark.parametrize(
        "initial,final",
        [("TD", "GBU"), ("GBU", "LBU"), ("LBU", "NAIVE"), ("NAIVE", "TD")],
    )
    def test_rotation_under_process_backend(self, initial, final):
        self.run_swapped(initial, final, "process")

    def test_per_shard_swap_targets_one_shard(self):
        index = build_sharded("TD", self.NUM_OBJECTS, seed=23)
        index.set_strategy("GBU", shard_id=1)
        assert index.active_strategies() == ["TD", "GBU", "TD", "TD"]
        apply_stream(index, update_stream(self.NUM_OBJECTS, 200, seed=41))
        index.validate()

    def test_out_of_range_shard_is_rejected(self):
        index = build_sharded("TD", 60, seed=23)
        with pytest.raises(ValueError):
            index.set_strategy("GBU", shard_id=index.num_shards)

    def test_checkpoint_round_trips_mixed_shard_strategies(self, tmp_path):
        index = build_sharded("NAIVE", self.NUM_OBJECTS, seed=23)
        index.set_strategy("LBU", shard_id=0)
        index.set_strategy("GBU", shard_id=2)
        apply_stream(index, update_stream(self.NUM_OBJECTS, 120, seed=43))
        save_index(index, tmp_path / "checkpoint.json")
        restored = load_index(tmp_path / "checkpoint.json")
        assert restored.active_strategies() == index.active_strategies()
        stream = update_stream(self.NUM_OBJECTS, 120, seed=44)
        apply_stream(index, stream)
        apply_stream(restored, stream)
        assert_equivalent(restored, index, self.NUM_OBJECTS)

    def test_process_backend_round_trips_swapped_strategy_on_detach(self):
        index = build_sharded("TD", 120, seed=23)
        index.set_parallel(backend="process", workers=2)
        try:
            index.set_strategy("GBU", shard_id=1)
            apply_stream(index, update_stream(120, 80, seed=45))
        finally:
            index.detach_parallel()
        # After detach the local shards are authoritative again and must
        # carry the strategy the workers were running.
        assert index.active_strategies() == ["TD", "GBU", "TD", "TD"]
        assert index.shards[1].active_strategy == "GBU"
        index.validate()


class TestSpecRoundTrip:
    def test_adaptive_section_round_trips_through_open_index(self):
        spec = {
            "kind": "sharded",
            "shards": 4,
            "config": {"strategy": "TD", "page_size": SMALL_PAGE_SIZE},
            "adaptive": {"enabled": True, "cooldown": 300, "min_ops": 64},
        }
        index = open_index(spec)
        assert index.adaptive is not None
        assert index.adaptive.policy.cooldown == 300
        round_tripped = index_spec(index)
        assert round_tripped["adaptive"] == {
            "enabled": True,
            "cooldown": 300,
            "min_ops": 64,
        }
        assert index_spec(open_index(round_tripped)) == round_tripped

    def test_unknown_adaptive_key_is_rejected(self):
        with pytest.raises(ValueError, match="unknown adaptive spec keys"):
            open_index(
                {
                    "kind": "sharded",
                    "shards": 2,
                    "adaptive": {"thresold": 2.0},
                }
            )

    def test_adaptive_implies_sharded_topology(self):
        with pytest.raises(ValueError, match="conflicts"):
            open_index({"kind": "single", "adaptive": {"enabled": True}})
