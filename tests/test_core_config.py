"""Tests for :class:`repro.core.config.IndexConfig`."""

import pytest

from repro.core import IndexConfig
from repro.update import TuningParameters


class TestDefaults:
    def test_defaults_follow_the_paper(self):
        config = IndexConfig()
        assert config.page_size == 1024
        assert config.buffer_percent == 1.0
        assert config.strategy == "GBU"
        assert config.split == "quadratic"
        assert config.reinsert_on_underflow is True
        assert config.params.epsilon == pytest.approx(0.003)

    def test_strategy_is_normalised_to_upper_case(self):
        assert IndexConfig(strategy="gbu").strategy == "GBU"
        assert IndexConfig(strategy="lbu").strategy == "LBU"


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(strategy="BTREE")

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(split="hilbert")

    def test_negative_page_size_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(page_size=-1)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(buffer_percent=-0.5)

    def test_bad_bulk_fill_rejected(self):
        with pytest.raises(ValueError):
            IndexConfig(bulk_load_fill=0.0)
        with pytest.raises(ValueError):
            IndexConfig(bulk_load_fill=1.5)


class TestDerivedProperties:
    def test_only_lbu_needs_parent_pointers(self):
        assert IndexConfig(strategy="LBU").needs_parent_pointers
        for name in ("TD", "NAIVE", "GBU"):
            assert not IndexConfig(strategy=name).needs_parent_pointers

    def test_with_overrides_replaces_fields(self):
        config = IndexConfig()
        tweaked = config.with_overrides(strategy="TD", buffer_percent=5.0)
        assert tweaked.strategy == "TD"
        assert tweaked.buffer_percent == 5.0
        assert config.strategy == "GBU"  # original untouched

    def test_with_overrides_of_nested_params(self):
        config = IndexConfig()
        tweaked = config.with_overrides(params=TuningParameters(epsilon=0.03))
        assert tweaked.params.epsilon == 0.03

    def test_describe_mentions_key_settings(self):
        text = IndexConfig(strategy="LBU", buffer_percent=3.0).describe()
        assert "LBU" in text
        assert "3%" in text
        assert "eps=0.003" in text

    def test_describe_reports_max_level_threshold(self):
        assert "L=max" in IndexConfig().describe()
        explicit = IndexConfig(params=TuningParameters(level_threshold=2))
        assert "L=2" in explicit.describe()
