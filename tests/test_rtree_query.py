"""Tests of window queries, point queries and the kNN extension."""

import random

from repro.geometry import Point, Rect
from repro.rtree import RTree
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout

from tests.conftest import SMALL_PAGE_SIZE, make_points


def loaded_tree(count=400, seed=7):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    pool = BufferPool(disk, capacity=0, stats=stats)
    tree = RTree(pool, layout=PageLayout(page_size=SMALL_PAGE_SIZE))
    points = dict()
    for oid, point in make_points(count, seed=seed):
        tree.insert(oid, point)
        points[oid] = point
    return tree, points


class TestRangeQuery:
    def test_matches_brute_force_on_many_windows(self):
        tree, points = loaded_tree()
        rng = random.Random(3)
        for _ in range(50):
            cx, cy, side = rng.random(), rng.random(), rng.uniform(0, 0.3)
            window = Rect(
                max(0, cx - side), max(0, cy - side), min(1, cx + side), min(1, cy + side)
            )
            expected = sorted(oid for oid, p in points.items() if window.contains_point(p))
            assert sorted(tree.range_query(window)) == expected

    def test_whole_space_query_returns_everything(self):
        tree, points = loaded_tree(count=200)
        assert sorted(tree.range_query(Rect.unit())) == sorted(points)

    def test_empty_region_returns_nothing(self):
        tree, _points = loaded_tree(count=100)
        # A sliver outside the unit square cannot contain any object.
        assert tree.range_query(Rect(1.5, 1.5, 1.6, 1.6)) == []

    def test_query_on_empty_tree(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        assert tree.range_query(Rect.unit()) == []

    def test_boundary_points_are_included(self):
        tree, _ = loaded_tree(count=0)
        tree.insert(1, Point(0.5, 0.5))
        assert tree.range_query(Rect(0.5, 0.5, 0.6, 0.6)) == [1]

    def test_query_counts_io(self):
        tree, _points = loaded_tree(count=400)
        before = tree.disk.stats.physical_reads
        tree.range_query(Rect(0.1, 0.1, 0.4, 0.4))
        assert tree.disk.stats.physical_reads > before


class TestPointQuery:
    def test_point_query_finds_exact_object(self):
        tree, points = loaded_tree(count=150)
        oid, point = next(iter(points.items()))
        assert oid in tree.point_query(point)

    def test_point_query_misses_unoccupied_location(self):
        tree, points = loaded_tree(count=10, seed=1)
        probe = Point(0.987654, 0.123456)
        expected = [oid for oid, p in points.items() if p == probe]
        assert tree.point_query(probe) == expected


class TestKnn:
    def test_knn_matches_brute_force(self):
        tree, points = loaded_tree(count=300)
        rng = random.Random(4)
        for _ in range(10):
            probe = Point(rng.random(), rng.random())
            result = tree.knn(probe, 7)
            brute = sorted((p.distance_to(probe), oid) for oid, p in points.items())[:7]
            assert [oid for _, oid in result] == [oid for _, oid in brute]

    def test_knn_distances_are_sorted(self):
        tree, _points = loaded_tree(count=200)
        result = tree.knn(Point(0.5, 0.5), 15)
        distances = [distance for distance, _ in result]
        assert distances == sorted(distances)

    def test_knn_k_larger_than_population(self):
        tree, points = loaded_tree(count=5, seed=2)
        result = tree.knn(Point(0.5, 0.5), 50)
        assert len(result) == len(points)

    def test_knn_zero_or_negative_k(self):
        tree, _points = loaded_tree(count=20)
        assert tree.knn(Point(0.5, 0.5), 0) == []
        assert tree.knn(Point(0.5, 0.5), -3) == []

    def test_knn_on_empty_tree(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        assert tree.knn(Point(0.5, 0.5), 3) == []
