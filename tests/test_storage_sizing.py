"""Unit tests for :class:`repro.storage.sizing.PageLayout`."""

import pytest

from repro.storage import PageLayout


class TestCapacities:
    def test_default_layout_matches_paper_page_size(self):
        layout = PageLayout()
        assert layout.page_size == 1024
        # entry = 4 coords * 4 bytes + 4-byte pointer = 20 bytes;
        # (1024 - 32-byte header) / 20 = 49 entries.
        assert layout.entry_size == 20
        assert layout.leaf_capacity() == 49
        assert layout.internal_capacity == 49

    def test_parent_pointer_costs_leaf_capacity(self):
        layout = PageLayout(page_size=256)
        with_pointer = layout.leaf_capacity(with_parent_pointer=True)
        without_pointer = layout.leaf_capacity(with_parent_pointer=False)
        assert with_pointer <= without_pointer

    def test_min_entries_respects_fill_factor(self):
        layout = PageLayout(page_size=1024, min_fill_factor=0.4)
        assert layout.min_entries(50) == 20
        assert layout.min_entries(1) == 1  # never below one entry

    def test_larger_page_means_larger_fanout(self):
        small = PageLayout(page_size=512)
        large = PageLayout(page_size=4096)
        assert large.leaf_capacity() > small.leaf_capacity()

    def test_4kb_page_fanout_is_paper_scale(self):
        # The paper quotes a fanout of roughly 204 for a 4 KB page.
        layout = PageLayout(page_size=4096)
        assert 190 <= layout.internal_capacity <= 210


class TestValidation:
    def test_tiny_page_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=40)

    def test_zero_page_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=0)

    def test_bad_fill_factor_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(min_fill_factor=0.9)
        with pytest.raises(ValueError):
            PageLayout(min_fill_factor=0.0)


class TestSummarySizing:
    def test_direct_access_entry_much_smaller_than_page(self):
        layout = PageLayout(page_size=1024)
        # The paper reports the table entry at roughly 20 % of the node size
        # (and far less for large pages); it must at least be well under half.
        assert layout.direct_access_entry_size < 0.25 * layout.page_size

    def test_summary_size_grows_with_node_count(self):
        layout = PageLayout()
        small = layout.summary_size_bytes(internal_nodes=10, leaf_nodes=100)
        large = layout.summary_size_bytes(internal_nodes=100, leaf_nodes=1000)
        assert large > small

    def test_summary_ratio_is_small_fraction_of_tree(self):
        layout = PageLayout(page_size=1024)
        # Roughly the paper's setting: ~1% internal nodes.
        ratio = layout.summary_to_tree_ratio(internal_nodes=150, leaf_nodes=20_000)
        assert ratio < 0.01

    def test_summary_ratio_of_empty_tree_is_zero(self):
        assert PageLayout().summary_to_tree_ratio(0, 0) == 0.0
