"""Unit tests for the node split strategies."""

import random

import pytest

from repro.geometry import Point, Rect, union_all
from repro.rtree import Entry, LinearSplit, QuadraticSplit, RStarSplit
from repro.rtree.split import make_split_strategy


def point_entries(coordinates):
    return [Entry(Rect.from_point(Point(x, y)), oid) for oid, (x, y) in enumerate(coordinates)]


def random_entries(count, seed=3):
    rng = random.Random(seed)
    return point_entries([(rng.random(), rng.random()) for _ in range(count)])


ALL_STRATEGIES = [QuadraticSplit(), LinearSplit(), RStarSplit()]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
class TestSplitContracts:
    """Invariants every split algorithm must satisfy."""

    def test_groups_partition_the_entries(self, strategy):
        entries = random_entries(20)
        group_a, group_b = strategy.split(entries, min_entries=4)
        combined = sorted(entry.child for entry in group_a + group_b)
        assert combined == sorted(entry.child for entry in entries)

    def test_both_groups_meet_minimum_fill(self, strategy):
        entries = random_entries(25)
        group_a, group_b = strategy.split(entries, min_entries=8)
        assert len(group_a) >= 8
        assert len(group_b) >= 8

    def test_groups_are_disjoint(self, strategy):
        entries = random_entries(16)
        group_a, group_b = strategy.split(entries, min_entries=4)
        assert not ({e.child for e in group_a} & {e.child for e in group_b})

    def test_split_of_identical_rectangles(self, strategy):
        entries = point_entries([(0.5, 0.5)] * 10)
        group_a, group_b = strategy.split(entries, min_entries=3)
        assert len(group_a) + len(group_b) == 10
        assert len(group_a) >= 3 and len(group_b) >= 3

    def test_split_rejects_too_few_entries(self, strategy):
        with pytest.raises(ValueError):
            strategy.split(point_entries([(0.1, 0.1)]), min_entries=1)

    def test_split_rejects_unsatisfiable_minimum(self, strategy):
        with pytest.raises(ValueError):
            strategy.split(random_entries(5), min_entries=3)

    def test_split_rejects_zero_minimum(self, strategy):
        with pytest.raises(ValueError):
            strategy.split(random_entries(6), min_entries=0)

    def test_split_separates_two_clusters(self, strategy):
        """Entries forming two well-separated clusters should not be mixed
        so badly that the two group MBRs cover each other entirely."""
        cluster_a = [(0.1 + 0.01 * i, 0.1) for i in range(6)]
        cluster_b = [(0.9 - 0.01 * i, 0.9) for i in range(6)]
        entries = point_entries(cluster_a + cluster_b)
        group_a, group_b = strategy.split(entries, min_entries=4)
        mbr_a = union_all(e.rect for e in group_a)
        mbr_b = union_all(e.rect for e in group_b)
        # The overlap between the two group MBRs must be smaller than either
        # MBR (i.e. the split actually separated something).
        assert mbr_a.overlap_area(mbr_b) < max(mbr_a.area(), mbr_b.area()) + 1e-9


class TestQuadraticSeeds:
    def test_seeds_are_the_most_wasteful_pair(self):
        entries = point_entries([(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (0.49, 0.51)])
        seed_a, seed_b = QuadraticSplit._pick_seeds(entries)
        assert {seed_a, seed_b} == {0, 1}


class TestLinearSeeds:
    def test_degenerate_identical_entries_fall_back(self):
        entries = point_entries([(0.5, 0.5)] * 4)
        assert LinearSplit._pick_seeds(entries) == (0, 1)


class TestRStarQuality:
    def test_rstar_overlap_not_worse_than_quadratic_on_grid(self):
        rng = random.Random(11)
        entries = point_entries([(rng.random(), rng.random()) for _ in range(30)])
        quadratic = QuadraticSplit().split(list(entries), min_entries=10)
        rstar = RStarSplit().split(list(entries), min_entries=10)

        def overlap(groups):
            mbr_a = union_all(e.rect for e in groups[0])
            mbr_b = union_all(e.rect for e in groups[1])
            return mbr_a.overlap_area(mbr_b)

        assert overlap(rstar) <= overlap(quadratic) + 1e-9


class TestFactory:
    def test_factory_builds_each_strategy(self):
        assert make_split_strategy("quadratic").name == "quadratic"
        assert make_split_strategy("linear").name == "linear"
        assert make_split_strategy("rstar").name == "rstar"

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_split_strategy("greedy")
