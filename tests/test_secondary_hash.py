"""Tests for the secondary object-ID hash index."""

import random

from repro.geometry import Point
from repro.rtree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout

from tests.conftest import SMALL_PAGE_SIZE, make_points


def tree_with_index(count=300, charge_io=True):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
    points = dict(make_points(count))
    for oid, point in points.items():
        tree.insert(oid, point)
    index = ObjectHashIndex.build_from_tree(tree, charge_io=charge_io)
    return tree, index, points, stats


class TestConstruction:
    def test_build_from_tree_indexes_every_object(self):
        tree, index, points, _ = tree_with_index()
        assert len(index) == len(points)
        assert index.consistency_errors(tree) == []

    def test_lookup_returns_the_correct_leaf(self):
        tree, index, points, _ = tree_with_index(count=150)
        for oid, point in points.items():
            leaf_page = index.peek(oid)
            leaf = tree.peek_node(leaf_page)
            assert leaf.find_entry(oid) is not None

    def test_lookup_of_unknown_object_returns_none(self):
        _, index, _, _ = tree_with_index(count=10)
        assert index.lookup(10_000) is None

    def test_contains(self):
        _, index, points, _ = tree_with_index(count=20)
        oid = next(iter(points))
        assert oid in index
        assert 99_999 not in index


class TestIOCharging:
    def test_each_lookup_charges_one_io_by_default(self):
        _, index, points, stats = tree_with_index(count=50)
        before = stats.hash_index_reads
        for oid in list(points)[:10]:
            index.lookup(oid)
        assert stats.hash_index_reads == before + 10

    def test_charging_can_be_disabled(self):
        _, index, points, stats = tree_with_index(count=50, charge_io=False)
        before = stats.hash_index_reads
        index.lookup(next(iter(points)))
        assert stats.hash_index_reads == before

    def test_peek_never_charges(self):
        _, index, points, stats = tree_with_index(count=50)
        before = stats.hash_index_reads
        index.peek(next(iter(points)))
        assert stats.hash_index_reads == before

    def test_construction_does_not_charge_io(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        for oid, point in make_points(200):
            tree.insert(oid, point)
        io_before = stats.total_physical_io
        ObjectHashIndex.build_from_tree(tree)
        assert stats.total_physical_io == io_before


class TestMaintenance:
    def test_stays_consistent_through_inserts(self):
        tree, index, points, _ = tree_with_index(count=100)
        for oid, point in make_points(200, seed=99):
            tree.insert(oid + 10_000, point)
        assert index.consistency_errors(tree) == []

    def test_stays_consistent_through_deletes(self):
        tree, index, points, _ = tree_with_index(count=250)
        for oid, point in list(points.items())[::2]:
            tree.delete(oid, point)
        assert index.consistency_errors(tree) == []

    def test_stays_consistent_through_interleaved_workload(self):
        tree, index, points, _ = tree_with_index(count=200)
        rng = random.Random(17)
        next_oid = 10_000
        for _ in range(600):
            if points and rng.random() < 0.5:
                oid = rng.choice(list(points))
                tree.delete(oid, points.pop(oid))
            else:
                point = Point(rng.random(), rng.random())
                tree.insert(next_oid, point)
                points[next_oid] = point
                next_oid += 1
        assert index.consistency_errors(tree) == []

    def test_deleted_objects_are_forgotten(self):
        tree, index, points, _ = tree_with_index(count=50)
        oid, point = next(iter(points.items()))
        tree.delete(oid, point)
        assert index.peek(oid) is None

    def test_consistency_errors_detect_stale_mapping(self):
        tree, index, points, _ = tree_with_index(count=50)
        oid = next(iter(points))
        index._leaf_of[oid] = 999_999  # corrupt deliberately
        errors = index.consistency_errors(tree)
        assert any(str(oid) in error for error in errors)

    def test_consistency_errors_detect_phantom_object(self):
        tree, index, _points, _ = tree_with_index(count=50)
        index._leaf_of[123_456] = next(iter(tree.leaf_nodes())).page_id
        errors = index.consistency_errors(tree)
        assert any("123456" in error for error in errors)
