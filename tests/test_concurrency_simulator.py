"""Tests for the discrete-event throughput simulator."""

import pytest

from repro.concurrency import LockMode, OperationTrace, ThroughputSimulator
from repro.concurrency.dgl import GranuleLockRequest


def op(io, granule=None, mode=LockMode.EXCLUSIVE, kind="update"):
    requests = [GranuleLockRequest(granule, mode)] if granule is not None else []
    return OperationTrace(kind=kind, physical_io=io, lock_requests=requests)


class TestOperationTrace:
    def test_duration_combines_io_and_cpu(self):
        trace = op(io=5)
        assert trace.duration(time_per_io=0.01, cpu_time=0.002) == pytest.approx(0.052)

    def test_zero_io_still_costs_cpu(self):
        assert op(io=0).duration(0.01, 0.001) == pytest.approx(0.001)


class TestSimulator:
    def test_independent_operations_run_in_parallel(self):
        simulator = ThroughputSimulator(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        traces = [op(io=10, granule=i) for i in range(4)]
        result = simulator.run(traces)
        # Four non-conflicting operations of 0.1s each on four clients: the
        # makespan is one operation's duration.
        assert result.makespan == pytest.approx(0.1)
        assert result.throughput == pytest.approx(40.0)
        assert result.lock_waits == 0

    def test_conflicting_operations_serialise(self):
        simulator = ThroughputSimulator(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        traces = [op(io=10, granule="hot") for _ in range(4)]
        result = simulator.run(traces)
        assert result.makespan == pytest.approx(0.4)
        assert result.lock_waits > 0

    def test_shared_locks_do_not_serialise(self):
        simulator = ThroughputSimulator(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        traces = [op(io=10, granule="hot", mode=LockMode.SHARED, kind="query") for _ in range(4)]
        result = simulator.run(traces)
        assert result.makespan == pytest.approx(0.1)

    def test_single_client_serialises_everything(self):
        simulator = ThroughputSimulator(num_clients=1, time_per_io=0.01, cpu_time_per_op=0.0)
        traces = [op(io=5, granule=i) for i in range(6)]
        result = simulator.run(traces)
        assert result.makespan == pytest.approx(0.3)

    def test_more_clients_never_reduce_throughput(self):
        traces = [op(io=4, granule=i % 7) for i in range(50)]
        few = ThroughputSimulator(num_clients=2, time_per_io=0.01).run(list(traces))
        many = ThroughputSimulator(num_clients=16, time_per_io=0.01).run(list(traces))
        assert many.throughput >= few.throughput - 1e-9

    def test_cheaper_operations_give_higher_throughput(self):
        cheap = [op(io=2, granule=i) for i in range(40)]
        expensive = [op(io=20, granule=i) for i in range(40)]
        simulator = ThroughputSimulator(num_clients=8, time_per_io=0.01)
        assert simulator.run(cheap).throughput > simulator.run(expensive).throughput

    def test_operation_count_reported(self):
        simulator = ThroughputSimulator(num_clients=2)
        result = simulator.run([op(io=1, granule=1), op(io=1, granule=2)])
        assert result.operations == 2

    def test_empty_trace_list(self):
        result = ThroughputSimulator(num_clients=2).run([])
        assert result.operations == 0
        assert result.throughput == 0.0

    def test_utilisation_bounded_by_one(self):
        traces = [op(io=3, granule=i % 3) for i in range(30)]
        result = ThroughputSimulator(num_clients=5, time_per_io=0.01).run(traces)
        assert 0.0 < result.utilisation <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThroughputSimulator(num_clients=0)
        with pytest.raises(ValueError):
            ThroughputSimulator(time_per_io=-1.0)

    def test_determinism(self):
        traces = [op(io=(i % 5) + 1, granule=i % 4) for i in range(60)]
        first = ThroughputSimulator(num_clients=6, time_per_io=0.01).run(list(traces))
        second = ThroughputSimulator(num_clients=6, time_per_io=0.01).run(list(traces))
        assert first.makespan == second.makespan
        assert first.lock_waits == second.lock_waits
