"""Unit tests for R-tree nodes and entries."""

import pytest

from repro.geometry import Point, Rect
from repro.rtree import Entry, Node


def leaf_entry(oid: int, x: float, y: float) -> Entry:
    return Entry(Rect.from_point(Point(x, y)), oid)


class TestEntry:
    def test_entry_holds_rect_and_child(self):
        entry = Entry(Rect(0, 0, 1, 1), 42)
        assert entry.child == 42
        assert entry.rect == Rect(0, 0, 1, 1)

    def test_copy_is_independent(self):
        entry = Entry(Rect(0, 0, 1, 1), 42)
        duplicate = entry.copy()
        duplicate.rect = Rect(0, 0, 0.5, 0.5)
        assert entry.rect == Rect(0, 0, 1, 1)

    def test_repr_mentions_child(self):
        assert "42" in repr(Entry(Rect(0, 0, 1, 1), 42))


class TestNodeBasics:
    def test_leaf_detection(self):
        assert Node(page_id=1, level=0).is_leaf
        assert not Node(page_id=1, level=2).is_leaf

    def test_len_counts_entries(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(1, 0.1, 0.1)])
        assert len(node) == 1

    def test_add_and_find_entry(self):
        node = Node(page_id=1, level=0)
        node.add_entry(leaf_entry(7, 0.2, 0.3))
        assert node.find_entry(7) is not None
        assert node.find_entry(8) is None

    def test_remove_entry_returns_removed(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(7, 0.2, 0.3)])
        removed = node.remove_entry(7)
        assert removed is not None and removed.child == 7
        assert len(node) == 0

    def test_remove_missing_entry_returns_none(self):
        node = Node(page_id=1, level=0)
        assert node.remove_entry(3) is None

    def test_child_ids(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(1, 0, 0), leaf_entry(2, 1, 1)])
        assert node.child_ids() == [1, 2]

    def test_fullness_and_underflow(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(i, 0.1 * i, 0.1) for i in range(4)])
        assert node.is_full(4)
        assert not node.is_full(5)
        assert node.underflows(5)
        assert not node.underflows(4)

    def test_repr_names_leaf_or_internal(self):
        assert "Leaf" in repr(Node(page_id=1, level=0))
        assert "Internal" in repr(Node(page_id=1, level=1))


class TestNodeMBR:
    def test_mbr_covers_all_entries(self):
        node = Node(
            page_id=1,
            level=0,
            entries=[leaf_entry(1, 0.1, 0.9), leaf_entry(2, 0.8, 0.2), leaf_entry(3, 0.5, 0.5)],
        )
        assert node.mbr() == Rect(0.1, 0.2, 0.8, 0.9)

    def test_mbr_of_empty_node_raises(self):
        with pytest.raises(ValueError):
            Node(page_id=1, level=0).mbr()

    def test_effective_mbr_defaults_to_tight(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(1, 0.3, 0.3)])
        assert node.effective_mbr() == node.mbr()

    def test_effective_mbr_includes_stored_slack(self):
        node = Node(page_id=1, level=0, entries=[leaf_entry(1, 0.3, 0.3)])
        node.stored_mbr = Rect(0.2, 0.2, 0.5, 0.5)
        assert node.effective_mbr() == Rect(0.2, 0.2, 0.5, 0.5)

    def test_effective_mbr_never_smaller_than_tight(self):
        # The stored MBR can become smaller than the tight bound when entries
        # were added after the slack was recorded; the effective MBR must
        # still cover every entry.
        node = Node(page_id=1, level=0, entries=[leaf_entry(1, 0.9, 0.9)])
        node.stored_mbr = Rect(0.1, 0.1, 0.2, 0.2)
        assert node.effective_mbr().contains_rect(node.mbr())
