"""Unit tests for the sharded index facade: routing, migration, fan-out."""

import random

import pytest

from repro.api import UnknownObjectError
from repro.core import IndexConfig, MovingObjectIndex, SpatialIndexFacade
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.update import UpdateOutcome

from tests.conftest import SMALL_PAGE_SIZE, make_points


def build_sharded(num_shards=4, strategy="GBU", num_objects=400, seed=11):
    index = ShardedIndex(
        IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE),
        partitioner=GridPartitioner.for_shards(num_shards),
    )
    index.load(make_points(num_objects, seed=seed))
    return index


class TestFacade:
    def test_sharded_index_is_a_spatial_index_facade(self):
        assert issubclass(ShardedIndex, SpatialIndexFacade)

    def test_partitioner_shard_count_conflict_rejected(self):
        with pytest.raises(ValueError):
            ShardedIndex(partitioner=GridPartitioner(2, 2), num_shards=3)

    def test_load_routes_objects_by_position(self):
        index = build_sharded(num_shards=4)
        assert len(index) == 400
        assert sum(index.shard_populations()) == 400
        for oid in (0, 17, 399):
            shard_id = index.shard_for(oid)
            boundary = index.partitioner.boundary(shard_id)
            assert boundary.contains_point(index.position_of(oid))
        index.validate()

    def test_describe_mentions_shards_and_populations(self):
        index = build_sharded(num_shards=2)
        text = index.describe()
        assert "sharded[2x]" in text
        assert "populations=" in text


class TestRoutingAndMigration:
    def test_update_within_shard_does_not_migrate(self):
        index = ShardedIndex(
            IndexConfig(page_size=SMALL_PAGE_SIZE), partitioner=GridPartitioner(2, 1)
        )
        index.load([(0, Point(0.2, 0.5)), (1, Point(0.8, 0.5))])
        outcome = index.update(0, Point(0.3, 0.6))
        assert outcome is not UpdateOutcome.MIGRATED
        assert index.migrations == 0
        assert index.shard_for(0) == 0

    def test_boundary_crossing_update_migrates(self):
        index = ShardedIndex(
            IndexConfig(page_size=SMALL_PAGE_SIZE), partitioner=GridPartitioner(2, 1)
        )
        index.load([(0, Point(0.2, 0.5)), (1, Point(0.8, 0.5))])
        outcome = index.update(0, Point(0.9, 0.5))
        assert outcome is UpdateOutcome.MIGRATED
        assert index.migrations == 1
        assert index.shard_for(0) == 1
        assert 0 not in index.shards[0]
        assert 0 in index.shards[1]
        assert index.position_of(0) == Point(0.9, 0.5)
        index.validate()

    def test_update_unknown_object_raises(self):
        index = build_sharded()
        with pytest.raises(KeyError):
            index.update(10_000, Point(0.5, 0.5))

    def test_insert_routes_and_duplicate_rejected(self):
        index = build_sharded()
        index.insert(10_000, Point(0.1, 0.9))
        assert index.shard_for(10_000) == index.partitioner.shard_of(Point(0.1, 0.9))
        with pytest.raises(ValueError):
            index.insert(10_000, Point(0.2, 0.2))

    def test_delete_removes_from_directory_and_shard(self):
        index = build_sharded()
        shard_id = index.shard_for(5)
        assert index.delete(5)
        assert index.shard_for(5) is None
        assert 5 not in index.shards[shard_id]
        with pytest.raises(UnknownObjectError):
            index.delete(5)
        assert not index.delete(5, strict=False)

    def test_validate_detects_directory_corruption(self):
        index = build_sharded(num_shards=4)
        oid = next(iter(index._shard_of))
        index._shard_of[oid] = (index._shard_of[oid] + 1) % index.num_shards
        with pytest.raises(AssertionError):
            index.validate()


class TestQueries:
    def test_range_query_matches_brute_force(self):
        index = build_sharded(num_shards=8, num_objects=500)
        rng = random.Random(3)
        for _ in range(25):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0.05, 0.4)
            window = Rect(
                max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s)
            )
            expected = sorted(
                oid
                for oid in range(500)
                if window.contains_point(index.position_of(oid))
            )
            assert sorted(index.range_query(window)) == expected

    def test_knn_matches_brute_force(self):
        index = build_sharded(num_shards=8, num_objects=500)
        rng = random.Random(5)
        for _ in range(20):
            probe = Point(rng.random(), rng.random())
            expected = sorted(
                (probe.distance_to(index.position_of(oid)), oid)
                for oid in range(500)
            )[:7]
            actual = index.knn(probe, 7)
            assert [oid for _d, oid in actual] == [oid for _d, oid in expected]
            for (actual_distance, _), (expected_distance, _) in zip(actual, expected):
                assert actual_distance == pytest.approx(expected_distance)

    def test_knn_edge_cases(self):
        index = build_sharded(num_objects=50)
        assert index.knn(Point(0.5, 0.5), 0) == []
        assert len(index.knn(Point(0.5, 0.5), 500)) == 50

    def test_positions_outside_the_unit_square_stay_equivalent(self):
        """Routing clamps into the unit square, but stored positions beyond
        it must still be found: fan-out and kNN pruning use each shard's
        content MBR, not just its boundary rectangle."""
        from repro.core import MovingObjectIndex

        objects = make_points(120, seed=9) + [
            (500, Point(0.75, 1.8)),
            (501, Point(-0.6, 0.25)),
            (502, Point(1.4, -0.2)),
        ]
        single = MovingObjectIndex(IndexConfig(page_size=SMALL_PAGE_SIZE))
        single.load(objects)
        sharded = ShardedIndex(
            IndexConfig(page_size=SMALL_PAGE_SIZE),
            partitioner=GridPartitioner.for_shards(4),
        )
        sharded.load(objects)
        sharded.validate()
        for window in (
            Rect(0.7, 1.7, 0.8, 1.9),     # only reachable via the content MBR
            Rect(-1.0, -1.0, 2.0, 2.0),   # everything
            Rect(0.2, 0.2, 0.6, 0.6),     # interior
        ):
            assert sorted(sharded.range_query(window)) == sorted(
                single.range_query(window)
            )
        for probe in (Point(0.25, 2.0), Point(0.5, 0.5), Point(-1.0, 0.0)):
            assert sharded.knn(probe, 3) == single.knn(probe, 3)
        # a move further outside the square keeps routing consistent
        sharded.update(500, Point(0.2, 1.9))
        sharded.validate()
        assert sharded.shard_for(500) == sharded.partitioner.shard_of(Point(0.2, 1.9))


class TestBatchOperations:
    def test_update_many_routes_and_migrates(self):
        index = ShardedIndex(
            IndexConfig(page_size=SMALL_PAGE_SIZE), partitioner=GridPartitioner(2, 1)
        )
        objects = make_points(200, seed=7)
        index.load(objects)
        rng = random.Random(13)
        updates = []
        for oid in range(0, 200, 2):
            updates.append((oid, Point(rng.random(), rng.random())))
        result = index.update_many(updates)
        assert result.updates == 100
        assert result.migrations > 0
        assert result.migrations == index.migrations
        for oid, target in updates:
            assert index.position_of(oid) == target
        index.validate()

    def test_update_many_coalesces_repeated_objects(self):
        index = build_sharded(num_objects=100)
        final = Point(0.42, 0.24)
        result = index.update_many([(3, Point(0.9, 0.9)), (3, final)])
        assert result.updates == 2
        assert result.coalesced == 1
        assert index.position_of(3) == final

    def test_update_many_unknown_object_leaves_index_untouched(self):
        index = build_sharded(num_objects=100)
        positions = {oid: index.position_of(oid) for oid in range(100)}
        with pytest.raises(KeyError):
            index.update_many([(0, Point(0.5, 0.5)), (10_000, Point(0.1, 0.1))])
        assert {oid: index.position_of(oid) for oid in range(100)} == positions

    def test_apply_mixed_stream_with_barriers(self):
        index = build_sharded(num_objects=200)
        target = Point(0.31, 0.62)
        result = index.apply([
            ("update", 0, target),
            ("insert", 900, Point(0.5, 0.5)),
            ("range_query", Rect(0.3, 0.6, 0.32, 0.64)),
            ("delete", 900),
            ("update", 1, Point(0.9, 0.1)),
        ])
        assert result.inserts == 1
        assert result.deletes == 1
        assert len(result.queries) == 1
        assert 0 in result.queries[0]  # the barrier saw the earlier update
        assert 900 not in index
        assert index.position_of(1) == Point(0.9, 0.1)
        index.validate()

    def test_apply_parse_error_executes_nothing(self):
        index = build_sharded(num_objects=100)
        before = {oid: index.position_of(oid) for oid in range(100)}
        with pytest.raises(ValueError):
            index.apply([
                ("update", 0, Point(0.5, 0.5)),
                ("insert", 1, Point(0.2, 0.2)),  # oid 1 already exists
            ])
        assert {oid: index.position_of(oid) for oid in range(100)} == before


class TestStatistics:
    def test_io_snapshot_merges_shard_counters(self):
        index = build_sharded(num_shards=4, num_objects=300)
        rng = random.Random(17)
        for _ in range(100):
            index.update(rng.randrange(300), Point(rng.random(), rng.random()))
        merged = index.io_snapshot()
        assert merged.total() == sum(
            shard.io_snapshot().total() for shard in index.shards
        )
        assert merged.total() > 0

    def test_reset_statistics_clears_everything(self):
        index = build_sharded(num_shards=2, num_objects=200)
        rng = random.Random(19)
        for _ in range(100):
            index.update(rng.randrange(200), Point(rng.random(), rng.random()))
        assert index.migrations > 0
        index.reset_statistics()
        assert index.migrations == 0
        assert index.io_snapshot().total() == 0


class TestKNNPruningRadius:
    """The running k-th distance is threaded into each per-shard search."""

    @staticmethod
    def build_two_shards():
        index = ShardedIndex(
            IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE, buffer_percent=0.0),
            partitioner=GridPartitioner(2, 1),
        )
        # Left shard: a tight cluster of 9 objects around the query point.
        objects = [(i, Point(0.24 + 0.002 * i, 0.5)) for i in range(9)]
        # Right shard: one near object (the eventual 10th neighbour) plus a
        # large spread-out population the pruned search must never visit.
        objects.append((9, Point(0.6, 0.5)))
        oid = 10
        for i in range(15):
            for j in range(15):
                objects.append((oid, Point(0.62 + 0.024 * i, 0.03 + 0.064 * j)))
                oid += 1
        index.load(objects)
        return index, list(objects)

    def test_answer_matches_the_single_index_facade(self):
        index, objects = self.build_two_shards()
        single = MovingObjectIndex(
            IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE, buffer_percent=0.0)
        )
        single.load(objects)
        for k in (1, 5, 10, 20):
            assert index.knn(Point(0.25, 0.5), k) == single.knn(Point(0.25, 0.5), k)

    def test_visited_shard_pays_less_io_than_a_full_k_search(self):
        index, _objects = self.build_two_shards()
        point = Point(0.25, 0.5)
        right = index.shards[1]

        index.reset_statistics()
        result = index.knn(point, 10)
        pruned_reads = right.stats.logical_reads
        # The right shard had to be visited (it supplies the 10th neighbour)...
        assert any(oid == 9 for _distance, oid in result)
        assert pruned_reads > 0

        # ...but consuming its stream only until the candidate distance
        # exceeds the running k-th distance costs strictly less I/O than the
        # full k-search the old fan-out paid.
        right.reset_statistics()
        right.tree.knn(point, 10)
        full_reads = right.stats.logical_reads
        assert pruned_reads < full_reads

    def test_shards_beyond_the_radius_pay_nothing(self):
        index, _objects = self.build_two_shards()
        index.reset_statistics()
        index.knn(Point(0.25, 0.5), 5)  # the left cluster alone satisfies k
        assert index.shards[1].stats.logical_reads == 0


class TestBufferSplitMinimumFrame:
    """A nonzero aggregate buffer never leaves a non-empty shard at 0 frames."""

    def test_scarce_capacity_gives_every_nonempty_shard_one_frame(self):
        index = build_sharded(num_shards=4)
        sizes = [len(shard.disk) for shard in index.shards]
        index._split_buffer_capacity(2, sizes)
        caps = [shard.buffer.capacity for shard in index.shards]
        assert all(cap >= 1 for cap in caps)
        # Documented tie-break: the minimum takes precedence, the aggregate
        # runs over by the deficit.
        assert sum(caps) == 4

    def test_skewed_sizes_steal_from_the_largest_share(self):
        index = build_sharded(num_shards=4)
        index._split_buffer_capacity(5, [96, 2, 1, 1])
        caps = [shard.buffer.capacity for shard in index.shards]
        assert caps == [2, 1, 1, 1]  # aggregate stays exact: donors had spare

    def test_zero_capacity_stays_zero(self):
        index = build_sharded(num_shards=4)
        index._split_buffer_capacity(0, [10, 10, 10, 10])
        assert [shard.buffer.capacity for shard in index.shards] == [0, 0, 0, 0]

    def test_empty_shard_gets_no_frame(self):
        index = build_sharded(num_shards=4)
        index._split_buffer_capacity(3, [10, 0, 10, 10])
        caps = [shard.buffer.capacity for shard in index.shards]
        assert caps[1] == 0
        assert all(cap >= 1 for i, cap in enumerate(caps) if i != 1)
        assert sum(caps) == 3

    def test_configured_percentage_respects_the_minimum(self):
        index = build_sharded(num_shards=4, num_objects=60)
        index.configure_buffer(1.0)  # tiny database: capacity < shard count
        for shard in index.shards:
            if len(shard.disk) > 0:
                assert shard.buffer.capacity >= 1
