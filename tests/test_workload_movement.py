"""Tests for the movement model."""

import math
import random

import pytest

from repro.geometry import Point, Rect
from repro.workload import MovementModel


class TestBoundedMovement:
    def test_step_never_exceeds_max_distance_per_axis(self):
        model = MovementModel(max_distance=0.05, seed=3)
        position = Point(0.5, 0.5)
        for _ in range(500):
            new = model.next_position(1, position)
            assert abs(new.x - position.x) <= 0.05 + 1e-12
            assert abs(new.y - position.y) <= 0.05 + 1e-12
            position = new

    def test_positions_stay_in_unit_square(self):
        model = MovementModel(max_distance=0.3, seed=4)
        position = Point(0.01, 0.99)
        for _ in range(300):
            position = model.next_position(2, position)
            assert Rect.unit().contains_point(position)

    def test_zero_distance_means_stationary(self):
        model = MovementModel(max_distance=0.0, seed=5)
        assert model.next_position(1, Point(0.4, 0.6)) == Point(0.4, 0.6)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            MovementModel(max_distance=-0.1)

    def test_same_seed_same_trajectory(self):
        a = MovementModel(max_distance=0.05, seed=11)
        b = MovementModel(max_distance=0.05, seed=11)
        pa = pb = Point(0.5, 0.5)
        for _ in range(50):
            pa = a.next_position(1, pa)
            pb = b.next_position(1, pb)
            assert pa == pb

    def test_larger_max_distance_moves_objects_further(self):
        slow = MovementModel(max_distance=0.01, seed=6)
        fast = MovementModel(max_distance=0.2, seed=6)
        start = Point(0.5, 0.5)
        slow_total = sum(
            start.distance_to(slow.next_position(i, start)) for i in range(200)
        )
        fast_total = sum(
            start.distance_to(fast.next_position(i, start)) for i in range(200)
        )
        assert fast_total > slow_total

    def test_with_max_distance_builds_adjusted_copy(self):
        model = MovementModel(max_distance=0.05, seed=1, trend_fraction=0.5)
        copy = model.with_max_distance(0.2)
        assert copy.max_distance == 0.2
        assert copy.trend_fraction == 0.5


class TestTrendingObjects:
    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            MovementModel(trend_fraction=1.5)
        with pytest.raises(ValueError):
            MovementModel(trend_strength=-0.1)

    def test_trending_objects_drift_consistently(self):
        model = MovementModel(max_distance=0.02, seed=9, trend_fraction=1.0, trend_strength=1.0)
        position = Point(0.5, 0.5)
        positions = [position]
        for _ in range(30):
            position = model.next_position(7, position)
            positions.append(position)
        # With full trend strength the displacement direction is fixed, so the
        # net displacement should be close to the sum of step lengths.
        net = positions[0].distance_to(positions[-1])
        assert net > 0.02 * 30 * 0.5 or net > 0.3  # allow clamping at the border

    def test_non_trending_random_walk_wanders_less_far(self):
        trending = MovementModel(max_distance=0.02, seed=10, trend_fraction=1.0, trend_strength=1.0)
        wandering = MovementModel(max_distance=0.02, seed=10, trend_fraction=0.0)
        start = Point(0.5, 0.5)
        p_trend = p_wander = start
        for _ in range(100):
            p_trend = trending.next_position(3, p_trend)
            p_wander = wandering.next_position(3, p_wander)
        assert start.distance_to(p_trend) >= start.distance_to(p_wander)
