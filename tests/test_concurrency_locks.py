"""Tests for the multi-granularity lock manager."""

from repro.concurrency import LockManager, LockMode
from repro.concurrency.locks import compatible


S = LockMode.SHARED
X = LockMode.EXCLUSIVE
IS = LockMode.INTENTION_SHARED
IX = LockMode.INTENTION_EXCLUSIVE


class TestCompatibilityMatrix:
    def test_shared_locks_are_compatible(self):
        assert compatible(S, S)

    def test_exclusive_conflicts_with_everything(self):
        for mode in (IS, IX, S, X):
            assert not compatible(X, mode)
            assert not compatible(mode, X) or mode is None

    def test_intention_modes_are_compatible_with_each_other(self):
        assert compatible(IS, IX)
        assert compatible(IX, IS)
        assert compatible(IX, IX)

    def test_shared_conflicts_with_intention_exclusive(self):
        assert not compatible(S, IX)
        assert not compatible(IX, S)


class TestAcquisition:
    def test_try_acquire_grants_free_resource(self):
        manager = LockManager()
        assert manager.try_acquire("leaf1", owner="a", mode=X)
        assert manager.holders("leaf1") == {"a": X}

    def test_conflicting_request_is_denied(self):
        manager = LockManager()
        manager.try_acquire("leaf1", owner="a", mode=X)
        assert not manager.try_acquire("leaf1", owner="b", mode=S)

    def test_compatible_requests_coexist(self):
        manager = LockManager()
        assert manager.try_acquire("leaf1", "a", S)
        assert manager.try_acquire("leaf1", "b", S)
        assert set(manager.holders("leaf1")) == {"a", "b"}

    def test_reacquisition_by_same_owner_is_noop(self):
        manager = LockManager()
        assert manager.try_acquire("leaf1", "a", X)
        assert manager.try_acquire("leaf1", "a", X)
        assert manager.try_acquire("leaf1", "a", S)  # weaker request under X

    def test_upgrade_from_shared_to_exclusive_when_alone(self):
        manager = LockManager()
        manager.try_acquire("leaf1", "a", S)
        assert manager.try_acquire("leaf1", "a", X)
        assert manager.holders("leaf1")["a"] == X

    def test_upgrade_blocked_by_other_shared_holder(self):
        manager = LockManager()
        manager.try_acquire("leaf1", "a", S)
        manager.try_acquire("leaf1", "b", S)
        assert not manager.try_acquire("leaf1", "a", X)


class TestAllOrNothing:
    def test_acquire_all_succeeds_atomically(self):
        manager = LockManager()
        requests = [("leaf1", X), ("leaf2", S), ("tree", IX)]
        assert manager.try_acquire_all(requests, owner="a")
        assert manager.locks_of("a") == {"leaf1", "leaf2", "tree"}

    def test_acquire_all_fails_without_partial_grants(self):
        manager = LockManager()
        manager.try_acquire("leaf2", "other", X)
        requests = [("leaf1", X), ("leaf2", X)]
        assert not manager.try_acquire_all(requests, owner="a")
        assert manager.locks_of("a") == set()
        assert manager.wait_count == 1

    def test_acquire_all_allows_already_held_resources(self):
        manager = LockManager()
        manager.try_acquire("leaf1", "a", X)
        assert manager.try_acquire_all([("leaf1", S), ("leaf2", S)], owner="a")


class TestRelease:
    def test_release_all_frees_resources(self):
        manager = LockManager()
        manager.try_acquire_all([("leaf1", X), ("leaf2", X)], owner="a")
        manager.release_all("a")
        assert manager.try_acquire("leaf1", "b", X)
        assert manager.try_acquire("leaf2", "b", X)
        assert manager.held_resources() == {"leaf1", "leaf2"}

    def test_release_of_unknown_owner_is_silent(self):
        LockManager().release_all("ghost")

    def test_grant_counter_increments(self):
        manager = LockManager()
        manager.try_acquire("leaf1", "a", S)
        manager.try_acquire("leaf1", "b", S)
        assert manager.grant_count == 2
