"""Tests for the initial-distribution generators."""

import random

import pytest

from repro.geometry import Rect
from repro.workload import (
    gaussian_positions,
    hotspot_positions,
    initial_positions,
    skewed_positions,
    uniform_positions,
)


UNIT = Rect.unit()


class TestCommonContracts:
    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed", "hotspot"])
    def test_positions_stay_in_unit_square(self, name):
        for point in initial_positions(name, 500, seed=3):
            assert UNIT.contains_point(point)

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed", "hotspot"])
    def test_requested_count_is_produced(self, name):
        assert len(initial_positions(name, 321, seed=1)) == 321

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed", "hotspot"])
    def test_same_seed_same_positions(self, name):
        assert initial_positions(name, 50, seed=9) == initial_positions(name, 50, seed=9)

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed", "hotspot"])
    def test_different_seeds_differ(self, name):
        assert initial_positions(name, 50, seed=1) != initial_positions(name, 50, seed=2)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            initial_positions("zipf", 10)

    def test_skew_alias(self):
        assert len(initial_positions("skew", 10, seed=0)) == 10

    def test_random_instance_can_be_passed(self):
        rng = random.Random(42)
        points = uniform_positions(10, rng)
        assert len(points) == 10


class TestShapes:
    def test_uniform_spreads_over_all_quadrants(self):
        points = uniform_positions(2000, seed=5)
        quadrants = {(p.x > 0.5, p.y > 0.5) for p in points}
        assert len(quadrants) == 4

    def test_gaussian_concentrates_near_the_center(self):
        points = gaussian_positions(2000, seed=5)
        near_center = sum(1 for p in points if 0.25 <= p.x <= 0.75 and 0.25 <= p.y <= 0.75)
        assert near_center / len(points) > 0.8

    def test_skewed_concentrates_near_the_origin(self):
        points = skewed_positions(2000, seed=5)
        # With the default exponent 3, P(x <= 0.3) = 0.3^(1/3) per axis, so
        # roughly 45 % of the points land in the origin-corner square — far
        # above the 9 % a uniform distribution would put there.
        near_origin = sum(1 for p in points if p.x <= 0.3 and p.y <= 0.3)
        assert near_origin / len(points) > 0.35

    def test_skewed_leaves_most_space_empty(self):
        """The paper notes queries are cheap on the skewed distribution
        because most of the space is empty."""
        points = skewed_positions(2000, seed=7)
        far_corner = sum(1 for p in points if p.x > 0.7 and p.y > 0.7)
        assert far_corner / len(points) < 0.02

    def test_gaussian_spread_controlled_by_sigma(self):
        tight = gaussian_positions(1000, seed=3, sigma=0.05)
        wide = gaussian_positions(1000, seed=3, sigma=0.3)

        def spread(points):
            mean_x = sum(p.x for p in points) / len(points)
            return sum((p.x - mean_x) ** 2 for p in points) / len(points)

        assert spread(tight) < spread(wide)

    def test_skew_exponent_must_be_positive(self):
        with pytest.raises(ValueError):
            skewed_positions(10, exponent=0.0)


class TestHotspot:
    def cell_counts(self, points, cells=4):
        counts = {}
        for p in points:
            cell = (min(cells - 1, int(p.x * cells)), min(cells - 1, int(p.y * cells)))
            counts[cell] = counts.get(cell, 0) + 1
        return counts

    def test_mass_concentrates_in_few_cells(self):
        """Zipf occupancy: the hottest grid cell holds far more than its
        uniform share (1/16 for the default 4x4 grid)."""
        points = hotspot_positions(2000, seed=5)
        counts = self.cell_counts(points)
        hottest = max(counts.values())
        assert hottest / len(points) > 0.25

    def test_most_cells_stay_sparse(self):
        points = hotspot_positions(2000, seed=5)
        counts = self.cell_counts(points)
        sparse = sum(1 for count in counts.values() if count < 2000 / 16)
        assert sparse >= 10  # most of the 16 cells hold less than a fair share

    def test_exponent_flattens_or_sharpens_the_skew(self):
        sharp = hotspot_positions(2000, seed=3, exponent=2.5)
        flat = hotspot_positions(2000, seed=3, exponent=0.2)
        assert max(self.cell_counts(sharp).values()) > max(
            self.cell_counts(flat).values()
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            hotspot_positions(10, cells=0)
        with pytest.raises(ValueError):
            hotspot_positions(10, exponent=0.0)

    def test_generator_spec_accepts_hotspot(self):
        from repro.workload import WorkloadGenerator, WorkloadSpec

        spec = WorkloadSpec(
            num_objects=300,
            distribution="hotspot",
            hotspot_cells=2,
            hotspot_exponent=2.0,
            seed=4,
        )
        generator = WorkloadGenerator(spec)
        objects = generator.initial_objects()
        assert len(objects) == 300
        counts = self.cell_counts([p for _oid, p in objects], cells=2)
        assert max(counts.values()) / 300 > 0.5

    def test_spec_rejects_invalid_hotspot_parameters(self):
        from repro.workload import WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec(distribution="hotspot", hotspot_cells=0)
        with pytest.raises(ValueError):
            WorkloadSpec(distribution="hotspot", hotspot_exponent=-1.0)
