"""Tests for the initial-distribution generators."""

import random

import pytest

from repro.geometry import Rect
from repro.workload import (
    gaussian_positions,
    initial_positions,
    skewed_positions,
    uniform_positions,
)


UNIT = Rect.unit()


class TestCommonContracts:
    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed"])
    def test_positions_stay_in_unit_square(self, name):
        for point in initial_positions(name, 500, seed=3):
            assert UNIT.contains_point(point)

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed"])
    def test_requested_count_is_produced(self, name):
        assert len(initial_positions(name, 321, seed=1)) == 321

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed"])
    def test_same_seed_same_positions(self, name):
        assert initial_positions(name, 50, seed=9) == initial_positions(name, 50, seed=9)

    @pytest.mark.parametrize("name", ["uniform", "gaussian", "skewed"])
    def test_different_seeds_differ(self, name):
        assert initial_positions(name, 50, seed=1) != initial_positions(name, 50, seed=2)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            initial_positions("zipf", 10)

    def test_skew_alias(self):
        assert len(initial_positions("skew", 10, seed=0)) == 10

    def test_random_instance_can_be_passed(self):
        rng = random.Random(42)
        points = uniform_positions(10, rng)
        assert len(points) == 10


class TestShapes:
    def test_uniform_spreads_over_all_quadrants(self):
        points = uniform_positions(2000, seed=5)
        quadrants = {(p.x > 0.5, p.y > 0.5) for p in points}
        assert len(quadrants) == 4

    def test_gaussian_concentrates_near_the_center(self):
        points = gaussian_positions(2000, seed=5)
        near_center = sum(1 for p in points if 0.25 <= p.x <= 0.75 and 0.25 <= p.y <= 0.75)
        assert near_center / len(points) > 0.8

    def test_skewed_concentrates_near_the_origin(self):
        points = skewed_positions(2000, seed=5)
        # With the default exponent 3, P(x <= 0.3) = 0.3^(1/3) per axis, so
        # roughly 45 % of the points land in the origin-corner square — far
        # above the 9 % a uniform distribution would put there.
        near_origin = sum(1 for p in points if p.x <= 0.3 and p.y <= 0.3)
        assert near_origin / len(points) > 0.35

    def test_skewed_leaves_most_space_empty(self):
        """The paper notes queries are cheap on the skewed distribution
        because most of the space is empty."""
        points = skewed_positions(2000, seed=7)
        far_corner = sum(1 for p in points if p.x > 0.7 and p.y > 0.7)
        assert far_corner / len(points) < 0.02

    def test_gaussian_spread_controlled_by_sigma(self):
        tight = gaussian_positions(1000, seed=3, sigma=0.05)
        wide = gaussian_positions(1000, seed=3, sigma=0.3)

        def spread(points):
            mean_x = sum(p.x for p in points) / len(points)
            return sum((p.x - mean_x) ** 2 for p in points) / len(points)

        assert spread(tight) < spread(wide)

    def test_skew_exponent_must_be_positive(self):
        with pytest.raises(ValueError):
            skewed_positions(10, exponent=0.0)
