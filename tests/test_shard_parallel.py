"""Tests for the parallel shard-execution backends (``repro.shard.parallel``).

The equivalence suite (``tests/test_shard_equivalence.py``) proves that
serial, thread and process execution compute identical answers and I/O
counters; this file covers the backend machinery itself: lifecycle,
kernel-backend propagation into workers, spec/checkpoint round-trips,
detach state sync, the engine guard, and rebalancing between workers.
"""

import os

import pytest

from repro.api import IndexBuilder, index_spec, open_index
from repro.core import IndexConfig, MovingObjectIndex
from repro.core.persistence import load_index, save_index
from repro.geometry import Point, Rect, kernels
from repro.shard import BACKENDS, GridPartitioner, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE

SPEC = WorkloadSpec(
    num_objects=200, num_updates=300, num_queries=6, seed=5, max_distance=0.08
)


def build_sharded(strategy="GBU", shards=4):
    config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
    index = ShardedIndex(config, partitioner=GridPartitioner.for_shards(shards))
    generator = WorkloadGenerator(SPEC)
    index.load(generator.initial_objects())
    return index, generator


class TestBackendLifecycle:
    def test_backend_names_are_the_public_contract(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_serial_is_the_default_and_a_no_op(self):
        index, _ = build_sharded()
        assert index.parallel_spec is None
        index.set_parallel("serial")
        assert index.parallel_spec is None
        index.detach_parallel()  # harmless when nothing is attached

    def test_unknown_backend_is_rejected(self):
        index, _ = build_sharded()
        with pytest.raises(ValueError):
            index.set_parallel("gpu")

    def test_worker_count_is_clamped_to_the_shard_count(self):
        index, _ = build_sharded(shards=4)
        index.set_parallel("process", workers=64)
        assert index.parallel_spec == {"backend": "process", "workers": 4}
        index.detach_parallel()

    def test_reattach_replaces_the_backend(self):
        index, generator = build_sharded()
        index.set_parallel("thread", workers=2)
        assert "thread[2]" in index.describe()
        index.set_parallel("process", workers=2)
        assert "process[2]" in index.describe()
        for oid, _old, new in generator.updates(40):
            index.update(oid, new)
        index.detach_parallel()
        assert index.parallel_spec is None
        index.validate()

    def test_detach_syncs_worker_state_back(self):
        index, generator = build_sharded()
        serial_index, serial_generator = build_sharded()
        index.set_parallel("process", workers=2)
        for (oid, _o, new), (soid, _so, snew) in zip(
            generator.updates(), serial_generator.updates()
        ):
            index.update(oid, new)
            serial_index.update(soid, snew)
        # The I/O contract holds while the backend is attached; detach
        # restores the trees and the exact counters but (documented) brings
        # the buffers back cold, so the snapshot is taken first.
        attached_io = index.io_snapshot().as_dict()
        assert attached_io == serial_index.io_snapshot().as_dict()
        index.detach_parallel()
        # After detach the local shards are authoritative again: the synced
        # counters, answers and positions all match an index that never
        # left serial.
        assert index.io_snapshot().as_dict() == attached_io
        window = Rect(0.2, 0.2, 0.7, 0.7)
        assert sorted(index.range_query(window)) == sorted(
            serial_index.range_query(window)
        )
        assert {oid: index.position_of(oid) for oid in range(SPEC.num_objects)} == {
            oid: serial_index.position_of(oid) for oid in range(SPEC.num_objects)
        }
        index.validate()

    def test_engine_is_refused_under_process_backend(self):
        index, _ = build_sharded()
        index.set_parallel("process", workers=2)
        with pytest.raises(RuntimeError, match="detach"):
            index.engine()
        index.detach_parallel()
        index.engine(num_clients=2)  # serial again: engine works

    def test_single_index_refuses_parallel_backends(self):
        single = MovingObjectIndex(IndexConfig(page_size=SMALL_PAGE_SIZE))
        single.set_parallel("serial")  # accepted no-op
        single.detach_parallel()
        with pytest.raises(ValueError, match="sharded"):
            single.set_parallel("process")


class TestKernelBackendPropagation:
    def test_workers_report_the_coordinator_backend(self):
        index, _ = build_sharded()
        index.set_parallel("process", workers=2)
        assert index.worker_kernel_backends() == [kernels.get_backend()] * 4
        index.detach_parallel()

    def test_numpy_backend_reaches_the_workers(self):
        if "numpy" not in kernels.available_backends():
            pytest.skip("numpy backend not available in this environment")
        previous = kernels.get_backend()
        kernels.set_backend("numpy")
        try:
            index, generator = build_sharded()
            index.set_parallel("process", workers=2)
            # The coordinator exports REPRO_KERNEL_BACKEND before spawning,
            # and the hydration payload pins it for fork-started workers.
            assert os.environ.get("REPRO_KERNEL_BACKEND") == "numpy"
            assert index.worker_kernel_backends() == ["numpy"] * 4
            for oid, _old, new in generator.updates(40):
                index.update(oid, new)
            index.detach_parallel()
            index.validate()
        finally:
            kernels.set_backend(previous)


class TestSpecAndCheckpointRoundTrip:
    def test_builder_spec_round_trips_the_parallel_section(self):
        builder = IndexBuilder().strategy("LBU").shards(4).parallel("process", 2)
        spec = builder.spec()
        assert spec["parallel"] == {"backend": "process", "workers": 2}
        index = builder.build()
        try:
            assert index.parallel_spec == {"backend": "process", "workers": 2}
            assert index_spec(index)["parallel"] == spec["parallel"]
            rebuilt = open_index(spec)
            try:
                assert index_spec(rebuilt) == index_spec(index)
            finally:
                rebuilt.detach_parallel()
        finally:
            index.detach_parallel()

    def test_builder_serial_clears_a_previous_parallel_choice(self):
        builder = IndexBuilder().shards(2).parallel("thread").parallel("serial")
        assert "parallel" not in builder.spec()
        index = builder.build()
        assert index.parallel_spec is None

    def test_parallel_spec_conflicts_with_kind_single(self):
        with pytest.raises(ValueError, match="single"):
            open_index(
                {"kind": "single", "parallel": {"backend": "thread", "workers": 2}}
            )

    def test_checkpoint_round_trips_with_live_workers(self, tmp_path):
        index, generator = build_sharded()
        index.set_parallel("process", workers=2)
        for oid, _old, new in generator.updates(120):
            index.update(oid, new)
        window = Rect(0.1, 0.1, 0.8, 0.8)
        expected = sorted(index.range_query(window))
        path = tmp_path / "checkpoint.json"
        # save_index checkpoints the worker-owned trees in place — the
        # backend stays attached and keeps serving afterwards.
        save_index(index, path)
        assert sorted(index.range_query(window)) == expected
        restored = load_index(path)
        try:
            assert restored.parallel_spec == {"backend": "process", "workers": 2}
            assert sorted(restored.range_query(window)) == expected
            assert {
                oid: restored.position_of(oid) for oid in range(SPEC.num_objects)
            } == {oid: index.position_of(oid) for oid in range(SPEC.num_objects)}
            restored.validate()
        finally:
            restored.detach_parallel()
            index.detach_parallel()
        index.validate()


class TestRemoteRebalance:
    def test_forced_rebalance_migrates_between_workers(self):
        # A deliberately skewed population: every object in shard 0's cell.
        config = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)
        index = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        import random

        rng = random.Random(17)
        index.load(
            [
                (oid, Point(rng.random() * 0.5, rng.random() * 0.5))
                for oid in range(160)
            ]
        )
        serial = ShardedIndex(config, partitioner=GridPartitioner(2, 2))
        rng = random.Random(17)
        serial.load(
            [
                (oid, Point(rng.random() * 0.5, rng.random() * 0.5))
                for oid in range(160)
            ]
        )
        index.set_parallel("process", workers=2)
        report = index.rebalance(force=True)
        serial_report = serial.rebalance(force=True)
        assert report.triggered
        assert report.moves == serial_report.moves > 0
        assert index.migrations == serial.migrations > 0
        populations = index.shard_populations()
        assert max(populations) - min(populations) <= max(
            serial.shard_populations()
        ) - min(serial.shard_populations()) + 1
        window = Rect(0.0, 0.0, 1.0, 1.0)
        assert sorted(index.range_query(window)) == sorted(
            serial.range_query(window)
        )
        index.detach_parallel()
        index.validate()
        serial.validate()


class TestStreamingUnderBackend:
    def test_stream_query_matches_range_query(self):
        index, generator = build_sharded()
        index.set_parallel("process", workers=2)
        for oid, _old, new in generator.updates(60):
            index.update(oid, new)
        for window in generator.queries():
            assert sorted(index.stream_query(window)) == sorted(
                index.range_query(window)
            )
        index.detach_parallel()


class TestWorkerFailureSurface:
    def test_worker_errors_propagate_as_runtime_errors(self):
        index, _ = build_sharded()
        index.set_parallel("process", workers=2)
        try:
            from repro.shard import parallel as shard_parallel

            with pytest.raises(RuntimeError, match="worker"):
                # An update for an object the worker has never seen violates
                # the routed-command contract and surfaces as a worker error.
                index._dispatch_one(0, shard_parallel.Update(999_999, Point(0, 0)))
        finally:
            index.detach_parallel()
