"""Cost-model-driven per-shard strategy selection: the adaptive controller.

Every layer of the feedback loop: the monitor's ``update_query_mix()`` view
(ratio + totals), the evidence/cooldown policy and its spec codec, the
``strategy_costs`` ranking (does the Section 4 model pick the right winner
for the regimes the calibration benchmark measures?), the controller's
trigger/decide/commit cycle, and the full loop on a live
:class:`ShardedIndex` — a hot-cell update-heavy shard must converge to TD
while a buffer-thrashing query-heavy shard converges to GBU, and the
controller's state must survive a checkpoint round trip.
"""

import random

import pytest

from repro.api import open_index
from repro.core.persistence import load_index, save_index
from repro.cost.model import TreeShape
from repro.geometry import Point, Rect
from repro.shard import (
    AdaptiveStrategyController,
    AdaptiveStrategyPolicy,
    ShardLoadMonitor,
    strategy_costs,
)
from repro.shard.adaptive import (
    DEFAULT_MOVE_DISTANCE,
    leaf_level_query_accesses,
)
from repro.shard.rebalance import UpdateQueryMix

from tests.conftest import SMALL_PAGE_SIZE, build_index


class TestUpdateQueryMix:
    def test_totals_and_fractions(self):
        mix = UpdateQueryMix(updates=30, queries=10)
        assert mix.total == 40
        assert mix.update_fraction == pytest.approx(0.75)
        assert mix.query_fraction == pytest.approx(0.25)

    def test_idle_mix_has_zero_fractions(self):
        mix = UpdateQueryMix(updates=0, queries=0)
        assert mix.total == 0
        assert mix.update_fraction == 0.0
        assert mix.query_fraction == 0.0

    def test_monitor_exposes_per_shard_mix(self):
        monitor = ShardLoadMonitor(3)
        monitor.record_update(0, 8)
        monitor.record_query(0, 2)
        monitor.record_query(2, 5)
        mixes = monitor.update_query_mix()
        assert [m.updates for m in mixes] == [8, 0, 0]
        assert [m.queries for m in mixes] == [2, 0, 5]
        assert mixes[0].update_fraction == pytest.approx(0.8)
        assert mixes[1].total == 0

    def test_mix_resets_with_the_monitor(self):
        monitor = ShardLoadMonitor(2)
        monitor.record_update(1, 4)
        monitor.reset()
        assert all(m.total == 0 for m in monitor.update_query_mix())


class TestAdaptiveStrategyPolicy:
    def test_defaults(self):
        policy = AdaptiveStrategyPolicy()
        assert policy.enabled is True
        assert policy.cooldown == 400
        assert policy.min_ops == 128

    def test_negative_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveStrategyPolicy(cooldown=-1)
        with pytest.raises(ValueError):
            AdaptiveStrategyPolicy(min_ops=-5)

    def test_evidence_required_grows_after_first_switch(self):
        policy = AdaptiveStrategyPolicy(cooldown=500, min_ops=100)
        assert policy.evidence_required(0) == 100
        assert policy.evidence_required(1) == 500
        assert policy.evidence_required(3) == 500

    def test_cooldown_never_below_min_ops(self):
        policy = AdaptiveStrategyPolicy(cooldown=50, min_ops=200)
        assert policy.evidence_required(1) == 200

    def test_spec_round_trip(self):
        policy = AdaptiveStrategyPolicy(enabled=False, cooldown=700, min_ops=9)
        assert AdaptiveStrategyPolicy.from_spec(policy.to_spec()) == policy

    def test_partial_spec_fills_defaults(self):
        policy = AdaptiveStrategyPolicy.from_spec({"cooldown": 250})
        assert policy == AdaptiveStrategyPolicy(cooldown=250)

    def test_unknown_spec_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown adaptive spec keys"):
            AdaptiveStrategyPolicy.from_spec({"cool_down": 250})


def loaded_shape(seed=3, num_objects=400):
    index = build_index("TD", num_objects=num_objects, seed=seed)
    return TreeShape.from_tree(index.tree)


class TestStrategyCosts:
    def test_every_candidate_gets_a_non_negative_cost(self):
        shape = loaded_shape()
        costs = strategy_costs(
            shape,
            UpdateQueryMix(updates=100, queries=100),
            miss_ratio=0.5,
            distance=0.02,
        )
        assert sorted(costs) == ["GBU", "LBU", "NAIVE", "TD"]
        assert all(value >= 0.0 for value in costs.values())

    def test_hot_buffer_update_shard_favours_top_down(self):
        # A cached working set makes tree descents nearly free while every
        # bottom-up update still pays its unbuffered hash probe.
        shape = loaded_shape()
        costs = strategy_costs(
            shape,
            UpdateQueryMix(updates=1000, queries=0),
            miss_ratio=0.05,
            distance=0.01,
        )
        assert min(costs, key=costs.get) == "TD"

    def test_thrashing_query_shard_favours_gbu(self):
        # All tree reads miss: the summary's leaf-only query path dominates.
        shape = loaded_shape()
        costs = strategy_costs(
            shape,
            UpdateQueryMix(updates=100, queries=900),
            miss_ratio=1.0,
            distance=0.02,
        )
        assert min(costs, key=costs.get) == "GBU"
        assert costs["GBU"] < costs["TD"]
        assert costs["GBU"] < costs["LBU"]

    def test_without_summary_queries_gbu_loses_its_query_edge(self):
        shape = loaded_shape()
        mix = UpdateQueryMix(updates=0, queries=500)
        with_summary = strategy_costs(
            shape, mix, miss_ratio=1.0, distance=0.02,
            use_summary_for_queries=True,
        )
        without = strategy_costs(
            shape, mix, miss_ratio=1.0, distance=0.02,
            use_summary_for_queries=False,
        )
        assert with_summary["GBU"] < without["GBU"]
        assert without["GBU"] == pytest.approx(without["TD"])

    def test_uncharged_hash_io_restores_the_paper_ranking(self):
        # With probes free (the paper's logical accounting) the bottom-up
        # strategies beat TD on a pure short-move update workload.
        shape = loaded_shape()
        costs = strategy_costs(
            shape,
            UpdateQueryMix(updates=1000, queries=0),
            miss_ratio=1.0,
            distance=0.005,
            charge_hash_io=False,
        )
        assert costs["GBU"] < costs["TD"]
        assert costs["LBU"] < costs["TD"]

    def test_leaf_level_accesses_are_a_lower_bound_on_the_full_query(self):
        from repro.cost.model import expected_query_node_accesses

        shape = loaded_shape()
        leaf_only = leaf_level_query_accesses(shape, 0.1, 0.1)
        assert 0.0 < leaf_only < expected_query_node_accesses(shape, 0.1, 0.1)


class TestAdaptiveStrategyController:
    def test_requires_positive_shard_count(self):
        with pytest.raises(ValueError):
            AdaptiveStrategyController(0)

    def test_observed_distance_defaults_until_moves_arrive(self):
        controller = AdaptiveStrategyController(2)
        assert controller.observed_distance(0) == DEFAULT_MOVE_DISTANCE
        controller.record_move(0, 0.02)
        controller.record_move(0, 0.04)
        assert controller.observed_distance(0) == pytest.approx(0.03)
        assert controller.observed_distance(1) == DEFAULT_MOVE_DISTANCE

    def test_committed_restarts_the_shard_window(self):
        controller = AdaptiveStrategyController(2)
        controller.monitor.record_update(0, 50)
        controller.monitor.record_update(1, 30)
        controller.record_move(0, 0.1)
        controller.committed(0)
        assert controller.switches == 1
        assert controller.monitor.updates == [0, 30]
        assert controller.observed_distance(0) == DEFAULT_MOVE_DISTANCE

    def test_state_spec_round_trips_the_switch_counter(self):
        controller = AdaptiveStrategyController(
            3, policy=AdaptiveStrategyPolicy(cooldown=600, min_ops=10)
        )
        controller.committed(1)
        controller.committed(2)
        restored = AdaptiveStrategyController.from_spec(
            controller.state_to_spec(), 3
        )
        assert restored.switches == 2
        assert restored.policy == controller.policy
        # The declarative spec stays policy-only.
        assert "switches" not in controller.to_spec()

    def test_disabled_policy_never_triggers(self):
        controller = AdaptiveStrategyController(
            1, policy=AdaptiveStrategyPolicy(enabled=False, min_ops=1)
        )
        controller.monitor.record_update(0, 100)
        assert controller.should_adapt(None) is False
        assert controller.decide(_sharded_stub()) == []


def _sharded_stub():
    index = open_index(
        {
            "kind": "sharded",
            "shards": 1,
            "config": {"page_size": SMALL_PAGE_SIZE},
        }
    )
    return index


def attach_controller(index, min_ops=64, cooldown=200):
    controller = AdaptiveStrategyController(
        index.num_shards,
        policy=AdaptiveStrategyPolicy(cooldown=cooldown, min_ops=min_ops),
    )
    index.attach_adaptive(controller)
    return controller


class TestAdaptiveLoop:
    """The full loop on a live ShardedIndex (2 shards: left half / right half)."""

    def build(self, **config_extra):
        config = {"buffer_percent": 8.0, "strategy": "NAIVE"}
        config.update(config_extra)
        index = open_index({"kind": "sharded", "shards": 2, "config": config})
        rng = random.Random(6)
        oid = 0
        positions = {}
        for _ in range(1200):  # hot cell inside shard 0
            p = Point(rng.uniform(0.05, 0.20), rng.uniform(0.40, 0.55))
            index.insert(oid, p)
            positions[oid] = p
            oid += 1
        for _ in range(1200):  # uniform spread over shard 1
            p = Point(rng.uniform(0.55, 0.95), rng.uniform(0.05, 0.95))
            index.insert(oid, p)
            positions[oid] = p
            oid += 1
        index.reset_statistics()
        return index, positions, rng

    def drive(self, index, positions, rng, steps=1200):
        hot = [oid for oid, p in positions.items() if p.x < 0.5]
        cold = [oid for oid in positions if oid not in set(hot)]
        for step in range(steps):
            oid = rng.choice(hot)
            p = positions[oid]
            moved = Point(
                min(0.20, max(0.05, p.x + rng.uniform(-0.01, 0.01))),
                min(0.55, max(0.40, p.y + rng.uniform(-0.01, 0.01))),
            )
            index.update(oid, moved)
            positions[oid] = moved
            if rng.random() < 0.9:
                x, y = rng.uniform(0.55, 0.85), rng.uniform(0.05, 0.85)
                index.range_query(Rect(x, y, x + 0.1, y + 0.1))
            else:
                oid = rng.choice(cold)
                p = positions[oid]
                moved = Point(
                    min(0.95, max(0.55, p.x + rng.uniform(-0.02, 0.02))),
                    min(0.95, max(0.05, p.y + rng.uniform(-0.02, 0.02))),
                )
                index.update(oid, moved)
                positions[oid] = moved
            if step % 100 == 99:
                index.auto_adapt()

    def test_mixed_workload_converges_to_per_shard_strategies(self):
        index, positions, rng = self.build()
        controller = attach_controller(index)
        self.drive(index, positions, rng)
        assert index.active_strategies() == ["TD", "GBU"]
        assert controller.switches >= 2
        index.validate()
        assert f"strategies={index.active_strategies()}" in index.describe()

    def test_recording_feeds_both_monitors(self):
        index, positions, rng = self.build()
        controller = attach_controller(index, min_ops=10**9)
        self.drive(index, positions, rng, steps=50)
        mixes = controller.monitor.update_query_mix()
        assert sum(m.updates for m in mixes) > 0
        assert sum(m.queries for m in mixes) > 0
        assert controller.observed_distance(0) < DEFAULT_MOVE_DISTANCE

    def test_auto_adapt_respects_the_evidence_gate(self):
        index, positions, rng = self.build()
        attach_controller(index, min_ops=10**9)
        self.drive(index, positions, rng, steps=300)
        assert index.auto_adapt() == 0
        assert index.active_strategies() == ["NAIVE", "NAIVE"]

    def test_checkpoint_round_trips_controller_state(self, tmp_path):
        index, positions, rng = self.build()
        controller = attach_controller(index)
        self.drive(index, positions, rng)
        assert controller.switches >= 2
        save_index(index, tmp_path / "checkpoint.json")
        restored = load_index(tmp_path / "checkpoint.json")
        assert restored.adaptive is not None
        assert restored.adaptive.switches == controller.switches
        assert restored.adaptive.policy == controller.policy
        assert restored.active_strategies() == index.active_strategies()
        restored.validate()

    def test_adaptive_runs_inside_engine_maintenance(self):
        index, positions, rng = self.build()
        controller = attach_controller(index)
        hot = sorted(oid for oid, p in positions.items() if p.x < 0.5)
        stream = []
        for _ in range(900):
            oid = rng.choice(hot)
            p = positions[oid]
            moved = Point(
                min(0.20, max(0.05, p.x + rng.uniform(-0.01, 0.01))),
                min(0.55, max(0.40, p.y + rng.uniform(-0.01, 0.01))),
            )
            stream.append(("update", oid, moved))
            positions[oid] = moved
        session = index.engine(num_clients=4)
        for i, (kind, oid, position) in enumerate(stream):
            session.submit(i % 4, (kind, oid, position))
        session.run()
        assert index.shards[0].active_strategy == "TD"
        assert controller.switches >= 1
        index.validate()
