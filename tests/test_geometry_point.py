"""Unit tests for :class:`repro.geometry.point.Point`."""

import math

import pytest

from repro.geometry import Point


class TestConstruction:
    def test_coordinates_are_stored_as_floats(self):
        point = Point(1, 2)
        assert isinstance(point.x, float)
        assert isinstance(point.y, float)
        assert point.x == 1.0
        assert point.y == 2.0

    def test_point_is_immutable(self):
        point = Point(0.1, 0.2)
        with pytest.raises(AttributeError):
            point.x = 0.5

    def test_iteration_yields_x_then_y(self):
        assert list(Point(0.3, 0.7)) == [0.3, 0.7]

    def test_as_tuple(self):
        assert Point(0.25, 0.75).as_tuple() == (0.25, 0.75)

    def test_repr_contains_coordinates(self):
        text = repr(Point(0.125, 0.5))
        assert "0.125" in text and "0.5" in text


class TestEqualityAndHashing:
    def test_equal_points_are_equal_and_hash_alike(self):
        assert Point(0.1, 0.2) == Point(0.1, 0.2)
        assert hash(Point(0.1, 0.2)) == hash(Point(0.1, 0.2))

    def test_different_points_are_not_equal(self):
        assert Point(0.1, 0.2) != Point(0.2, 0.1)

    def test_comparison_with_other_types_is_not_implemented(self):
        assert Point(0.0, 0.0) != (0.0, 0.0)

    def test_points_usable_as_dict_keys(self):
        table = {Point(0.5, 0.5): "center"}
        assert table[Point(0.5, 0.5)] == "center"


class TestDistances:
    def test_euclidean_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(0.1, 0.9), Point(0.7, 0.3)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        point = Point(0.42, 0.42)
        assert point.distance_to(point) == 0.0

    def test_manhattan_distance(self):
        assert Point(0.0, 0.0).manhattan_distance_to(Point(0.3, 0.4)) == pytest.approx(0.7)

    def test_max_distance_within_unit_square(self):
        assert Point(0.0, 0.0).distance_to(Point(1.0, 1.0)) == pytest.approx(math.sqrt(2.0))


class TestTransformations:
    def test_translated_moves_by_offsets(self):
        assert Point(0.1, 0.2).translated(0.3, -0.1) == Point(0.4, 0.1)

    def test_translated_returns_new_object(self):
        original = Point(0.1, 0.2)
        moved = original.translated(0.1, 0.1)
        assert original == Point(0.1, 0.2)
        assert moved is not original

    def test_clamped_restricts_to_unit_square_by_default(self):
        assert Point(-0.5, 1.5).clamped() == Point(0.0, 1.0)

    def test_clamped_with_custom_bounds(self):
        assert Point(0.05, 0.95).clamped(lo=0.1, hi=0.9) == Point(0.1, 0.9)

    def test_clamped_keeps_interior_points_unchanged(self):
        assert Point(0.5, 0.5).clamped() == Point(0.5, 0.5)
