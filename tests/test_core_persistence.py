"""Tests for index checkpointing (save/load), single and sharded."""

import random

import pytest

from repro.core import IndexConfig, MovingObjectIndex, load_index, save_index
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE, make_points


def build_and_churn(strategy="GBU", num_objects=300, updates=400, seed=5):
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE))
    index.load(make_points(num_objects, seed=seed))
    rng = random.Random(seed)
    for _ in range(updates):
        oid = rng.randrange(num_objects)
        p = index.position_of(oid)
        index.update(oid, Point(
            min(1, max(0, p.x + rng.uniform(-0.05, 0.05))),
            min(1, max(0, p.y + rng.uniform(-0.05, 0.05))),
        ))
    return index


class TestRoundTrip:
    def test_restored_index_passes_validation(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        restored.validate()

    def test_restored_index_answers_queries_identically(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        rng = random.Random(9)
        for _ in range(30):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.3)
            window = Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
            assert sorted(restored.range_query(window)) == sorted(original.range_query(window))

    def test_restored_index_preserves_configuration(self, tmp_path):
        original = build_and_churn(strategy="LBU")
        checkpoint = tmp_path / "lbu.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        assert restored.config.strategy == "LBU"
        assert restored.config.page_size == SMALL_PAGE_SIZE
        assert restored.config.params == original.config.params

    def test_restored_index_accepts_further_updates(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        rng = random.Random(11)
        for _ in range(300):
            oid = rng.randrange(len(restored))
            restored.update(oid, Point(rng.random(), rng.random()))
        restored.insert(999_999, Point(0.5, 0.5))
        assert restored.delete(999_999)
        restored.validate()

    def test_positions_survive_the_round_trip(self, tmp_path):
        original = build_and_churn(num_objects=150, updates=200)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        for oid in range(150):
            restored_position = restored.position_of(oid)
            original_position = original.position_of(oid)
            assert restored_position is not None
            # Coordinates travel through the 32-bit on-page format, so the
            # restored position matches to single precision.
            assert restored_position.x == pytest.approx(original_position.x, abs=1e-6)
            assert restored_position.y == pytest.approx(original_position.y, abs=1e-6)

    def test_every_strategy_round_trips(self, tmp_path):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            original = build_and_churn(strategy=strategy, num_objects=200, updates=200)
            checkpoint = tmp_path / f"{strategy}.json"
            save_index(original, checkpoint)
            restored = load_index(checkpoint)
            restored.validate()
            assert sorted(restored.range_query(Rect.unit())) == sorted(
                original.range_query(Rect.unit())
            )

    def test_unsupported_format_version_rejected(self, tmp_path):
        original = build_and_churn(num_objects=100, updates=50)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        import json

        document = json.loads(checkpoint.read_text())
        document["format_version"] = 999
        checkpoint.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_index(checkpoint)

    def test_io_counters_start_fresh_after_load(self, tmp_path):
        original = build_and_churn(num_objects=100, updates=100)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        assert restored.stats.total_physical_io == 0


class TestShardedRoundTrip:
    def build_sharded(self, num_shards=4, strategy="GBU", seed=5):
        index = ShardedIndex(
            IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE),
            partitioner=GridPartitioner.for_shards(num_shards),
        )
        index.load(make_points(400, seed=seed))
        return index

    def test_checkpoint_after_concurrent_run_restores_identically(self, tmp_path):
        """Satellite acceptance: checkpoint -> restore after a concurrent
        engine run rebuilds derived structures and answers queries
        identically (including objects that migrated across shards)."""
        index = self.build_sharded()
        spec = WorkloadSpec(num_objects=400, num_updates=0, num_queries=0, seed=5)
        generator = WorkloadGenerator(spec)
        session = index.engine(num_clients=8)
        session.run_mixed(generator, num_operations=300, update_fraction=0.8)
        assert index.migrations > 0  # the run crossed shard boundaries

        checkpoint = tmp_path / "sharded.json"
        save_index(index, checkpoint)
        restored = load_index(checkpoint)

        assert isinstance(restored, ShardedIndex)
        restored.validate()  # derived structures: hash, summary, directory
        assert len(restored) == len(index)
        assert restored.num_shards == index.num_shards
        assert restored.shard_populations() == index.shard_populations()
        rng = random.Random(3)
        for _ in range(30):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.3)
            window = Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
            assert sorted(restored.range_query(window)) == sorted(
                index.range_query(window)
            )
        probe = Point(0.4, 0.6)
        # positions travel through the 32-bit on-page format, so kNN answers
        # match by object and to single-precision distance
        restored_knn = restored.knn(probe, 5)
        original_knn = index.knn(probe, 5)
        assert [oid for _d, oid in restored_knn] == [oid for _d, oid in original_knn]
        for (restored_distance, _), (original_distance, _) in zip(
            restored_knn, original_knn
        ):
            assert restored_distance == pytest.approx(original_distance, abs=1e-6)

    def test_partitioner_spec_round_trips(self, tmp_path):
        index = self.build_sharded(num_shards=6)
        checkpoint = tmp_path / "sharded.json"
        save_index(index, checkpoint)
        restored = load_index(checkpoint)
        assert restored.partitioner.to_spec() == index.partitioner.to_spec()
        assert restored.config.strategy == index.config.strategy

    def test_restored_sharded_index_accepts_further_updates(self, tmp_path):
        index = self.build_sharded()
        checkpoint = tmp_path / "sharded.json"
        save_index(index, checkpoint)
        restored = load_index(checkpoint)
        rng = random.Random(11)
        for _ in range(200):
            oid = rng.randrange(len(restored))
            restored.update(oid, Point(rng.random(), rng.random()))
        assert restored.migrations > 0
        restored.insert(999_999, Point(0.5, 0.5))
        assert restored.delete(999_999)
        restored.validate()

    def test_sharded_io_counters_start_fresh_after_load(self, tmp_path):
        index = self.build_sharded()
        checkpoint = tmp_path / "sharded.json"
        save_index(index, checkpoint)
        restored = load_index(checkpoint)
        assert restored.io_snapshot().total() == 0
