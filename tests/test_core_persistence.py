"""Tests for index checkpointing (save/load)."""

import random

import pytest

from repro.core import IndexConfig, MovingObjectIndex, load_index, save_index
from repro.geometry import Point, Rect

from tests.conftest import SMALL_PAGE_SIZE, make_points


def build_and_churn(strategy="GBU", num_objects=300, updates=400, seed=5):
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE))
    index.load(make_points(num_objects, seed=seed))
    rng = random.Random(seed)
    for _ in range(updates):
        oid = rng.randrange(num_objects)
        p = index.position_of(oid)
        index.update(oid, Point(
            min(1, max(0, p.x + rng.uniform(-0.05, 0.05))),
            min(1, max(0, p.y + rng.uniform(-0.05, 0.05))),
        ))
    return index


class TestRoundTrip:
    def test_restored_index_passes_validation(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        restored.validate()

    def test_restored_index_answers_queries_identically(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        rng = random.Random(9)
        for _ in range(30):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.3)
            window = Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
            assert sorted(restored.range_query(window)) == sorted(original.range_query(window))

    def test_restored_index_preserves_configuration(self, tmp_path):
        original = build_and_churn(strategy="LBU")
        checkpoint = tmp_path / "lbu.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        assert restored.config.strategy == "LBU"
        assert restored.config.page_size == SMALL_PAGE_SIZE
        assert restored.config.params == original.config.params

    def test_restored_index_accepts_further_updates(self, tmp_path):
        original = build_and_churn()
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        rng = random.Random(11)
        for _ in range(300):
            oid = rng.randrange(len(restored))
            restored.update(oid, Point(rng.random(), rng.random()))
        restored.insert(999_999, Point(0.5, 0.5))
        assert restored.delete(999_999)
        restored.validate()

    def test_positions_survive_the_round_trip(self, tmp_path):
        original = build_and_churn(num_objects=150, updates=200)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        for oid in range(150):
            restored_position = restored.position_of(oid)
            original_position = original.position_of(oid)
            assert restored_position is not None
            # Coordinates travel through the 32-bit on-page format, so the
            # restored position matches to single precision.
            assert restored_position.x == pytest.approx(original_position.x, abs=1e-6)
            assert restored_position.y == pytest.approx(original_position.y, abs=1e-6)

    def test_every_strategy_round_trips(self, tmp_path):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            original = build_and_churn(strategy=strategy, num_objects=200, updates=200)
            checkpoint = tmp_path / f"{strategy}.json"
            save_index(original, checkpoint)
            restored = load_index(checkpoint)
            restored.validate()
            assert sorted(restored.range_query(Rect.unit())) == sorted(
                original.range_query(Rect.unit())
            )

    def test_unsupported_format_version_rejected(self, tmp_path):
        original = build_and_churn(num_objects=100, updates=50)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        import json

        document = json.loads(checkpoint.read_text())
        document["format_version"] = 999
        checkpoint.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_index(checkpoint)

    def test_io_counters_start_fresh_after_load(self, tmp_path):
        original = build_and_churn(num_objects=100, updates=100)
        checkpoint = tmp_path / "index.json"
        save_index(original, checkpoint)
        restored = load_index(checkpoint)
        assert restored.stats.total_physical_io == 0
