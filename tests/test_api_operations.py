"""Unit tests for the typed operation model, error taxonomy and result types."""

import pytest

from repro.api import (
    KNN,
    BatchReport,
    Delete,
    DuplicateObjectError,
    Insert,
    InvalidNeighborCountError,
    InvalidOperationError,
    InvalidWindowError,
    Migrate,
    Operation,
    OperationError,
    OperationResult,
    QueryCursor,
    RangeQuery,
    UnknownObjectError,
    Update,
)
from repro.geometry import Point, Rect
from repro.update.batch import BatchResult


class TestOperationModel:
    def test_from_tuple_parses_every_facade_shape(self):
        point = Point(0.3, 0.4)
        window = Rect(0.1, 0.1, 0.5, 0.5)
        assert Operation.from_tuple(("update", 1, point)) == Update(1, point)
        assert Operation.from_tuple(("insert", 2, point)) == Insert(2, point)
        assert Operation.from_tuple(("delete", 3)) == Delete(3)
        assert Operation.from_tuple(("range_query", window)) == RangeQuery(window)
        assert Operation.from_tuple(("query", window)) == RangeQuery(window)
        assert Operation.from_tuple(("knn", point, 5)) == KNN(point, 5)

    def test_from_tuple_parses_generator_update_item(self):
        old, new = Point(0.1, 0.1), Point(0.2, 0.2)
        assert Operation.from_tuple(("update", (7, old, new))) == Update(7, new)

    def test_from_tuple_rejects_unknown_kind(self):
        with pytest.raises(InvalidOperationError):
            Operation.from_tuple(("compact",))
        with pytest.raises(InvalidOperationError):
            Operation.from_tuple(())

    def test_from_tuple_preserves_taxonomy_validation_errors(self):
        # Validation errors of well-formed kinds must surface as themselves
        # (and therefore as their legacy builtin bases), not be rewrapped.
        with pytest.raises(InvalidWindowError):
            Operation.from_tuple(("range_query", "not a window"))
        with pytest.raises(TypeError):  # the legacy engine raised TypeError
            Operation.from_tuple(("query", 123))
        with pytest.raises(InvalidNeighborCountError):
            Operation.from_tuple(("knn", Point(0.5, 0.5), -1))

    def test_from_tuple_rejects_malformed_arity(self):
        with pytest.raises(InvalidOperationError):
            Operation.from_tuple(("insert", 1))
        with pytest.raises(InvalidOperationError):
            Operation.from_tuple(("update", 1, Point(0, 0), Point(1, 1)))
        with pytest.raises(InvalidOperationError):
            Operation.from_tuple(("delete",))

    def test_from_any_passes_typed_operations_through(self):
        op = Delete(9)
        assert Operation.from_any(op) is op
        with pytest.raises(InvalidOperationError):
            Operation.from_any(["update", 1, Point(0, 0)])  # list, not tuple

    def test_normalise_is_the_engine_normal_form(self):
        point = Point(0.3, 0.4)
        window = Rect(0.1, 0.1, 0.5, 0.5)
        assert Update(1, point).normalise() == ("update", (1, point))
        assert Insert(2, point).normalise() == ("insert", (2, point))
        assert Delete(3).normalise() == ("delete", (3,))
        assert RangeQuery(window).normalise() == ("query", (window,))
        assert KNN(point, 4).normalise() == ("knn", (point, 4))

    def test_to_tuple_round_trips_through_from_tuple(self):
        for op in (
            Update(1, Point(0.3, 0.4)),
            Insert(2, Point(0.1, 0.2)),
            Delete(3),
            RangeQuery(Rect(0.0, 0.0, 1.0, 1.0)),
            KNN(Point(0.5, 0.5), 3),
        ):
            assert Operation.from_tuple(op.to_tuple()) == op

    def test_operations_are_frozen_and_hashable(self):
        op = Update(1, Point(0.3, 0.4))
        with pytest.raises(Exception):
            op.oid = 2
        assert len({op, Update(1, Point(0.3, 0.4)), Delete(1)}) == 2

    def test_migrate_normalises_as_an_update(self):
        migrate = Migrate(5, Point(0.9, 0.9))
        assert migrate.normalise() == ("update", (5, Point(0.9, 0.9)))
        assert migrate.kind == "migration"
        # A migration is shard-internal; its tuple surface form is an update.
        assert Operation.from_tuple(migrate.to_tuple()) == Update(5, Point(0.9, 0.9))

    def test_range_query_validates_the_window(self):
        with pytest.raises(InvalidWindowError):
            RangeQuery((0.1, 0.1, 0.5, 0.5))
        with pytest.raises(TypeError):  # taxonomy inherits the legacy builtin
            RangeQuery("not a window")

    def test_knn_validates_the_neighbour_count(self):
        with pytest.raises(InvalidNeighborCountError):
            KNN(Point(0.5, 0.5), -1)
        with pytest.raises(InvalidNeighborCountError):
            KNN(Point(0.5, 0.5), True)  # bools are not counts
        with pytest.raises(InvalidNeighborCountError):
            KNN(Point(0.5, 0.5), 2.5)
        assert KNN(Point(0.5, 0.5), 0).k == 0  # permissive like the facade


class TestErrorTaxonomy:
    def test_every_error_is_an_operation_error(self):
        for error_type in (
            UnknownObjectError,
            DuplicateObjectError,
            InvalidWindowError,
            InvalidNeighborCountError,
            InvalidOperationError,
        ):
            assert issubclass(error_type, OperationError)

    def test_errors_inherit_their_legacy_builtins(self):
        assert issubclass(UnknownObjectError, KeyError)
        assert issubclass(DuplicateObjectError, ValueError)
        assert issubclass(InvalidWindowError, TypeError)
        assert issubclass(InvalidNeighborCountError, ValueError)
        assert issubclass(InvalidOperationError, ValueError)

    def test_unknown_object_error_carries_the_oid(self):
        error = UnknownObjectError(42)
        assert error.oid == 42
        assert "42" in str(error)


class TestQueryCursor:
    def test_fetch_all_consumed_exhausted(self):
        cursor = QueryCursor(iter([5, 3, 1, 2]))
        assert cursor.fetch(2) == [5, 3]
        assert cursor.consumed == 2
        assert not cursor.exhausted
        assert cursor.all() == [1, 2]
        assert cursor.consumed == 4
        assert cursor.exhausted

    def test_exhausted_cursor_keeps_returning_empty(self):
        cursor = QueryCursor(iter([1]))
        assert list(cursor) == [1]
        assert cursor.fetch(3) == []
        assert cursor.all() == []
        with pytest.raises(StopIteration):
            next(cursor)

    def test_fetch_beyond_the_source_stops_short(self):
        cursor = QueryCursor(iter([1, 2]))
        assert cursor.fetch(10) == [1, 2]
        assert cursor.exhausted

    def test_fetch_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            QueryCursor(iter([])).fetch(-1)

    def test_cursor_is_lazy(self):
        consumed = []

        def source():
            for value in (1, 2, 3):
                consumed.append(value)
                yield value

        cursor = QueryCursor(source())
        assert consumed == []
        next(cursor)
        assert consumed == [1]


class TestResultEnvelopes:
    def test_operation_result_cursor_accessor(self):
        query = RangeQuery(Rect(0, 0, 1, 1))
        result = OperationResult(query, value=QueryCursor(iter([1])))
        assert result.ok
        assert result.cursor().all() == [1]
        bad = OperationResult(Delete(1), value=True)
        with pytest.raises(TypeError):
            bad.cursor()

    def test_operation_result_describe(self):
        failed = OperationResult(Delete(1), error=UnknownObjectError(1))
        assert not failed.ok
        assert "error" in failed.describe()

    def test_batch_report_lifts_the_internal_result(self):
        internal = BatchResult(
            updates=10, inserts=2, deletes=1, coalesced=3, groups=4,
            largest_group=5, residuals=2, migrations=1,
        )
        internal.queries.append([1, 2])
        internal.neighbors.append([(0.1, 7)])
        report = BatchReport.from_batch_result(internal)
        assert report.updates == 10
        assert report.queries == [[1, 2]]
        assert report.neighbors == [[(0.1, 7)]]
        assert report.operations == 10 + 2 + 1 + 1 + 1
        assert "knn=1" in report.describe()


class TestPicklability:
    """Operations and result envelopes cross process boundaries intact.

    The parallel shard-execution backend (``repro.shard.parallel``) ships
    commands and results between the coordinator and its worker processes by
    pickling them, so every value object of the typed API must round-trip.
    """

    OPERATIONS = [
        Insert(7, Point(0.1, 0.2)),
        Update(7, Point(0.3, 0.4)),
        Migrate(7, Point(0.5, 0.6)),
        Delete(7),
        RangeQuery(Rect(0.1, 0.1, 0.5, 0.5)),
        KNN(Point(0.25, 0.75), 5),
    ]

    def test_every_operation_round_trips(self):
        import pickle

        for operation in self.OPERATIONS:
            clone = pickle.loads(pickle.dumps(operation))
            assert clone == operation
            assert type(clone) is type(operation)

    def test_operation_result_round_trips(self):
        import pickle

        from repro.update import UpdateOutcome

        result = OperationResult(
            Update(3, Point(0.2, 0.9)), outcome=UpdateOutcome.IN_PLACE
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.ok

    def test_batch_report_round_trips(self):
        import pickle

        report = BatchReport.from_batch_result(
            BatchResult(
                updates=5,
                queries=[[1, 2], []],
                neighbors=[[(0.1, 4)]],
                coalesced=1,
                groups=2,
                largest_group=3,
                residuals=1,
            )
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.io.as_dict() == report.io.as_dict()
