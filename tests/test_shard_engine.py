"""Concurrent execution over a sharded index: per-shard DGL lock scopes."""

import pytest

from repro.core import IndexConfig
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


def build_sharded(num_shards=2, strategy="GBU", num_objects=400, seed=3):
    spec = WorkloadSpec(
        num_objects=num_objects, num_updates=0, num_queries=0, seed=seed
    )
    generator = WorkloadGenerator(spec)
    index = ShardedIndex(
        IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE),
        partitioner=GridPartitioner.for_shards(num_shards),
    )
    index.load(generator.initial_objects())
    return index, generator


def shard_namespaces(pairs):
    """The shard ids named by a namespaced lock-request list."""
    return {granule[0] for granule, _mode in pairs}


class TestShardedLockScopes:
    def test_in_shard_update_locks_only_its_shard(self):
        index, _ = build_sharded(num_shards=2)
        oid = next(
            oid for oid in range(400) if index.shard_for(oid) == 0
        )
        position = index.position_of(oid)
        pairs = index.lock_requests_for("update", (oid, position))
        assert shard_namespaces(pairs) == {0}

    def test_migration_locks_both_shards(self):
        index, _ = build_sharded(num_shards=2)
        oid = next(oid for oid in range(400) if index.shard_for(oid) == 0)
        across = Point(0.95, index.position_of(oid).y)
        assert index.partitioner.shard_of(across) == 1
        pairs = index.lock_requests_for("update", (oid, across))
        assert shard_namespaces(pairs) == {0, 1}

    def test_query_locks_exactly_the_intersecting_shards(self):
        index, _ = build_sharded(num_shards=2)
        left_only = Rect(0.05, 0.05, 0.2, 0.2)
        straddling = Rect(0.4, 0.4, 0.6, 0.6)
        assert shard_namespaces(index.lock_requests_for("query", (left_only,))) == {0}
        assert shard_namespaces(index.lock_requests_for("query", (straddling,))) == {0, 1}

    def test_delete_of_absent_object_locks_nothing(self):
        index, _ = build_sharded()
        assert index.lock_requests_for("delete", (999_999,)) == []

    def test_unknown_kind_rejected(self):
        index, _ = build_sharded()
        with pytest.raises(ValueError):
            index.lock_requests_for("compact", ())


class TestShardedSessions:
    def test_operations_on_different_shards_never_conflict(self):
        """Two clients hammering two different shards must schedule with
        zero lock waits: every granule, including each shard's tree and
        external granules, is namespaced per shard."""
        index, _ = build_sharded(num_shards=2)
        left = [oid for oid in range(400) if index.shard_for(oid) == 0][:20]
        right = [oid for oid in range(400) if index.shard_for(oid) == 1][:20]
        session = index.engine(num_clients=2)
        for oid in left:
            session.submit(0, ("update", oid, index.position_of(oid)))
        for oid in right:
            session.submit(1, ("update", oid, index.position_of(oid)))
        result = session.run()
        assert result.operations == 40
        assert result.lock_waits == 0
        index.validate()

    def test_same_leaf_operations_still_conflict(self):
        index, _ = build_sharded(num_shards=2)
        oid = next(o for o in range(400) if index.shard_for(o) == 0)
        position = index.position_of(oid)
        session = index.engine(num_clients=2)
        # both clients write the same object's leaf granule in shard 0
        session.submit(0, ("update", oid, position))
        session.submit(1, ("update", oid, position))
        result = session.run()
        assert result.lock_waits > 0

    def test_mixed_run_is_deterministic(self):
        def once():
            index, generator = build_sharded(num_shards=4)
            session = index.engine(num_clients=8)
            result = session.run_mixed(generator, 200, update_fraction=0.7)
            return result.makespan, result.lock_waits, result.kinds

        assert once() == once()

    def test_insert_delete_and_query_operations(self):
        index, _ = build_sharded(num_shards=4)
        session = index.engine(num_clients=3)
        session.submit(0, ("insert", 5_000, Point(0.1, 0.1)))
        session.submit(1, ("delete", 7))
        session.submit(2, ("range_query", Rect(0.0, 0.0, 1.0, 1.0)))
        result = session.run()
        assert result.operations == 3
        assert 5_000 in index
        assert 7 not in index
        index.validate()

    def test_client_io_merges_across_shards(self):
        index, generator = build_sharded(num_shards=4, strategy="LBU")
        session = index.engine(num_clients=6)
        before = index.io_snapshot()
        session.run_mixed(generator, 150, update_fraction=0.8)
        delta = index.io_snapshot().delta_since(before)
        table = session.client_io()
        assert table
        pool_total = sum(counters.total for counters in table.values())
        assert pool_total == delta.physical_reads + delta.physical_writes


class TestShardedBatchScheduling:
    def test_session_update_many_migrates_and_applies_everything(self):
        index, generator = build_sharded(num_shards=4)
        session = index.engine(num_clients=8)
        updates = [(oid, new) for oid, _old, new in generator.updates(500)]
        result = session.update_many(updates)
        assert result.batch.updates == 500
        assert result.batch.migrations > 0
        assert result.schedule.kinds.get("migration", 0) == result.batch.migrations
        assert result.schedule.kinds.get("group", 0) > 0
        final = dict(updates)
        for oid, expected in final.items():
            assert index.position_of(oid) == expected
        index.validate()

    def test_batch_scheduling_is_deterministic(self):
        def once():
            index, generator = build_sharded(num_shards=4)
            updates = [
                (oid, new) for oid, _old, new in generator.updates(400)
            ]
            result = index.engine(num_clients=8).update_many(updates)
            return result.makespan, result.schedule.lock_waits

        assert once() == once()


class TestMultiShardMakespan:
    def test_four_shards_beat_one_shard_on_uniform_updates(self):
        """The tentpole claim, scaled down: the same pure-update stream at
        the same client count finishes strictly earlier on 4 shards than on
        1 (shorter per-shard trees; conflict-free cross-shard scheduling).
        TD is the strategy whose update cost scales with tree height."""
        makespans = {}
        for num_shards in (1, 4):
            spec = WorkloadSpec(
                num_objects=1_000, num_updates=0, num_queries=0, seed=1
            )
            generator = WorkloadGenerator(spec)
            index = ShardedIndex(
                IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE, buffer_percent=0.0),
                partitioner=GridPartitioner.for_shards(num_shards),
            )
            index.load(generator.initial_objects())
            session = index.engine(num_clients=16)
            result = session.run_mixed(generator, 300, update_fraction=1.0)
            makespans[num_shards] = result.makespan
            index.validate()
        assert makespans[4] < makespans[1]
