"""Tests for the naive bottom-up strategy (Section 3.1 strawman)."""

import random

from repro.geometry import Point
from repro.update import UpdateOutcome

from tests.conftest import build_index


class TestNaiveBottomUp:
    def test_small_move_stays_in_place(self):
        index = build_index("NAIVE", num_objects=300)
        oid = 7
        position = index.position_of(oid)
        nudge = Point(
            min(1.0, position.x + 1e-6), min(1.0, position.y + 1e-6)
        )
        outcome = index.update(oid, nudge)
        assert outcome == UpdateOutcome.IN_PLACE

    def test_long_move_falls_back_to_top_down(self):
        index = build_index("NAIVE", num_objects=300)
        oid = 7
        position = index.position_of(oid)
        far = Point(1.0 - position.x, 1.0 - position.y)  # opposite corner region
        outcome = index.update(oid, far)
        assert outcome == UpdateOutcome.TOP_DOWN

    def test_in_place_update_costs_three_ios(self):
        """Hash probe + leaf read + leaf write (the paper's Case 1)."""
        index = build_index("NAIVE", num_objects=300, buffer_percent=0.0)
        oid = 11
        # Move the object to the centre of its own leaf MBR: guaranteed to be
        # an in-place update regardless of where the object sits in the leaf.
        leaf_page = index.hash_index.peek(oid)
        target = index.tree.peek_node(leaf_page).mbr().center()
        before = index.stats.total_physical_io
        outcome = index.update(oid, target)
        assert outcome == UpdateOutcome.IN_PLACE
        assert index.stats.total_physical_io - before == 3

    def test_mixed_workload_keeps_index_correct(self):
        index = build_index("NAIVE", num_objects=250)
        rng = random.Random(4)
        positions = {oid: index.position_of(oid) for oid in range(250)}
        for _ in range(500):
            oid = rng.randrange(250)
            step = rng.choice([0.001, 0.2])
            new = Point(
                min(1.0, max(0.0, positions[oid].x + rng.uniform(-step, step))),
                min(1.0, max(0.0, positions[oid].y + rng.uniform(-step, step))),
            )
            index.update(oid, new)
            positions[oid] = new
        index.validate()
        from repro.geometry import Rect

        window = Rect(0.3, 0.3, 0.6, 0.6)
        expected = sorted(o for o, p in positions.items() if window.contains_point(p))
        assert sorted(index.range_query(window)) == expected

    def test_fallback_fraction_grows_with_move_distance(self):
        """The defining observation of Section 3.1: fast movement defeats the
        naive strategy."""
        slow = build_index("NAIVE", num_objects=400, seed=3)
        fast = build_index("NAIVE", num_objects=400, seed=3)
        rng_slow, rng_fast = random.Random(1), random.Random(1)
        for _ in range(400):
            oid = rng_slow.randrange(400)
            p = slow.position_of(oid)
            slow.update(oid, Point(
                min(1, max(0, p.x + rng_slow.uniform(-0.002, 0.002))),
                min(1, max(0, p.y + rng_slow.uniform(-0.002, 0.002))),
            ))
            oid = rng_fast.randrange(400)
            p = fast.position_of(oid)
            fast.update(oid, Point(
                min(1, max(0, p.x + rng_fast.uniform(-0.2, 0.2))),
                min(1, max(0, p.y + rng_fast.uniform(-0.2, 0.2))),
            ))
        assert fast.strategy.top_down_fraction() > slow.strategy.top_down_fraction()
