"""Tests for the per-figure experiment definitions.

Full figure runs belong to the ``benchmarks/`` suite; here the definitions
are exercised at a very small scale to check that every registered figure
runs, produces rows with the right labels/series, and that the cheapest
figures reproduce their expected qualitative shape.
"""

import pytest

from repro.bench import all_figures, get_figure
from repro.bench.figures import TABLE1_PARAMETERS
from repro.bench.reporting import pivot_by_strategy

TINY = 0.12  # scale multiplier small enough for unit-test runtimes


class TestRegistry:
    def test_all_registered_figures_have_unique_keys(self):
        keys = [definition.key for definition in all_figures()]
        assert len(keys) == len(set(keys))

    def test_every_paper_figure_is_covered(self):
        references = " ".join(definition.paper_reference for definition in all_figures())
        for expected in (
            "Table 1",
            "Figure 5(a)-(d)",
            "Figure 5(e)-(f)",
            "Figure 5(g)-(h)",
            "Figure 6(a)-(b)",
            "Figure 6(c)-(d)",
            "Figure 6(e)-(f)",
            "Figure 6(g)-(h)",
            "Figure 7",
            "Figure 8",
            "Section 4",
            "Section 3.1",
        ):
            assert expected in references

    def test_get_figure_unknown_key(self):
        with pytest.raises(KeyError):
            get_figure("fig99_nonexistent")

    def test_table1_lists_paper_parameters(self):
        assert "epsilon" in TABLE1_PARAMETERS
        assert 0.003 in TABLE1_PARAMETERS["epsilon"]
        assert "max_distance_moved" in TABLE1_PARAMETERS

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_figure("fig5_epsilon").run(scale=0.0)


class TestTable1:
    def test_rows_cover_every_parameter(self):
        rows = get_figure("table1").run(scale=1.0)
        parameters = {row.x_value for row in rows}
        assert parameters == set(TABLE1_PARAMETERS)


class TestNaiveFallbackFigure:
    def test_fallback_ordering_matches_section_3_1(self):
        # This figure needs a slightly larger scale than the other unit-test
        # runs: with too few objects the leaf MBRs dwarf the movement
        # distances and the naive strategy stops falling back.
        rows = get_figure("naive_fallback").run(scale=0.25, seed=5)
        fractions = {row.strategy: row.extras["top_down_fraction"] for row in rows}
        assert fractions["NAIVE"] > fractions["LBU"] > fractions["GBU"]
        # The naive strategy must lose a large share of its updates to
        # top-down processing (the paper reports 82 % at full scale).
        assert fractions["NAIVE"] > 0.45


class TestEpsilonFigure:
    def test_series_and_shape(self):
        rows = get_figure("fig5_epsilon").run(scale=TINY, seed=5)
        strategies = {row.strategy for row in rows}
        assert strategies == {"TD", "LBU", "GBU"}
        update_pivot = pivot_by_strategy(rows, "avg_update_io")
        # TD ignores epsilon: identical cost at every x value.
        td_values = {round(values["TD"], 6) for values in update_pivot.values()}
        assert len(td_values) == 1
        # GBU updates must be cheaper than TD at the paper's default epsilon.
        assert update_pivot[0.003]["GBU"] < update_pivot[0.003]["TD"]


class TestCostModelFigure:
    def test_analytic_bound_holds(self):
        rows = get_figure("cost_model").run(scale=TINY, seed=3)
        by_strategy = {}
        for row in rows:
            by_strategy.setdefault(row.strategy, []).append(row)
        td_best = by_strategy["TD-analytic"][0].avg_update_io
        for row in by_strategy["GBU-analytic"]:
            assert row.avg_update_io <= td_best


class TestThroughputFigure:
    def test_gbu_consistently_at_or_above_td(self):
        # Like the fallback figure, the throughput comparison needs enough
        # objects for lock contention not to dominate; scale 0.25 keeps the
        # runtime in seconds while preserving the figure's shape.
        rows = get_figure("fig8_throughput").run(scale=0.25, seed=5)
        pivot = pivot_by_strategy(rows, "throughput")
        for fraction, values in pivot.items():
            if fraction == 0.0:
                continue  # pure-query mixes are identical by construction
            assert values["GBU"] >= values["TD"]


class TestContentionSweepFigure:
    def test_throughput_scales_with_clients_for_every_strategy(self):
        rows = get_figure("contention_sweep").run(scale=TINY, seed=5)
        pivot = pivot_by_strategy(rows, "throughput")
        client_counts = sorted(pivot)
        assert client_counts[0] == 1
        for strategy in ("TD", "LBU", "GBU"):
            assert pivot[client_counts[-1]][strategy] >= pivot[1][strategy]

    def test_lock_waits_appear_once_clients_contend(self):
        rows = get_figure("contention_sweep").run(scale=TINY, seed=5)
        waits = {
            (row.x_value, row.strategy): row.extras["lock_waits"] for row in rows
        }
        assert all(value == 0 for (clients, _s), value in waits.items() if clients == 1)
        assert any(value > 0 for (clients, _s), value in waits.items() if clients > 1)


class TestShardScalingFigure:
    def test_registered_with_both_workload_series(self):
        rows = get_figure("shard_scaling").run(scale=TINY, seed=5)
        assert {row.strategy for row in rows} == {"uniform", "hotspot"}
        assert {row.x_value for row in rows} == {1, 2, 4, 8}

    def test_multi_shard_makespan_beats_single_shard_on_uniform(self):
        """Acceptance criterion: at 4+ shards the concurrent makespan is
        strictly below the single-shard makespan on the uniform workload."""
        rows = get_figure("shard_scaling").run(scale=TINY, seed=5)
        makespan = pivot_by_strategy(rows, "makespan")
        for num_shards in makespan:
            if num_shards >= 4:
                assert makespan[num_shards]["uniform"] < makespan[1]["uniform"]

    def test_hotspot_variant_reports_the_imbalance(self):
        rows = get_figure("shard_scaling").run(scale=TINY, seed=5)
        imbalance = pivot_by_strategy(rows, "imbalance")
        most = max(imbalance)
        assert imbalance[most]["hotspot"] > imbalance[most]["uniform"]
        migrations = pivot_by_strategy(rows, "migrations")
        assert migrations[most]["uniform"] > 0
        assert all(migrations[1][series] == 0 for series in ("uniform", "hotspot"))


class TestBatchThroughputFigure:
    def test_concurrent_scheduling_strictly_beats_serial(self):
        rows = get_figure("batch_throughput").run(scale=TINY, seed=7)
        assert {row.strategy for row in rows} == {"TD", "NAIVE", "LBU", "GBU"}
        for row in rows:
            assert row.extras["concurrent_makespan"] < row.extras["serial_makespan"]
            assert row.extras["speedup"] > 1.0


class TestAdaptiveStrategyFigure:
    def test_adaptive_strictly_beats_every_static_strategy(self):
        """Acceptance criterion of the adaptive-strategy PR: the adaptive
        configuration's total I/O makespan — switch cost included, starting
        from a strategy that wins neither shard — is strictly below every
        static global strategy's on the mixed two-shard workload."""
        rows = get_figure("adaptive_strategy").run(scale=TINY, seed=5)
        makespan = {row.x_value: row.extras["makespan"] for row in rows}
        switches = {row.x_value: row.extras["switches"] for row in rows}
        assert set(makespan) == {"TD", "NAIVE", "LBU", "GBU", "adaptive"}
        for static in ("TD", "NAIVE", "LBU", "GBU"):
            assert makespan["adaptive"] < makespan[static], static
            assert switches[static] == 0
        # Both shards adapted away from the NAIVE start.
        assert switches["adaptive"] >= 2


class TestRebalanceHotspotFigure:
    def test_rebalancer_beats_the_static_grid_and_nears_uniform(self):
        """Acceptance criterion of the rebalancing PR: with the rebalancer
        enabled, the 4-shard hotspot makespan — including the one-off
        migration cost — is strictly below the static hotspot makespan and
        within 1.5x of the uniform-workload makespan."""
        rows = get_figure("rebalance_hotspot").run(scale=TINY, seed=5)
        makespan = {row.x_value: row.extras["makespan"] for row in rows}
        imbalance = {row.x_value: row.extras["imbalance"] for row in rows}
        rebalances = {row.x_value: row.extras["rebalances"] for row in rows}
        assert set(makespan) == {"uniform", "hotspot", "hotspot+rebalance"}
        assert makespan["hotspot+rebalance"] < makespan["hotspot"]
        assert makespan["hotspot+rebalance"] <= 1.5 * makespan["uniform"]
        # The control loop ran exactly once (the cooldown prevents thrash)
        # and actually balanced the shard populations.
        assert rebalances["hotspot+rebalance"] == 1
        assert rebalances["hotspot"] == 0
        assert imbalance["hotspot"] > 1.5
        assert imbalance["hotspot+rebalance"] < imbalance["hotspot"]
