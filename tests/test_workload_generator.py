"""Tests for the GSTD-style workload generator and its spec."""

import pytest

from repro.api import Operation
from repro.geometry import Rect
from repro.workload import WorkloadGenerator, WorkloadSpec


class TestSpec:
    def test_defaults_are_sane(self):
        spec = WorkloadSpec()
        assert spec.num_objects > 0
        assert spec.distribution == "uniform"
        assert spec.max_distance == pytest.approx(0.03)
        assert spec.query_max_side == pytest.approx(0.1)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_objects=0)
        with pytest.raises(ValueError):
            WorkloadSpec(num_updates=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(max_distance=-0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(distribution="zipf")

    def test_with_overrides(self):
        spec = WorkloadSpec().with_overrides(num_updates=123, distribution="gaussian")
        assert spec.num_updates == 123
        assert spec.distribution == "gaussian"

    def test_describe_mentions_core_numbers(self):
        text = WorkloadSpec(num_objects=1000, num_updates=2000).describe()
        assert "objects=1000" in text and "updates=2000" in text


class TestGenerator:
    def test_initial_objects_match_spec(self):
        spec = WorkloadSpec(num_objects=200, seed=3)
        generator = WorkloadGenerator(spec)
        objects = generator.initial_objects()
        assert len(objects) == 200
        assert [oid for oid, _ in objects] == list(range(200))

    def test_generator_is_reproducible(self):
        spec = WorkloadSpec(num_objects=100, num_updates=300, seed=9)
        first = list(WorkloadGenerator(spec).updates())
        second = list(WorkloadGenerator(spec).updates())
        assert first == second

    def test_update_stream_is_consistent_with_positions(self):
        spec = WorkloadSpec(num_objects=100, num_updates=400, seed=5)
        generator = WorkloadGenerator(spec)
        positions = dict(generator.initial_objects())
        for oid, old, new in generator.updates():
            assert positions[oid] == old
            positions[oid] = new
            assert generator.current_position(oid) == new

    def test_updates_move_at_most_max_distance_per_axis(self):
        spec = WorkloadSpec(num_objects=50, num_updates=500, seed=2, max_distance=0.02)
        generator = WorkloadGenerator(spec)
        for _oid, old, new in generator.updates():
            assert abs(new.x - old.x) <= 0.02 + 1e-12
            assert abs(new.y - old.y) <= 0.02 + 1e-12

    def test_query_stream_counts_and_bounds(self):
        spec = WorkloadSpec(num_objects=10, num_queries=80, seed=4, query_max_side=0.05)
        generator = WorkloadGenerator(spec)
        windows = list(generator.queries())
        assert len(windows) == 80
        for window in windows:
            assert Rect.unit().contains_rect(window)
            assert window.width <= 0.05 + 1e-12

    def test_explicit_counts_override_spec(self):
        spec = WorkloadSpec(num_objects=50, num_updates=10, num_queries=10, seed=1)
        generator = WorkloadGenerator(spec)
        assert len(list(generator.updates(25))) == 25
        assert len(list(generator.queries(7))) == 7

    def test_distribution_is_honoured(self):
        spec = WorkloadSpec(num_objects=1000, distribution="skewed", seed=6)
        positions = [p for _, p in WorkloadGenerator(spec).initial_objects()]
        near_origin = sum(1 for p in positions if p.x < 0.3 and p.y < 0.3)
        assert near_origin / len(positions) > 0.35  # ~0.09 for uniform data


class TestMixedOperations:
    def test_update_fraction_zero_yields_only_queries(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=50, seed=1))
        kinds = {kind for kind, _ in generator.mixed_operations(100, update_fraction=0.0)}
        assert kinds == {"query"}

    def test_update_fraction_one_yields_only_updates(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=50, seed=1))
        kinds = {kind for kind, _ in generator.mixed_operations(100, update_fraction=1.0)}
        assert kinds == {"update"}

    def test_mixed_fraction_roughly_respected(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=50, seed=1))
        operations = list(generator.mixed_operations(1000, update_fraction=0.25))
        updates = sum(1 for kind, _ in operations if kind == "update")
        assert 0.15 < updates / len(operations) < 0.35

    def test_invalid_fraction_rejected(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=10, seed=1))
        with pytest.raises(ValueError):
            list(generator.mixed_operations(10, update_fraction=1.5))

    def test_total_operation_count(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=20, seed=8))
        assert len(list(generator.mixed_operations(64, update_fraction=0.5))) == 64


class TestClientStreams:
    def test_rejects_nonpositive_client_count(self):
        generator = WorkloadGenerator(WorkloadSpec(num_objects=50, seed=1))
        with pytest.raises(ValueError):
            generator.client_streams(0, 10, 0.5)

    def test_streams_partition_the_mixed_stream(self):
        spec = WorkloadSpec(num_objects=100, num_updates=0, num_queries=0, seed=4)
        shared = list(WorkloadGenerator(spec).mixed_operations(30, 0.5))
        streams = WorkloadGenerator(spec).client_streams(7, 30, 0.5)
        assert len(streams) == 7
        dealt = []
        for position in range(30):
            dealt.append(streams[position % 7][position // 7])
        assert dealt == [Operation.from_tuple(item) for item in shared]
