"""Unit tests for the batch execution machinery and its new primitives.

Covers the layers the batch engine crosses: the buffer pool's pin/unpin and
pure capacity sizing, the R-tree group primitives
(``remove_entries``/``add_entries``/``adjust_upward``), the executor's
coalescing/grouping/barrier behaviour and per-batch I/O snapshots, the
facade entry points, the summary structure's bulk refresh, and the workload
generator's batched stream mode.
"""

import pytest

from repro.api import RangeQuery, Update
from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.rtree.node import Entry
from repro.storage import BufferPool, DiskManager, IOStatistics
from repro.update import BatchUpdate, UpdateOutcome
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE, build_index, make_points


class TestCapacityForPercentage:
    def test_pure_computation(self):
        assert BufferPool.capacity_for_percentage(1.0, 1000) == 10
        assert BufferPool.capacity_for_percentage(0.0, 1000) == 0
        assert BufferPool.capacity_for_percentage(10.0, 55) == 5

    def test_rounds_down_but_never_to_zero_when_requested(self):
        assert BufferPool.capacity_for_percentage(1.0, 50) == 1
        assert BufferPool.capacity_for_percentage(1.0, 0) == 0

    def test_rejects_negative_percentage(self):
        with pytest.raises(ValueError):
            BufferPool.capacity_for_percentage(-1.0, 100)

    def test_for_percentage_uses_the_same_rule(self, disk):
        pool = BufferPool.for_percentage(disk, 2.0, 250)
        assert pool.capacity == BufferPool.capacity_for_percentage(2.0, 250)

    def test_configure_buffer_matches_classmethod(self):
        index = build_index("TD", num_objects=300)
        index.configure_buffer(5.0)
        assert index.buffer.capacity == BufferPool.capacity_for_percentage(
            5.0, len(index.disk)
        )


class TestBufferPinning:
    def make_pool(self, capacity=2):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        pages = [disk.allocate_page() for _ in range(4)]
        for page in pages:
            disk.write_page(page, f"payload-{page}")
        return BufferPool(disk, capacity=capacity, stats=stats), pages

    def test_pinned_page_survives_eviction_pressure(self):
        pool, pages = self.make_pool(capacity=1)
        pool.read(pages[0])
        pool.pin(pages[0])
        pool.read(pages[1])  # would normally evict pages[0]
        assert pages[0] in pool.resident_pages()
        pool.unpin(pages[0])
        pool.read(pages[2])  # now pages[0] is evictable again
        assert pages[0] not in pool.resident_pages()

    def test_pool_may_run_over_capacity_while_pinned(self):
        pool, pages = self.make_pool(capacity=1)
        pool.read(pages[0])
        pool.pin(pages[0])
        pool.read(pages[1])
        assert len(pool) == 2  # over capacity, by design
        pool.unpin(pages[0])
        pool.read(pages[2])
        assert len(pool) <= 2

    def test_pins_nest(self):
        pool, pages = self.make_pool()
        pool.pin(pages[0])
        pool.pin(pages[0])
        pool.unpin(pages[0])
        assert pool.is_pinned(pages[0])
        pool.unpin(pages[0])
        assert not pool.is_pinned(pages[0])

    def test_unpin_of_unpinned_page_is_a_noop(self):
        pool, pages = self.make_pool()
        pool.unpin(pages[0])
        assert not pool.is_pinned(pages[0])


class TestTreeGroupPrimitives:
    def test_remove_and_add_entries_move_objects_between_leaves(self, populated_tree):
        tree = populated_tree
        leaves = list(tree.leaf_nodes())
        source = next(leaf for leaf in leaves if len(leaf.entries) >= 3)
        target = next(
            leaf
            for leaf in leaves
            if leaf.page_id != source.page_id
            and len(leaf.entries) + 2 <= tree.leaf_capacity
        )
        moved_ids = [entry.child for entry in source.entries[:2]]
        before = tree.size
        removed = tree.remove_entries(source, moved_ids)
        assert [entry.child for entry in removed] == moved_ids
        tree.add_entries(target, removed)
        assert tree.size == before  # moves are size-neutral
        assert all(target.find_entry(oid) is not None for oid in moved_ids)

    def test_remove_entries_is_atomic_on_missing_ids(self, populated_tree):
        tree = populated_tree
        leaf = next(iter(tree.leaf_nodes()))
        count = len(leaf.entries)
        present = leaf.entries[0].child
        with pytest.raises(LookupError):
            tree.remove_entries(leaf, [present, 10**9])
        assert len(leaf.entries) == count

    def test_add_entries_refuses_overflow(self, populated_tree):
        tree = populated_tree
        leaf = next(iter(tree.leaf_nodes()))
        room = tree.leaf_capacity - len(leaf.entries)
        extra = [
            Entry(Rect.from_point(Point(0.5, 0.5)), 10**6 + i) for i in range(room + 1)
        ]
        with pytest.raises(ValueError):
            tree.add_entries(leaf, extra)
        assert len(leaf.entries) + room == tree.leaf_capacity

    def test_adjust_upward_writes_parent_once_per_pass(self, populated_tree):
        tree = populated_tree
        root = tree.read_node(tree.root_page_id)
        assert not root.is_leaf
        parent_entry = root.entries[0]
        parent = tree.read_node(parent_entry.child)
        if parent.is_leaf:
            pytest.skip("tree too shallow for this check")
        child = tree.read_node(parent.entries[0].child)
        # Shrink the child to a single entry: its MBR tightens.
        child.entries = child.entries[:1]
        tree.write_node(child)
        writes_before = tree.disk.stats.logical_writes
        assert tree.adjust_upward(parent, [child]) is True
        assert tree.disk.stats.logical_writes == writes_before + 1
        refreshed = tree.read_node(parent.page_id)
        assert refreshed.find_entry(child.page_id).rect == child.effective_mbr()

    def test_adjust_upward_no_change_no_write(self, populated_tree):
        tree = populated_tree
        root = tree.read_node(tree.root_page_id)
        parent = tree.read_node(root.entries[0].child)
        if parent.is_leaf:
            pytest.skip("tree too shallow for this check")
        child = tree.read_node(parent.entries[0].child)
        parent.find_entry(child.page_id).rect = child.effective_mbr()
        writes_before = tree.disk.stats.logical_writes
        assert tree.adjust_upward(parent, [child]) in (True, False)
        # A second pass over unchanged children must not write at all.
        writes_before = tree.disk.stats.logical_writes
        assert tree.adjust_upward(parent, [child]) is False
        assert tree.disk.stats.logical_writes == writes_before


class TestBatchExecutor:
    def test_coalesces_repeated_updates_of_one_object(self):
        index = build_index("GBU", num_objects=200)
        final = Point(0.42, 0.42)
        result = index.update_many([(5, Point(0.1, 0.1)), (5, Point(0.9, 0.9)), (5, final)])
        assert result.updates == 3
        assert result.coalesced == 2
        assert index.position_of(5) == final
        assert sorted(index.range_query(Rect.from_point(final)))[0:1] == [5]

    def test_groups_never_outnumber_touched_leaves(self):
        index = build_index("GBU", num_objects=400)
        moves = []
        for oid in range(0, 200):
            position = index.position_of(oid)
            moves.append((oid, Point(position.x, position.y)))  # no-op moves
        result = index.update_many(moves)
        distinct_leaves = {index.hash_index.peek(oid) for oid, _ in moves}
        assert result.groups <= len(distinct_leaves)
        assert result.residuals == 0
        assert result.largest_group >= 2

    def test_per_batch_io_snapshot_is_a_delta(self):
        index = build_index("GBU", num_objects=300)
        first = index.update_many(
            [(oid, Point(0.5, 0.5)) for oid in range(20)]
        )
        global_before = index.stats.snapshot()
        second = index.update_many(
            [(oid, Point(0.51, 0.51)) for oid in range(20)]
        )
        assert second.io.logical_reads <= index.stats.logical_reads
        delta = index.stats.delta_since(global_before)
        assert second.io.physical_reads == delta.physical_reads
        assert second.io.logical_writes == delta.logical_writes
        assert first.io.total_physical_io >= 0

    def test_update_many_rejects_unknown_object(self):
        index = build_index("TD", num_objects=50)
        with pytest.raises(KeyError):
            index.update_many([(10**9, Point(0.5, 0.5))])

    def test_rejected_batch_leaves_positions_untouched(self):
        """A parse error mid-stream must not desync the position map."""
        index = build_index("TD", num_objects=50)
        before = index.position_of(1)
        with pytest.raises(KeyError):
            index.update_many([(1, Point(0.77, 0.77)), (10**9, Point(0.5, 0.5))])
        assert index.position_of(1) == before
        with pytest.raises(ValueError):
            index.apply(
                [("update", 1, Point(0.77, 0.77)), ("insert", 2, Point(0.1, 0.1))]
            )
        assert index.position_of(1) == before
        index.validate()

    def test_apply_rejects_unknown_kind(self):
        index = build_index("TD", num_objects=50)
        with pytest.raises(ValueError):
            index.apply([("compact",)])

    def test_apply_insert_then_update_then_delete(self):
        index = build_index("NAIVE", num_objects=60)
        size = len(index)
        result = index.apply(
            [
                ("insert", 900, Point(0.3, 0.3)),
                ("update", 900, Point(0.35, 0.35)),
                ("range_query", Rect(0.3, 0.3, 0.4, 0.4)),
                ("delete", 900),
                ("range_query", Rect(0.3, 0.3, 0.4, 0.4)),
            ]
        )
        assert result.inserts == 1
        assert result.deletes == 1
        assert 900 in result.queries[0]
        assert 900 not in result.queries[1]
        assert len(index) == size
        index.validate()

    def test_delete_of_absent_object_is_skipped(self):
        index = build_index("TD", num_objects=40)
        result = index.apply([("delete", 10**9)])
        assert result.deletes == 0

    def test_outcome_counters_cover_batched_updates(self):
        index = build_index("GBU", num_objects=300)
        spec = WorkloadSpec(
            num_objects=300, num_updates=400, num_queries=0, max_distance=0.02, seed=11
        )
        generator = WorkloadGenerator(spec)
        result = index.update_many(
            [(oid, new) for oid, _old, new in generator.updates()]
        )
        applied = result.updates - result.coalesced
        assert index.strategy.update_count == applied
        assert sum(index.strategy.outcome_counts.values()) == applied
        assert index.strategy.outcome_counts[UpdateOutcome.IN_PLACE] > 0

    def test_batchupdate_namedtuple_shape(self):
        request = BatchUpdate(3, Point(0.1, 0.2), Point(0.3, 0.4))
        assert request.oid == 3
        assert request.new_location == Point(0.3, 0.4)


class TestSummaryBulkRefresh:
    def test_rebuild_matches_incremental_maintenance(self):
        index = build_index("GBU", num_objects=400)
        spec = WorkloadSpec(
            num_objects=400, num_updates=600, num_queries=0, max_distance=0.08, seed=2
        )
        generator = WorkloadGenerator(spec)
        index.update_many([(oid, new) for oid, _old, new in generator.updates()])
        assert index.summary.consistency_errors() == []
        index.refresh_summary()
        assert index.summary.consistency_errors() == []
        assert index.summary.root_page_id == index.tree.root_page_id

    def test_rebuild_repairs_a_corrupted_summary(self):
        index = build_index("GBU", num_objects=300)
        index.summary.leaf_bits.set_fullness(10**6, True)  # stale garbage
        assert index.summary.consistency_errors() != []
        index.refresh_summary()
        assert index.summary.consistency_errors() == []

    def test_refresh_summary_is_a_noop_without_summary(self):
        index = build_index("TD", num_objects=50)
        index.refresh_summary()  # must not raise


class TestGeneratorBatchedStream:
    def test_batches_concatenate_to_the_sequential_stream(self):
        spec = WorkloadSpec(num_objects=100, num_updates=250, num_queries=0, seed=5)
        sequential = list(WorkloadGenerator(spec).updates())
        batches = list(WorkloadGenerator(spec).update_batches(64))
        assert [len(batch) for batch in batches] == [64, 64, 64, 58]
        flattened = [request for batch in batches for request in batch]
        assert flattened == sequential

    def test_batch_size_must_be_positive(self):
        spec = WorkloadSpec(num_objects=10, num_updates=10, num_queries=0)
        with pytest.raises(ValueError):
            list(WorkloadGenerator(spec).update_batches(0))

    def test_mixed_operation_batches_preserve_order(self):
        spec = WorkloadSpec(num_objects=100, num_updates=300, num_queries=100, seed=9)
        sequential = list(WorkloadGenerator(spec).mixed_operations(200, 0.5))
        batches = list(
            WorkloadGenerator(spec).mixed_operation_batches(200, 0.5, batch_size=33)
        )
        expected = [
            Update(payload[0], payload[2])
            if kind == "update"
            else RangeQuery(payload)
            for kind, payload in sequential
        ]
        assert [item for batch in batches for item in batch] == expected

    def test_mixed_operation_batches_feed_apply(self):
        """The documented integration: batches go straight into apply()."""
        spec = WorkloadSpec(
            num_objects=200, num_updates=300, num_queries=100, max_distance=0.05, seed=6
        )
        per_op = build_index("GBU", num_objects=200, seed=6)
        batched = build_index("GBU", num_objects=200, seed=6)
        sequential_answers = []
        for kind, payload in WorkloadGenerator(spec).mixed_operations(250, 0.6):
            if kind == "update":
                oid, _old, new = payload
                per_op.update(oid, new)
            else:
                sequential_answers.append(sorted(per_op.range_query(payload)))
        batch_answers = []
        for batch in WorkloadGenerator(spec).mixed_operation_batches(
            250, 0.6, batch_size=40
        ):
            result = batched.apply(batch)
            batch_answers.extend(sorted(answer) for answer in result.queries)
        assert batch_answers == sequential_answers
        per_op.validate()
        batched.validate()


class TestBatchPlan:
    def test_plan_coalesces_and_buckets_by_leaf(self):
        index = build_index("GBU", num_objects=200)
        a, b = 3, 4
        pos_a, pos_b = index.position_of(a), index.position_of(b)
        plan = index.batch.plan(
            [
                BatchUpdate(a, pos_a, Point(0.31, 0.31)),
                BatchUpdate(b, pos_b, Point(0.72, 0.72)),
                BatchUpdate(a, Point(0.31, 0.31), Point(0.33, 0.33)),
            ]
        )
        assert plan.requested == 3
        assert plan.coalesced == 1
        assert not plan.unindexed
        members = [u for bucket in plan.buckets.values() for u in bucket]
        assert len(members) == 2
        coalesced_a = next(u for u in members if u.oid == a)
        # Earliest old position, latest new position.
        assert coalesced_a.old_location == pos_a
        assert coalesced_a.new_location == Point(0.33, 0.33)
        # Every member is bucketed under its current leaf page.
        for leaf_page, bucket in plan.buckets.items():
            for request in bucket:
                assert index.hash_index.peek(request.oid) == leaf_page

    def test_plan_routes_unknown_objects_to_unindexed(self):
        index = build_index("GBU", num_objects=50)
        plan = index.batch.plan(
            [BatchUpdate(99_999, Point(0.1, 0.1), Point(0.2, 0.2))]
        )
        assert not plan.buckets
        assert len(plan.unindexed) == 1

    def test_plan_charges_no_io(self):
        index = build_index("GBU", num_objects=200)
        updates = [
            BatchUpdate(oid, index.position_of(oid), Point(0.5, 0.5))
            for oid in range(50)
        ]
        before = index.io_snapshot()
        index.batch.plan(updates)
        delta = index.io_snapshot().delta_since(before)
        assert delta.total_physical_io == 0
        assert delta.logical_reads == 0
