"""Tests for GBU — the Generalized Bottom-Up Update (Algorithm 2)."""

import random

from repro.geometry import Point, Rect
from repro.update import UpdateOutcome

from tests.conftest import build_index


def drive(index, num_updates, step_choices, seed=1):
    """Apply random bounded moves and return the evolving position table."""
    rng = random.Random(seed)
    count = len(index)
    positions = {oid: index.position_of(oid) for oid in range(count)}
    for _ in range(num_updates):
        oid = rng.randrange(count)
        step = rng.choice(step_choices)
        new = Point(
            min(1, max(0, positions[oid].x + rng.uniform(-step, step))),
            min(1, max(0, positions[oid].y + rng.uniform(-step, step))),
        )
        index.update(oid, new)
        positions[oid] = new
    return positions


class TestUpdateOutcomes:
    def test_tiny_move_is_in_place(self):
        index = build_index("GBU", num_objects=300)
        oid = 9
        p = index.position_of(oid)
        assert index.update(oid, Point(min(1, p.x + 1e-9), p.y)) == UpdateOutcome.IN_PLACE

    def test_all_outcome_classes_occur_under_mixed_movement(self):
        index = build_index("GBU", num_objects=500, seed=2)
        drive(index, 1500, step_choices=[0.002, 0.03, 0.15], seed=3)
        counts = index.strategy.outcome_counts
        assert counts[UpdateOutcome.IN_PLACE] > 0
        assert counts[UpdateOutcome.EXTENDED] > 0
        assert counts[UpdateOutcome.SIBLING_SHIFT] > 0
        assert counts[UpdateOutcome.ASCENDED] > 0

    def test_gbu_rarely_falls_back_to_top_down(self):
        """GBU's whole point: almost every update is handled bottom-up."""
        index = build_index("GBU", num_objects=500, seed=2)
        drive(index, 1000, step_choices=[0.01, 0.05], seed=5)
        assert index.strategy.top_down_fraction() < 0.05

    def test_move_outside_root_mbr_goes_top_down(self):
        index = build_index("GBU", num_objects=300)
        root_mbr = index.summary.root_mbr()
        # Build a point guaranteed to lie outside the current root MBR (the
        # data is strictly inside the unit square, so nudging past its corner
        # works whenever the MBR is not the full square).
        outside = Point(root_mbr.xmax + 0.5, root_mbr.ymax + 0.5)
        outcome = index.strategy.update(17, index.position_of(17), outside)
        assert outcome == UpdateOutcome.TOP_DOWN

    def test_level_threshold_zero_disables_ascent(self):
        index = build_index("GBU", num_objects=400)
        index.strategy.params = index.strategy.params.with_overrides(level_threshold=0)
        drive(index, 800, step_choices=[0.05, 0.2], seed=7)
        assert index.strategy.outcome_counts[UpdateOutcome.ASCENDED] == 0

    def test_distance_threshold_prefers_sibling_for_fast_movers(self):
        fast_biased = build_index("GBU", num_objects=400, seed=8)
        extend_biased = build_index("GBU", num_objects=400, seed=8)
        fast_biased.strategy.params = fast_biased.strategy.params.with_overrides(
            distance_threshold=0.0  # every move counts as fast -> sibling first
        )
        extend_biased.strategy.params = extend_biased.strategy.params.with_overrides(
            distance_threshold=3.0,  # never fast -> extension first
            epsilon=0.05,
        )
        for index, seed in ((fast_biased, 4), (extend_biased, 4)):
            drive(index, 600, step_choices=[0.02], seed=seed)
        fast_counts = fast_biased.strategy.outcome_counts
        extend_counts = extend_biased.strategy.outcome_counts
        assert fast_counts[UpdateOutcome.SIBLING_SHIFT] >= extend_counts[UpdateOutcome.SIBLING_SHIFT]
        assert extend_counts[UpdateOutcome.EXTENDED] >= fast_counts[UpdateOutcome.EXTENDED]

    def test_epsilon_zero_disables_extension(self):
        index = build_index("GBU", num_objects=400)
        index.strategy.params = index.strategy.params.with_overrides(epsilon=0.0)
        drive(index, 600, step_choices=[0.03], seed=9)
        assert index.strategy.outcome_counts[UpdateOutcome.EXTENDED] == 0


class TestCorrectnessUnderLoad:
    def test_structure_hash_summary_and_queries_stay_correct(self):
        index = build_index("GBU", num_objects=500, seed=4)
        positions = drive(index, 2000, step_choices=[0.005, 0.05, 0.3], seed=11)
        index.validate()  # tree + hash index + summary consistency
        for window in (Rect(0.1, 0.1, 0.45, 0.5), Rect(0.5, 0.2, 0.95, 0.9), Rect.unit()):
            expected = sorted(o for o, p in positions.items() if window.contains_point(p))
            assert sorted(index.range_query(window)) == expected

    def test_objects_never_lost_even_with_teleporting_moves(self):
        index = build_index("GBU", num_objects=300, seed=12)
        rng = random.Random(14)
        for _ in range(900):
            index.update(rng.randrange(300), Point(rng.random(), rng.random()))
        assert sorted(index.range_query(Rect.unit())) == list(range(300))
        index.validate()

    def test_gbu_updates_cheaper_than_td_for_local_moves(self):
        gbu = build_index("GBU", num_objects=400, seed=6, buffer_percent=0.0)
        td = build_index("TD", num_objects=400, seed=6, buffer_percent=0.0)
        for index, seed in ((gbu, 2), (td, 2)):
            drive(index, 600, step_choices=[0.01], seed=seed)
        assert gbu.stats.total_physical_io < td.stats.total_physical_io

    def test_gbu_queries_not_worse_than_plain_td_queries(self):
        """With a small epsilon GBU's index quality must not lag TD's."""
        gbu = build_index("GBU", num_objects=400, seed=6, buffer_percent=0.0)
        td = build_index("TD", num_objects=400, seed=6, buffer_percent=0.0)
        for index, seed in ((gbu, 2), (td, 2)):
            drive(index, 800, step_choices=[0.02], seed=seed)
        windows = []
        rng = random.Random(20)
        for _ in range(60):
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.2)
            windows.append(Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s)))
        gbu_before = gbu.stats.total_physical_io
        td_before = td.stats.total_physical_io
        for window in windows:
            gbu.range_query(window)
            td.range_query(window)
        gbu_cost = gbu.stats.total_physical_io - gbu_before
        td_cost = td.stats.total_physical_io - td_before
        assert gbu_cost <= td_cost * 1.1  # on par or better, generous margin

    def test_in_place_update_costs_three_ios(self):
        index = build_index("GBU", num_objects=300, buffer_percent=0.0)
        oid = 21
        p = index.position_of(oid)
        before = index.stats.total_physical_io
        outcome = index.update(oid, Point(min(1, p.x + 1e-9), p.y))
        assert outcome == UpdateOutcome.IN_PLACE
        assert index.stats.total_physical_io - before == 3

    def test_summary_queries_can_be_disabled(self):
        index = build_index("GBU", num_objects=300, use_summary_for_queries=False)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        assert sorted(index.range_query(window)) == sorted(index.tree.range_query(window))


class TestPiggybacking:
    def test_piggybacking_moves_extra_objects(self):
        with_piggyback = build_index("GBU", num_objects=500, seed=15)
        without_piggyback = build_index("GBU", num_objects=500, seed=15)
        without_piggyback.strategy.params = (
            without_piggyback.strategy.params.with_overrides(piggyback=False)
        )
        for index, seed in ((with_piggyback, 3), (without_piggyback, 3)):
            drive(index, 1000, step_choices=[0.05], seed=seed)
        # Piggybacking redistributes objects, so the number of sibling shifts
        # recorded is the same, but the resulting leaf population differs;
        # verify both stay correct and the piggybacking run did move objects
        # (observable through identical query answers and valid structures).
        with_piggyback.validate()
        without_piggyback.validate()
        window = Rect(0.25, 0.25, 0.75, 0.75)
        assert sorted(with_piggyback.range_query(window)) == sorted(
            without_piggyback.range_query(window)
        )
