"""End-to-end integration tests: the full pipeline the benchmarks use.

These tests run miniature versions of the paper's experiments through the
public API only — exactly what a downstream user would do — and check the
qualitative findings that the paper's evaluation is built on.
"""

import pytest

from repro.bench.experiment import run_strategies
from repro.bench.reporting import pivot_by_strategy
from repro.concurrency import ThroughputExperiment, run_throughput
from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Rect
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


SPEC = WorkloadSpec(num_objects=900, num_updates=1800, num_queries=150, seed=7)
OVERRIDES = {"page_size": SMALL_PAGE_SIZE}


@pytest.fixture(scope="module")
def three_strategy_results():
    """One shared run of TD / LBU / GBU on an identical workload."""
    return run_strategies(("TD", "LBU", "GBU"), SPEC, config_overrides=OVERRIDES)


class TestHeadlineFindings:
    def test_bottom_up_beats_top_down_on_update_io(self, three_strategy_results):
        results = three_strategy_results
        assert results["GBU"].avg_update_io < results["TD"].avg_update_io
        assert results["LBU"].avg_update_io < results["TD"].avg_update_io

    def test_gbu_queries_do_not_degrade(self, three_strategy_results):
        results = three_strategy_results
        assert results["GBU"].avg_query_io <= results["TD"].avg_query_io * 1.1

    def test_lbu_queries_slightly_worse_than_td(self, three_strategy_results):
        """The paper's Figure 5(b): LBU's all-direction enlargement costs
        query performance relative to TD."""
        results = three_strategy_results
        assert results["LBU"].avg_query_io >= results["TD"].avg_query_io * 0.95

    def test_gbu_rarely_needs_top_down(self, three_strategy_results):
        gbu = three_strategy_results["GBU"]
        assert gbu.outcome_fractions.get("top_down", 0.0) < 0.1

    def test_summary_structure_is_tiny(self, three_strategy_results):
        gbu = three_strategy_results["GBU"]
        assert gbu.summary_size_ratio < 0.05

    def test_trees_have_paper_like_height(self, three_strategy_results):
        for result in three_strategy_results.values():
            assert 3 <= result.tree_stats["height"] <= 6


class TestBufferEffect:
    def test_buffering_reduces_update_io_for_every_strategy(self):
        small_spec = SPEC.with_overrides(num_updates=800, num_queries=50)
        for strategy in ("TD", "LBU", "GBU"):
            unbuffered = run_strategies(
                (strategy,), small_spec, config_overrides=dict(OVERRIDES, buffer_percent=0.0)
            )[strategy]
            buffered = run_strategies(
                (strategy,), small_spec, config_overrides=dict(OVERRIDES, buffer_percent=10.0)
            )[strategy]
            assert buffered.avg_update_io < unbuffered.avg_update_io


class TestThroughputIntegration:
    def test_gbu_throughput_advantage_grows_with_update_fraction(self):
        ratios = []
        for fraction in (0.25, 1.0):
            tps = {}
            for strategy in ("TD", "GBU"):
                spec = WorkloadSpec(
                    num_objects=800, num_updates=0, num_queries=0, seed=3, query_max_side=0.15
                )
                generator = WorkloadGenerator(spec)
                index = MovingObjectIndex(
                    IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
                )
                index.load(generator.initial_objects())
                result = run_throughput(
                    index,
                    generator,
                    ThroughputExperiment(
                        num_operations=250, update_fraction=fraction, num_clients=8
                    ),
                )
                tps[strategy] = result.throughput
            ratios.append(tps["GBU"] / tps["TD"])
        assert ratios[-1] > 1.0
        assert ratios[-1] >= ratios[0] * 0.9  # the advantage does not collapse


class TestQueryAgreementAcrossStrategies:
    def test_query_answers_identical(self):
        sinks = {}
        for strategy in ("TD", "LBU", "GBU"):
            sink = []
            from repro.bench.experiment import run_experiment

            run_experiment(
                IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE),
                SPEC.with_overrides(num_updates=600, num_queries=80),
                query_result_sink=sink,
            )
            sinks[strategy] = sink
        assert sinks["TD"] == sinks["LBU"] == sinks["GBU"]
