"""Crash injection: truncate the WAL at every byte a crash could leave.

A crash can cut an append anywhere — between frames or mid-frame.  These
tests run a deterministic per-operation workload against a durable index
(so frame *i* of the log is exactly operation *i*), then truncate the log
at **every frame boundary and inside every frame** and recover.  Recovery
must come back as the exact state after the longest intact prefix of
operations: positions match the replayed prefix, the structure validates,
and query answers agree with the position table.

The sharded variant truncates the busiest shard's log the same way while
the other shards' logs stay whole; the expected state is computed by an
independent ownership-tracking replay over the surviving frames.  A
Hypothesis property test drives the single-index case with arbitrary
truncation offsets.
"""

import itertools
import json
import random
import shutil
import struct
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import open_index
from repro.core.persistence import load_index
from repro.durability import meta_log_path, read_frames, shard_log_paths
from repro.durability.wal import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_MIGRATE_IN,
    KIND_MIGRATE_OUT,
    KIND_SET_STRATEGY,
    KIND_UPDATE,
)
from repro.geometry import Point, Rect

_FRAME_HEADER = struct.Struct("<II")
WHOLE_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


def frame_boundaries(path: Path):
    """Byte offsets of every frame end (offset 0 included): a header walk."""
    data = path.read_bytes()
    offsets = [0]
    cursor = 0
    while cursor + _FRAME_HEADER.size <= len(data):
        body_length, _crc = _FRAME_HEADER.unpack_from(data, cursor)
        end = cursor + _FRAME_HEADER.size + body_length
        if end > len(data):
            break
        offsets.append(end)
        cursor = end
    assert cursor == len(data), "workload left a torn frame before any injection"
    return offsets


def make_script(rng, objects, extra=12, deletes=10, updates=40):
    """A mixed per-op script over a loaded id range [0, objects)."""
    script = []
    for oid in rng.sample(range(objects), updates):
        script.append(("update", oid, Point(rng.random(), rng.random())))
    for oid in range(objects, objects + extra):
        script.append(("insert", oid, Point(rng.random(), rng.random())))
    for oid in rng.sample(range(objects), deletes):
        script.append(("delete", oid, None))
    rng.shuffle(script)
    # No op may touch an id twice in ways that change frame/op alignment
    # guarantees (a delete then update of the same id would raise); keep the
    # script conflict-free by dropping later ops on already-deleted ids.
    seen_deleted = set()
    clean = []
    for kind, oid, pos in script:
        if oid in seen_deleted:
            continue
        if kind == "delete":
            seen_deleted.add(oid)
        clean.append((kind, oid, pos))
    return clean


def apply_script(positions, script):
    for kind, oid, pos in script:
        if kind == "delete":
            del positions[oid]
        else:
            positions[oid] = pos
    return positions


def assert_recovered_state(recovered, expected_positions):
    table = getattr(recovered, "_shard_of", None)
    if table is None:
        table = recovered._positions
    assert sorted(table) == sorted(expected_positions)
    for oid, position in expected_positions.items():
        assert recovered.position_of(oid) == position
    assert sorted(recovered.range_query(WHOLE_SPACE)) == sorted(expected_positions)
    recovered.validate()


def build_single(tmp_path, strategy, objects=100, seed=5):
    rng = random.Random(seed)
    index = open_index(
        {
            "config": {"strategy": strategy},
            "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
        }
    )
    index.load([(oid, Point(rng.random(), rng.random())) for oid in range(objects)])
    baseline = {oid: index.position_of(oid) for oid in range(objects)}
    script = make_script(rng, objects)
    for kind, oid, pos in script:
        getattr(index, kind)(*((oid,) if pos is None else (oid, pos)))
    index.durability.flush()
    index.detach_durability()
    return baseline, script


class TestSingleIndexCrashPoints:
    @pytest.mark.parametrize("strategy", ("TD", "NAIVE", "LBU", "GBU"))
    def test_every_frame_boundary_and_mid_frame(self, tmp_path, strategy):
        baseline, script = build_single(tmp_path, strategy)
        log = shard_log_paths(tmp_path / "wal")[0]
        offsets = frame_boundaries(log)
        assert len(offsets) - 1 == len(script), "one frame per operation"

        # Every boundary, plus a cut inside every frame: iterate descending
        # so in-place truncation only ever shrinks the file.
        cuts = []
        for count in range(len(script), -1, -1):
            cuts.append((offsets[count], count))
            if count:
                mid = (offsets[count - 1] + offsets[count]) // 2
                cuts.append((mid, count - 1))
        for cut_at, intact_ops in sorted(cuts, reverse=True):
            with open(log, "r+b") as handle:
                handle.truncate(cut_at)
            recovered = load_index(tmp_path / "wal" / "checkpoint.json")
            expected = apply_script(dict(baseline), script[:intact_ops])
            assert_recovered_state(recovered, expected)
            recovered.detach_durability()


class TestDoubleCrash:
    """Recover, keep working, crash again: nothing post-recovery is lost.

    The first crash leaves a torn frame at the log tail.  The reopened
    writer must truncate to the intact prefix before appending — frames
    written beyond the tear are invisible to ``read_frames``, so without
    the truncation every operation logged after the first recovery would
    silently vanish at the second.
    """

    def test_operations_after_recovery_survive_a_second_crash(self, tmp_path):
        baseline, script = build_single(tmp_path, "GBU", objects=60, seed=21)
        log = shard_log_paths(tmp_path / "wal")[0]
        offsets = frame_boundaries(log)
        # First crash: tear the last frame in half.
        with open(log, "r+b") as handle:
            handle.truncate((offsets[-2] + offsets[-1]) // 2)
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        expected = apply_script(dict(baseline), script[: len(offsets) - 2])
        assert_recovered_state(recovered, expected)

        # Post-recovery work appends to the same (previously torn) log.
        rng = random.Random(99)
        for oid in sorted(expected)[:10]:
            position = Point(rng.random(), rng.random())
            recovered.update(oid, position)
            expected[oid] = position
        recovered.durability.flush()
        recovered.detach_durability()

        # Second crash (no checkpoint in between): recover again.
        twice = load_index(tmp_path / "wal" / "checkpoint.json")
        assert_recovered_state(twice, expected)
        twice.detach_durability()


class TestOrphanedDepartures:
    """A migration whose arrival frame was lost must not drop the object.

    A cross-shard migration's two halves share one LSN: the arrival frame
    in the target shard's log, the departure frame in the source's.  The
    OS may flush the two files in any order, so a crash can leave the
    departure durable while the arrival is torn away.  Recovery pairs the
    halves by LSN, recognises the departure as orphaned, and leaves the
    object on its source shard at its old position.
    """

    def test_departure_without_arrival_keeps_the_object(self, tmp_path):
        index = open_index(
            {
                "kind": "sharded",
                "shards": 2,
                "config": {"strategy": "GBU"},
                "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
            }
        )
        rng = random.Random(3)
        index.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(80)]
        )
        oid = next(o for o, sid in index._shard_of.items() if sid == 0)
        old_position = index.position_of(oid)
        target_position = next(
            p
            for p in (Point(0.025 + 0.05 * i, 0.5) for i in range(20))
            if index.partitioner.shard_of(p) == 1
        )
        index.update(oid, target_position)  # the cross-shard migration
        assert index._shard_of[oid] == 1
        index.durability.flush()
        index.detach_durability()

        logs = shard_log_paths(tmp_path / "wal")
        # The crash: shard 1's log (holding the arrival) never hit the disk.
        with open(logs[1], "r+b") as handle:
            handle.truncate(0)

        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        # The object survived — still on its source shard, old position —
        # instead of being deleted by the orphaned departure.
        assert sorted(recovered._shard_of) == sorted(index._shard_of)
        assert recovered._shard_of[oid] == 0
        assert recovered.position_of(oid) == old_position
        assert oid in recovered.range_query(WHOLE_SPACE)
        recovered.validate()
        recovered.detach_durability()


def replay_reference(per_shard_baseline, surviving_logs, meta_path):
    """Independent ownership-tracking replay of the surviving frames.

    Mirrors the documented recovery semantics with none of its code: merge
    per-shard frames on LSN, arrivals evict the stale copy and land on the
    logging shard, departures only apply while the logging shard owns the
    object — and a ``migrate_out`` with no matching ``migrate_in`` in its
    commit unit (the two halves share one LSN) is an orphaned departure
    whose arrival was torn away: it is skipped, the object stays put.
    """
    owner = {
        oid: sid for sid, table in per_shard_baseline.items() for oid in table
    }
    positions = {
        oid: pos for table in per_shard_baseline.values() for oid, pos in table.items()
    }
    tagged = []
    for sid, path in surviving_logs.items():
        for lsn, records in read_frames(path):
            tagged.append((lsn, sid, records))
    tagged.sort(key=lambda item: (item[0], item[1]))
    for _lsn, unit in itertools.groupby(tagged, key=lambda item: item[0]):
        frames = list(unit)
        arrived = {
            record.oid
            for _l, _s, unit_records in frames
            for record in unit_records
            if record.kind == KIND_MIGRATE_IN
        }
        for _l, sid, records in frames:
            for record in records:
                if record.kind in (KIND_INSERT, KIND_UPDATE, KIND_MIGRATE_IN):
                    owner[record.oid] = sid
                    positions[record.oid] = record.position()
                elif record.kind == KIND_MIGRATE_OUT:
                    if record.oid in arrived and owner.get(record.oid) == sid:
                        del owner[record.oid]
                        del positions[record.oid]
                elif record.kind == KIND_DELETE:
                    if owner.get(record.oid) == sid:
                        del owner[record.oid]
                        del positions[record.oid]
                else:  # pragma: no cover - the workload logs no other kinds
                    raise AssertionError(record.kind)
    list(read_frames(meta_path))  # meta log must at least parse
    return positions, owner


class TestShardedCrashPoints:
    def test_truncating_one_shard_log_at_every_boundary(self, tmp_path):
        rng = random.Random(9)
        index = open_index(
            {
                "kind": "sharded",
                "shards": 4,
                "config": {"strategy": "GBU"},
                "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
            }
        )
        index.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(160)]
        )
        per_shard_baseline = {
            sid: dict(shard._positions) for sid, shard in enumerate(index.shards)
        }
        # Per-op updates with long moves: plenty of cross-shard migrations,
        # so the logs carry migrate_in/migrate_out pairs to tear apart.
        for oid in range(120):
            index.update(oid, Point(rng.random(), rng.random()))
        for oid in range(160, 170):
            index.insert(oid, Point(rng.random(), rng.random()))
        for oid in range(0, 10):
            index.delete(oid)
        index.durability.flush()
        index.detach_durability()

        logs = shard_log_paths(tmp_path / "wal")
        victim_sid, victim = max(
            logs.items(), key=lambda item: item[1].stat().st_size
        )
        offsets = frame_boundaries(victim)
        assert len(offsets) > 10, "victim shard saw real traffic"

        cuts = []
        for count in range(len(offsets) - 1, -1, -1):
            cuts.append(offsets[count])
            if count:
                cuts.append((offsets[count - 1] + offsets[count]) // 2)
        for cut_at in sorted(cuts, reverse=True):
            with open(victim, "r+b") as handle:
                handle.truncate(cut_at)
            recovered = load_index(tmp_path / "wal" / "checkpoint.json")
            expected_positions, expected_owner = replay_reference(
                per_shard_baseline, logs, meta_log_path(tmp_path / "wal")
            )
            assert_recovered_state(recovered, expected_positions)
            # Placement matches the reference replay too: a half-replayed
            # migration must land the object on the arrival shard.
            assert recovered._shard_of == expected_owner
            recovered.detach_durability()


def switch_frame_index(log, pre_ops):
    """The frame index of the strategy-switch record, asserted in position."""
    frames = list(read_frames(log))
    switch_at = next(
        i
        for i, (_lsn, records) in enumerate(frames)
        if any(record.kind == KIND_SET_STRATEGY for record in records)
    )
    assert switch_at == pre_ops, "one frame per op, then the switch frame"
    return switch_at


class TestStrategySwitchCrashPoints:
    """The strategy-switch WAL frame: cuts at and around it must recover the
    strategy that was live at the cut — pre-switch before the frame survives
    intact (including a torn switch frame), post-switch from the frame on."""

    def test_cuts_at_and_around_the_switch_frame(self, tmp_path):
        rng = random.Random(17)
        index = open_index(
            {
                "config": {"strategy": "TD"},
                "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
            }
        )
        index.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(60)]
        )
        baseline = {oid: index.position_of(oid) for oid in range(60)}
        pre = [
            ("update", oid, Point(rng.random(), rng.random()))
            for oid in rng.sample(range(60), 8)
        ]
        post = [
            ("update", oid, Point(rng.random(), rng.random()))
            for oid in rng.sample(range(60), 8)
        ]
        for _kind, oid, position in pre:
            index.update(oid, position)
        index.set_strategy("GBU")
        for _kind, oid, position in post:
            index.update(oid, position)
        index.durability.flush()
        index.detach_durability()

        log = shard_log_paths(tmp_path / "wal")[0]
        offsets = frame_boundaries(log)
        switch_at = switch_frame_index(log, len(pre))
        assert len(offsets) - 1 == len(pre) + 1 + len(post)

        mid_switch = (offsets[switch_at] + offsets[switch_at + 1]) // 2
        cases = [
            (offsets[-1], "GBU", pre + post),  # whole log
            (offsets[switch_at + 2], "GBU", pre + post[:1]),
            (offsets[switch_at + 1], "GBU", pre),  # switch is the last frame
            (mid_switch, "TD", pre),  # torn switch frame: switch never happened
            (offsets[switch_at], "TD", pre),
            (offsets[max(0, switch_at - 1)], "TD", pre[:-1]),
        ]
        for cut_at, expected_strategy, intact in sorted(cases, reverse=True):
            with open(log, "r+b") as handle:
                handle.truncate(cut_at)
            recovered = load_index(tmp_path / "wal" / "checkpoint.json")
            assert recovered.active_strategy == expected_strategy, cut_at
            assert recovered.config.strategy == "TD"
            assert_recovered_state(
                recovered, apply_script(dict(baseline), intact)
            )
            recovered.detach_durability()

    def test_cut_between_two_switches_recovers_the_middle_strategy(
        self, tmp_path
    ):
        rng = random.Random(23)
        index = open_index(
            {
                "config": {"strategy": "TD"},
                "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
            }
        )
        index.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(40)]
        )
        index.set_strategy("GBU")
        for oid in range(5):
            index.update(oid, Point(rng.random(), rng.random()))
        index.set_strategy("LBU")
        index.durability.flush()
        index.detach_durability()

        log = shard_log_paths(tmp_path / "wal")[0]
        offsets = frame_boundaries(log)
        # Frames: switch, 5 updates, switch.  Cut after the updates.
        with open(log, "r+b") as handle:
            handle.truncate(offsets[6])
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert recovered.active_strategy == "GBU"
        recovered.validate()
        recovered.detach_durability()

    def test_sharded_per_shard_switch_frame_truncation(self, tmp_path):
        rng = random.Random(31)
        index = open_index(
            {
                "kind": "sharded",
                "shards": 2,
                "config": {"strategy": "NAIVE"},
                "durability": {"dir": str(tmp_path / "wal"), "sync": "none"},
            }
        )
        index.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(80)]
        )
        baseline = {oid: index.position_of(oid) for oid in range(80)}
        local = sorted(
            oid for oid, sid in index._shard_of.items() if sid == 1
        )[:12]

        def move_within_shard_1(oid):
            while True:
                position = Point(rng.random(), rng.random())
                if index.partitioner.shard_of(position) == 1:
                    return ("update", oid, position)

        pre = [move_within_shard_1(oid) for oid in local[:6]]
        post = [move_within_shard_1(oid) for oid in local[6:]]
        for _kind, oid, position in pre:
            index.update(oid, position)
        index.set_strategy("LBU", shard_id=1)
        for _kind, oid, position in post:
            index.update(oid, position)
        index.durability.flush()
        index.detach_durability()

        victim = shard_log_paths(tmp_path / "wal")[1]
        offsets = frame_boundaries(victim)
        switch_at = switch_frame_index(victim, len(pre))

        mid_switch = (offsets[switch_at] + offsets[switch_at + 1]) // 2
        cases = [
            (offsets[-1], "LBU", pre + post),
            (offsets[switch_at + 1], "LBU", pre),
            (mid_switch, "NAIVE", pre),
            (offsets[switch_at], "NAIVE", pre),
        ]
        for cut_at, expected_strategy, intact in sorted(cases, reverse=True):
            with open(victim, "r+b") as handle:
                handle.truncate(cut_at)
            recovered = load_index(tmp_path / "wal" / "checkpoint.json")
            assert recovered.shards[1].active_strategy == expected_strategy
            assert recovered.shards[0].active_strategy == "NAIVE"
            assert recovered.active_strategies() == [
                "NAIVE",
                expected_strategy,
            ]
            assert_recovered_state(
                recovered, apply_script(dict(baseline), intact)
            )
            recovered.detach_durability()


# Pristine single-index scenario shared by every Hypothesis example: the
# checkpoint text, the full log bytes, and the operation script.
@pytest.fixture(scope="module")
def pristine_scenario():
    root = Path(tempfile.mkdtemp(prefix="crash-prop-"))
    try:
        baseline, script = build_single(root, "GBU", objects=60, seed=13)
        wal = root / "wal"
        log_bytes = shard_log_paths(wal)[0].read_bytes()
        yield {
            "checkpoint": (wal / "checkpoint.json").read_text(),
            "log_bytes": log_bytes,
            "offsets": frame_boundaries(shard_log_paths(wal)[0]),
            "baseline": baseline,
            "script": script,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


class TestArbitraryCrashOffsets:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_any_truncation_recovers_a_prefix(self, pristine_scenario, fraction):
        scenario = pristine_scenario
        cut_at = int(fraction * len(scenario["log_bytes"]))
        intact_ops = max(
            count
            for count, offset in enumerate(scenario["offsets"])
            if offset <= cut_at
        )
        stage = Path(tempfile.mkdtemp(prefix="crash-prop-case-"))
        try:
            wal = stage / "wal"
            wal.mkdir()
            # The checkpoint embeds its durability directory; point the copy
            # at the staged logs so recovery replays the truncated file.
            document = json.loads(scenario["checkpoint"])
            document["durability"]["dir"] = str(wal)
            (wal / "checkpoint.json").write_text(json.dumps(document))
            (wal / "shard-0000.wal").write_bytes(scenario["log_bytes"][:cut_at])
            recovered = load_index(wal / "checkpoint.json")
            expected = apply_script(
                dict(scenario["baseline"]), scenario["script"][:intact_ops]
            )
            assert_recovered_state(recovered, expected)
            recovered.detach_durability()
        finally:
            shutil.rmtree(stage, ignore_errors=True)
