"""Unit tests for :class:`repro.storage.buffer.BufferPool`."""

import pytest

from repro.storage import BufferPool, DiskManager, IOStatistics


def make_stack(capacity: int):
    stats = IOStatistics()
    disk = DiskManager(page_size=128, stats=stats)
    pool = BufferPool(disk, capacity=capacity, stats=stats)
    return stats, disk, pool


class TestUnbuffered:
    def test_every_access_is_physical(self):
        stats, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.write(page, "a")
        pool.read(page)
        pool.read(page)
        assert stats.physical_writes == 1
        assert stats.physical_reads == 2
        assert stats.buffer_hits == 0

    def test_write_is_immediately_visible_on_disk(self):
        _, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.write(page, "payload")
        assert disk.peek(page) == "payload"


class TestBuffered:
    def test_repeated_reads_hit_the_buffer(self):
        stats, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "a")
        pool.read(page)
        pool.read(page)
        pool.read(page)
        assert stats.physical_reads == 1
        assert stats.buffer_hits == 2

    def test_writes_are_absorbed_until_eviction(self):
        stats, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "original")
        physical_writes_before = stats.physical_writes
        pool.write(page, "updated")
        assert stats.physical_writes == physical_writes_before  # write-back
        assert pool.read(page) == "updated"  # served from the pool

    def test_dirty_eviction_writes_back(self):
        stats, disk, pool = make_stack(capacity=1)
        a, b = disk.allocate_page(), disk.allocate_page()
        disk.write_page(a, "a0")
        disk.write_page(b, "b0")
        pool.write(a, "a1")     # dirty frame for a
        pool.read(b)            # evicts a, forcing the write-back
        assert disk.peek(a) == "a1"
        assert stats.dirty_evictions == 1

    def test_lru_eviction_order(self):
        _, disk, pool = make_stack(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        for page, value in ((a, "a"), (b, "b"), (c, "c")):
            disk.write_page(page, value)
        pool.read(a)
        pool.read(b)
        pool.read(a)          # a is now most recently used
        pool.read(c)          # evicts b
        assert set(pool.resident_pages()) == {a, c}

    def test_flush_writes_all_dirty_frames(self):
        _, disk, pool = make_stack(capacity=4)
        pages = [disk.allocate_page() for _ in range(3)]
        for page in pages:
            disk.write_page(page, "orig")
            pool.write(page, f"new{page}")
        written = pool.flush()
        assert written == 3
        for page in pages:
            assert disk.peek(page) == f"new{page}"

    def test_clear_empties_the_pool(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        pool.read(page)
        pool.clear()
        assert len(pool) == 0

    def test_discard_drops_dirty_frame_without_writeback(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "original")
        pool.write(page, "doomed")
        pool.discard(page)
        pool.flush()
        assert disk.peek(page) == "original"

    def test_negative_capacity_rejected(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=-1)

    def test_dirty_count(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        assert pool.dirty_count == 0
        pool.write(page, "y")
        assert pool.dirty_count == 1


class TestSizing:
    def test_for_percentage_computes_capacity(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 10.0, database_pages=200, stats=stats)
        assert pool.capacity == 20

    def test_for_percentage_rounds_up_to_one_page(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 1.0, database_pages=10, stats=stats)
        assert pool.capacity == 1

    def test_for_percentage_zero_disables_buffering(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 0.0, database_pages=1000, stats=stats)
        assert pool.capacity == 0

    def test_for_percentage_negative_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferPool.for_percentage(disk, -1.0, database_pages=10)


class TestAccessLog:
    def test_accesses_recorded_only_inside_the_context(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        with pool.logged_accesses() as log:
            pool.read(page)
            pool.write(page, "y")
        pool.read(page)  # after the block: not recorded
        assert log == [("read", page), ("write", page)]
        assert not pool.is_logging_accesses

    def test_log_detached_even_on_exception(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        with pytest.raises(RuntimeError):
            with pool.logged_accesses():
                pool.read(page)
                raise RuntimeError("boom")
        assert not pool.is_logging_accesses

    def test_nested_logs_see_only_their_own_accesses(self):
        _, disk, pool = make_stack(capacity=2)
        first = disk.allocate_page()
        second = disk.allocate_page()
        disk.write_page(first, "a")
        disk.write_page(second, "b")
        with pool.logged_accesses() as outer:
            pool.read(first)
            with pool.logged_accesses() as inner:
                pool.read(second)
        assert outer == [("read", first)]
        assert inner == [("read", second)]


class TestClientIOAccounting:
    def test_physical_io_attributed_to_active_client(self):
        stats, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.set_active_client("alice")
        pool.write(page, "a")
        pool.read(page)
        pool.set_active_client(None)
        pool.read(page)  # unattributed
        alice = pool.client_io("alice")
        assert alice.physical_reads == 1
        assert alice.physical_writes == 1
        assert alice.total == 2
        assert stats.physical_reads == 2  # global counters unaffected

    def test_buffer_hits_cost_clients_nothing(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "a")
        pool.set_active_client(7)
        pool.read(page)  # miss: one physical read
        pool.read(page)  # hit: free
        pool.set_active_client(None)
        assert pool.client_io(7).physical_reads == 1

    def test_eviction_writeback_charged_to_evicting_client(self):
        _, disk, pool = make_stack(capacity=1)
        first = disk.allocate_page()
        second = disk.allocate_page()
        disk.write_page(first, "a")
        disk.write_page(second, "b")
        pool.set_active_client("writer")
        pool.write(first, "a2")  # dirty frame
        pool.set_active_client("evictor")
        pool.read(second)  # evicts the dirty frame
        pool.set_active_client(None)
        assert pool.client_io("evictor").physical_writes == 1
        assert pool.client_io("writer").physical_writes == 0

    def test_reset_and_table_copy(self):
        _, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.set_active_client(1)
        pool.write(page, "a")
        pool.set_active_client(None)
        table = pool.client_io_table()
        assert table[1].physical_writes == 1
        table[1].physical_writes = 99  # mutating the copy changes nothing
        assert pool.client_io(1).physical_writes == 1
        pool.reset_client_io()
        assert pool.client_io(1).total == 0


class TestPeek:
    def test_peek_sees_writeback_frames_before_the_disk_does(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        pool.write(page, "buffered-only")
        assert disk.peek(page) is None  # write-back: not on disk yet
        assert pool.peek(page) == "buffered-only"

    def test_peek_falls_back_to_disk(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "on-disk")
        assert pool.peek(page) == "on-disk"


class TestPinOverrun:
    def test_fully_pinned_pool_runs_over_and_records_the_peak(self):
        stats, disk, pool = make_stack(capacity=2)
        pages = [disk.allocate_page() for _ in range(3)]
        for page in pages:
            disk.write_page(page, f"p{page}")
        pool.read(pages[0])
        pool.read(pages[1])
        pool.pin(pages[0])
        pool.pin(pages[1])
        # Every frame is pinned: admitting one more must not deadlock and
        # must not evict a pinned frame — the pool runs over capacity.
        pool.read(pages[2])
        assert len(pool) == 3
        assert pool.resident_pages()[:2] == [pages[0], pages[1]]
        assert stats.over_capacity_peak == 1

    def test_unpin_shrinks_the_pool_back_to_capacity(self):
        stats, disk, pool = make_stack(capacity=2)
        pages = [disk.allocate_page() for _ in range(3)]
        for page in pages:
            disk.write_page(page, f"p{page}")
        pool.read(pages[0])
        pool.read(pages[1])
        pool.pin(pages[0])
        pool.pin(pages[1])
        pool.read(pages[2])
        assert len(pool) == 3
        pool.unpin(pages[0])
        # The release itself reclaims the excess frame (LRU-first among the
        # unpinned), instead of waiting for some later admission.
        assert len(pool) == 2
        assert not pool.is_pinned(pages[0])

    def test_unpin_shrink_writes_back_dirty_overflow(self):
        stats, disk, pool = make_stack(capacity=1)
        a, b = disk.allocate_page(), disk.allocate_page()
        disk.write_page(a, "a0")
        disk.write_page(b, "b0")
        pool.write(a, "a1")
        pool.pin(a)
        pool.write(b, "b1")  # over capacity: a is pinned
        assert len(pool) == 2
        assert stats.over_capacity_peak == 1
        pool.unpin(a)
        assert len(pool) == 1
        assert disk.peek(a) == "a1"  # the dirty evictee was written back

    def test_nested_pins_keep_the_page_protected(self):
        stats, disk, pool = make_stack(capacity=1)
        a, b = disk.allocate_page(), disk.allocate_page()
        disk.write_page(a, "a0")
        disk.write_page(b, "b0")
        pool.read(a)
        pool.pin(a)
        pool.pin(a)
        pool.read(b)
        pool.unpin(a)  # still pinned once: the overflow frame b is evicted
        assert len(pool) == 1
        assert pool.resident_pages() == [a]
        pool.unpin(a)
        assert not pool.is_pinned(a)
