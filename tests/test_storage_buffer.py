"""Unit tests for :class:`repro.storage.buffer.BufferPool`."""

import pytest

from repro.storage import BufferPool, DiskManager, IOStatistics


def make_stack(capacity: int):
    stats = IOStatistics()
    disk = DiskManager(page_size=128, stats=stats)
    pool = BufferPool(disk, capacity=capacity, stats=stats)
    return stats, disk, pool


class TestUnbuffered:
    def test_every_access_is_physical(self):
        stats, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.write(page, "a")
        pool.read(page)
        pool.read(page)
        assert stats.physical_writes == 1
        assert stats.physical_reads == 2
        assert stats.buffer_hits == 0

    def test_write_is_immediately_visible_on_disk(self):
        _, disk, pool = make_stack(capacity=0)
        page = disk.allocate_page()
        pool.write(page, "payload")
        assert disk.peek(page) == "payload"


class TestBuffered:
    def test_repeated_reads_hit_the_buffer(self):
        stats, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "a")
        pool.read(page)
        pool.read(page)
        pool.read(page)
        assert stats.physical_reads == 1
        assert stats.buffer_hits == 2

    def test_writes_are_absorbed_until_eviction(self):
        stats, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "original")
        physical_writes_before = stats.physical_writes
        pool.write(page, "updated")
        assert stats.physical_writes == physical_writes_before  # write-back
        assert pool.read(page) == "updated"  # served from the pool

    def test_dirty_eviction_writes_back(self):
        stats, disk, pool = make_stack(capacity=1)
        a, b = disk.allocate_page(), disk.allocate_page()
        disk.write_page(a, "a0")
        disk.write_page(b, "b0")
        pool.write(a, "a1")     # dirty frame for a
        pool.read(b)            # evicts a, forcing the write-back
        assert disk.peek(a) == "a1"
        assert stats.dirty_evictions == 1

    def test_lru_eviction_order(self):
        _, disk, pool = make_stack(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        for page, value in ((a, "a"), (b, "b"), (c, "c")):
            disk.write_page(page, value)
        pool.read(a)
        pool.read(b)
        pool.read(a)          # a is now most recently used
        pool.read(c)          # evicts b
        assert set(pool.resident_pages()) == {a, c}

    def test_flush_writes_all_dirty_frames(self):
        _, disk, pool = make_stack(capacity=4)
        pages = [disk.allocate_page() for _ in range(3)]
        for page in pages:
            disk.write_page(page, "orig")
            pool.write(page, f"new{page}")
        written = pool.flush()
        assert written == 3
        for page in pages:
            assert disk.peek(page) == f"new{page}"

    def test_clear_empties_the_pool(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        pool.read(page)
        pool.clear()
        assert len(pool) == 0

    def test_discard_drops_dirty_frame_without_writeback(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "original")
        pool.write(page, "doomed")
        pool.discard(page)
        pool.flush()
        assert disk.peek(page) == "original"

    def test_negative_capacity_rejected(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=-1)

    def test_dirty_count(self):
        _, disk, pool = make_stack(capacity=4)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        assert pool.dirty_count == 0
        pool.write(page, "y")
        assert pool.dirty_count == 1


class TestSizing:
    def test_for_percentage_computes_capacity(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 10.0, database_pages=200, stats=stats)
        assert pool.capacity == 20

    def test_for_percentage_rounds_up_to_one_page(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 1.0, database_pages=10, stats=stats)
        assert pool.capacity == 1

    def test_for_percentage_zero_disables_buffering(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        pool = BufferPool.for_percentage(disk, 0.0, database_pages=1000, stats=stats)
        assert pool.capacity == 0

    def test_for_percentage_negative_rejected(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferPool.for_percentage(disk, -1.0, database_pages=10)


class TestAccessLog:
    def test_accesses_recorded_when_log_attached(self):
        _, disk, pool = make_stack(capacity=2)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        log = []
        pool.access_log = log
        pool.read(page)
        pool.write(page, "y")
        pool.access_log = None
        pool.read(page)
        assert log == [("read", page), ("write", page)]
