"""Tests for the DGL protocol layer."""

from repro.concurrency import DGLProtocol, LockMode
from repro.concurrency.dgl import EXTERNAL_GRANULE


class TestGranuleBookkeeping:
    def test_register_and_forget_leaves(self):
        protocol = DGLProtocol()
        protocol.register_leaf(5)
        assert protocol.is_leaf_granule(5)
        protocol.forget_leaf(5)
        assert not protocol.is_leaf_granule(5)


class TestUpdateRequests:
    def test_written_leaves_locked_exclusively(self):
        protocol = DGLProtocol(leaf_pages={1, 2, 3})
        requests = protocol.requests_for_update(pages_read=[1, 10], pages_written=[2])
        modes = {request.granule: request.mode for request in requests}
        assert modes[2] == LockMode.EXCLUSIVE
        assert modes[1] == LockMode.SHARED
        assert 10 not in modes  # internal pages are not leaf granules

    def test_written_leaf_not_also_locked_shared(self):
        protocol = DGLProtocol(leaf_pages={1})
        requests = protocol.requests_for_update(pages_read=[1], pages_written=[1])
        granule_modes = [(r.granule, r.mode) for r in requests if r.granule == 1]
        assert granule_modes == [(1, LockMode.EXCLUSIVE)]

    def test_update_without_leaf_writes_locks_external_granule(self):
        protocol = DGLProtocol(leaf_pages={1, 2})
        requests = protocol.requests_for_update(pages_read=[7], pages_written=[9])
        granules = {request.granule for request in requests}
        assert EXTERNAL_GRANULE in granules

    def test_update_with_leaf_writes_does_not_lock_external(self):
        protocol = DGLProtocol(leaf_pages={1})
        requests = protocol.requests_for_update(pages_read=[], pages_written=[1])
        granules = {request.granule for request in requests}
        assert EXTERNAL_GRANULE not in granules

    def test_tree_granule_gets_intention_exclusive(self):
        protocol = DGLProtocol(leaf_pages={1})
        requests = protocol.requests_for_update(pages_read=[], pages_written=[1])
        modes = {request.granule: request.mode for request in requests}
        assert modes[DGLProtocol.TREE_GRANULE] == LockMode.INTENTION_EXCLUSIVE

    def test_intention_tagging_can_be_disabled(self):
        protocol = DGLProtocol(leaf_pages={1}, lock_internal_as_intention=False)
        requests = protocol.requests_for_update(pages_read=[], pages_written=[1])
        assert DGLProtocol.TREE_GRANULE not in {request.granule for request in requests}


class TestQueryRequests:
    def test_query_locks_leaves_shared(self):
        protocol = DGLProtocol(leaf_pages={1, 2, 3})
        requests = protocol.requests_for_query(pages_read=[1, 3, 7])
        modes = {request.granule: request.mode for request in requests}
        assert modes[1] == LockMode.SHARED
        assert modes[3] == LockMode.SHARED
        assert 7 not in modes

    def test_query_gets_intention_shared_on_tree_granule(self):
        protocol = DGLProtocol(leaf_pages={1})
        requests = protocol.requests_for_query(pages_read=[1])
        modes = {request.granule: request.mode for request in requests}
        assert modes[DGLProtocol.TREE_GRANULE] == LockMode.INTENTION_SHARED

    def test_as_pairs(self):
        protocol = DGLProtocol(leaf_pages={1})
        requests = protocol.requests_for_query(pages_read=[1])
        pairs = DGLProtocol.as_pairs(requests)
        assert (1, LockMode.SHARED) in pairs


class TestCompatibilityScenarios:
    def test_bottom_up_update_conflicts_with_query_on_same_leaf(self):
        """The consistency argument of Section 3.2.2: a query's shared lock
        on a leaf granule and an update's exclusive lock collide."""
        from repro.concurrency import LockManager

        protocol = DGLProtocol(leaf_pages={1, 2})
        manager = LockManager()
        update_requests = protocol.requests_for_update(pages_read=[], pages_written=[1])
        query_requests = protocol.requests_for_query(pages_read=[1, 2])
        assert manager.try_acquire_all(DGLProtocol.as_pairs(update_requests), owner="updater")
        assert not manager.try_acquire_all(DGLProtocol.as_pairs(query_requests), owner="reader")

    def test_operations_on_disjoint_leaves_do_not_conflict(self):
        from repro.concurrency import LockManager

        protocol = DGLProtocol(leaf_pages={1, 2})
        manager = LockManager()
        first = protocol.requests_for_update(pages_read=[], pages_written=[1])
        second = protocol.requests_for_update(pages_read=[], pages_written=[2])
        assert manager.try_acquire_all(DGLProtocol.as_pairs(first), owner="a")
        assert manager.try_acquire_all(DGLProtocol.as_pairs(second), owner="b")
