"""Tests of top-down insertion, deletion, condensing and splits."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import QuadraticSplit, RTree, validate_tree
from repro.rtree.validation import ValidationError
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout

from tests.conftest import SMALL_PAGE_SIZE, make_points


def make_tree(**kwargs) -> RTree:
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    pool = BufferPool(disk, capacity=0, stats=stats)
    return RTree(pool, layout=PageLayout(page_size=SMALL_PAGE_SIZE), **kwargs)


class TestInsertion:
    def test_insert_increases_size(self):
        tree = make_tree()
        tree.insert(1, Point(0.5, 0.5))
        assert len(tree) == 1

    def test_insert_is_findable_by_point_query(self):
        tree = make_tree()
        tree.insert(1, Point(0.25, 0.75))
        assert tree.point_query(Point(0.25, 0.75)) == [1]

    def test_inserting_beyond_capacity_splits_the_root(self):
        tree = make_tree()
        for oid, point in make_points(tree.leaf_capacity + 1):
            tree.insert(oid, point)
        assert tree.height == 2
        validate_tree(tree, expected_size=tree.leaf_capacity + 1)

    def test_many_inserts_keep_structure_valid(self):
        tree = make_tree()
        for oid, point in make_points(500):
            tree.insert(oid, point)
        stats = validate_tree(tree, expected_size=500)
        assert stats["height"] >= 3

    def test_rect_objects_can_be_indexed(self):
        tree = make_tree()
        tree.insert(1, Rect(0.1, 0.1, 0.2, 0.2))
        tree.insert(2, Rect(0.7, 0.7, 0.9, 0.9))
        assert sorted(tree.range_query(Rect(0.0, 0.0, 0.5, 0.5))) == [1]

    def test_clustered_inserts_remain_valid(self):
        tree = make_tree()
        rng = random.Random(5)
        for oid in range(300):
            tree.insert(oid, Point(0.5 + rng.uniform(-0.01, 0.01), 0.5 + rng.uniform(-0.01, 0.01)))
        validate_tree(tree, expected_size=300)

    def test_duplicate_positions_allowed(self):
        tree = make_tree()
        for oid in range(40):
            tree.insert(oid, Point(0.5, 0.5))
        assert sorted(tree.point_query(Point(0.5, 0.5))) == list(range(40))
        validate_tree(tree, expected_size=40)


class TestDeletion:
    def test_delete_removes_object(self):
        tree = make_tree()
        tree.insert(1, Point(0.5, 0.5))
        assert tree.delete(1, Point(0.5, 0.5))
        assert tree.point_query(Point(0.5, 0.5)) == []
        assert len(tree) == 0

    def test_delete_missing_object_returns_false(self):
        tree = make_tree()
        tree.insert(1, Point(0.5, 0.5))
        assert not tree.delete(2, Point(0.5, 0.5))
        assert len(tree) == 1

    def test_delete_all_objects_empties_tree(self):
        tree = make_tree()
        points = make_points(120)
        for oid, point in points:
            tree.insert(oid, point)
        for oid, point in points:
            assert tree.delete(oid, point)
        assert len(tree) == 0
        assert tree.range_query(Rect.unit()) == []

    def test_delete_shrinks_height_when_possible(self):
        tree = make_tree()
        points = make_points(400)
        for oid, point in points:
            tree.insert(oid, point)
        tall = tree.height
        for oid, point in points[:380]:
            tree.delete(oid, point)
        validate_tree(tree, expected_size=20)
        assert tree.height <= tall

    def test_interleaved_inserts_and_deletes_stay_valid(self):
        tree = make_tree()
        rng = random.Random(9)
        live = {}
        next_oid = 0
        for step in range(800):
            if live and rng.random() < 0.4:
                oid = rng.choice(list(live))
                assert tree.delete(oid, live.pop(oid))
            else:
                point = Point(rng.random(), rng.random())
                tree.insert(next_oid, point)
                live[next_oid] = point
                next_oid += 1
        validate_tree(tree, expected_size=len(live))
        window = Rect(0.2, 0.2, 0.8, 0.8)
        expected = sorted(oid for oid, p in live.items() if window.contains_point(p))
        assert sorted(tree.range_query(window)) == expected

    def test_delete_without_reinsertion_leaves_sparse_nodes(self):
        tree = make_tree(reinsert_on_underflow=False)
        points = make_points(200)
        for oid, point in points:
            tree.insert(oid, point)
        for oid, point in points[:150]:
            tree.delete(oid, point)
        # min-fill check must fail for at least the root path to be lenient;
        # structural containment must still hold.
        validate_tree(tree, check_min_fill=False, expected_size=50)

    def test_delete_from_leaf_requires_membership(self):
        tree = make_tree()
        tree.insert(1, Point(0.5, 0.5))
        leaf = tree.read_node(tree.root_page_id)
        with pytest.raises(LookupError):
            tree.delete_from_leaf(99, leaf, parent_path=[])


class TestParentPointers:
    def test_parent_pointers_maintained_through_inserts(self):
        tree = make_tree(store_parent_pointers=True)
        for oid, point in make_points(400):
            tree.insert(oid, point)
        validate_tree(tree, expected_size=400)  # includes the pointer check

    def test_parent_pointers_maintained_through_deletes(self):
        tree = make_tree(store_parent_pointers=True)
        points = make_points(400)
        for oid, point in points:
            tree.insert(oid, point)
        for oid, point in points[::2]:
            tree.delete(oid, point)
        validate_tree(tree, expected_size=200)

    def test_parent_pointer_mode_reduces_leaf_capacity(self):
        plain = make_tree(store_parent_pointers=False)
        with_pointers = make_tree(store_parent_pointers=True)
        assert with_pointers.leaf_capacity <= plain.leaf_capacity

    def test_parent_pointer_maintenance_costs_extra_io(self):
        """Splitting level-1 nodes must rewrite moved leaves (LBU's overhead)."""
        plain = make_tree(store_parent_pointers=False)
        with_pointers = make_tree(store_parent_pointers=True)
        for tree in (plain, with_pointers):
            for oid, point in make_points(500):
                tree.insert(oid, point)
        assert (
            with_pointers.disk.stats.physical_writes
            > plain.disk.stats.physical_writes
        )


class TestInsertAtSubtree:
    def test_insert_at_root_equivalent_to_insert(self):
        tree = make_tree()
        for oid, point in make_points(200):
            tree.insert(oid, point)
        tree.insert_at_subtree(9999, Point(0.5, 0.5), anchor_page_id=tree.root_page_id)
        assert 9999 in tree.range_query(Rect(0.45, 0.45, 0.55, 0.55))
        validate_tree(tree, expected_size=201)

    def test_insert_below_internal_anchor(self):
        tree = make_tree()
        for oid, point in make_points(300):
            tree.insert(oid, point)
        root = tree.peek_node(tree.root_page_id)
        anchor_entry = root.entries[0]
        target = anchor_entry.rect.center()
        tree.insert_at_subtree(
            7777, target, anchor_page_id=anchor_entry.child, ancestor_path=[tree.root_page_id]
        )
        assert 7777 in tree.point_query(target)
        validate_tree(tree, expected_size=301)

    def test_split_propagates_through_ancestor_path(self):
        """Filling a subtree through insert_at_subtree must propagate splits
        above the anchor using the supplied ancestor path."""
        tree = make_tree()
        for oid, point in make_points(300):
            tree.insert(oid, point)
        root = tree.peek_node(tree.root_page_id)
        anchor_entry = root.entries[0]
        target = anchor_entry.rect.center()
        for extra in range(200):
            tree.insert_at_subtree(
                10_000 + extra,
                target,
                anchor_page_id=anchor_entry.child,
                ancestor_path=[tree.root_page_id],
            )
        validate_tree(tree, expected_size=500)

    def test_descending_to_wrong_level_is_rejected(self):
        tree = make_tree()
        for oid, point in make_points(100):
            tree.insert(oid, point)
        leaf = next(iter(tree.leaf_nodes()))
        with pytest.raises(ValueError):
            tree._choose_path(Rect.from_point(Point(0.5, 0.5)), target_level=3, start_page_id=leaf.page_id)


class TestTraversalHelpers:
    def test_iter_nodes_visits_every_node_once(self):
        tree = make_tree()
        for oid, point in make_points(250):
            tree.insert(oid, point)
        pages = [node.page_id for node, _ in tree.iter_nodes()]
        assert len(pages) == len(set(pages))
        counts = tree.node_count()
        assert len(pages) == counts["leaf"] + counts["internal"]

    def test_node_count_and_leaf_iteration_agree(self):
        tree = make_tree()
        for oid, point in make_points(250):
            tree.insert(oid, point)
        assert sum(1 for _ in tree.leaf_nodes()) == tree.node_count()["leaf"]
        assert sum(1 for _ in tree.internal_nodes()) == tree.node_count()["internal"]

    def test_root_mbr_none_for_empty_tree(self):
        assert make_tree().root_mbr() is None

    def test_root_mbr_covers_all_points(self):
        tree = make_tree()
        points = make_points(100)
        for oid, point in points:
            tree.insert(oid, point)
        mbr = tree.root_mbr()
        for _oid, point in points:
            assert mbr.contains_point(point)

    def test_validation_detects_corruption(self):
        tree = make_tree()
        for oid, point in make_points(150):
            tree.insert(oid, point)
        # Corrupt a parent entry MBR directly.
        root = tree.peek_node(tree.root_page_id)
        root.entries[0].rect = Rect(0.0, 0.0, 1e-6, 1e-6)
        with pytest.raises(ValidationError):
            validate_tree(tree)

    def test_repr_mentions_size_and_height(self):
        tree = make_tree()
        for oid, point in make_points(50):
            tree.insert(oid, point)
        text = repr(tree)
        assert "size=50" in text
        assert "height=" in text
