"""Tests for the :class:`repro.core.index.MovingObjectIndex` facade."""

import random

import pytest

from repro.api import UnknownObjectError
from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.update import UpdateOutcome

from tests.conftest import SMALL_PAGE_SIZE, make_points


def fresh_index(strategy="GBU", **overrides):
    return MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE, **overrides))


class TestLoading:
    def test_bulk_load_populates_index(self):
        index = fresh_index()
        index.load(make_points(300))
        assert len(index) == 300
        assert index.validate()["objects"] == 300

    def test_bulk_load_resets_io_counters(self):
        index = fresh_index()
        index.load(make_points(300))
        assert index.stats.total_physical_io == 0

    def test_incremental_load(self):
        index = fresh_index()
        index.load(make_points(150), bulk=False)
        assert len(index) == 150
        index.validate()

    def test_bulk_load_twice_rejected(self):
        index = fresh_index()
        index.load(make_points(50))
        with pytest.raises(ValueError):
            index.load(make_points(50))

    def test_buffer_sized_from_database(self):
        index = fresh_index(buffer_percent=10.0)
        index.load(make_points(500))
        assert index.buffer.capacity >= 1
        unbuffered = fresh_index(buffer_percent=0.0)
        unbuffered.load(make_points(500))
        assert unbuffered.buffer.capacity == 0

    def test_configure_buffer_can_be_resized_later(self):
        index = fresh_index(buffer_percent=0.0)
        index.load(make_points(400))
        index.configure_buffer(percent=5.0)
        assert index.buffer.capacity >= 1


class TestDataOperations:
    def test_insert_update_delete_roundtrip(self):
        index = fresh_index()
        index.load(make_points(100))
        index.insert(1_000, Point(0.5, 0.5))
        assert 1_000 in index
        index.update(1_000, Point(0.6, 0.6))
        assert index.position_of(1_000) == Point(0.6, 0.6)
        assert index.delete(1_000)
        assert 1_000 not in index
        with pytest.raises(UnknownObjectError):
            index.delete(1_000)
        assert not index.delete(1_000, strict=False)

    def test_inserting_duplicate_oid_rejected(self):
        index = fresh_index()
        index.load(make_points(10))
        with pytest.raises(ValueError):
            index.insert(3, Point(0.9, 0.9))

    def test_updating_unknown_oid_rejected(self):
        index = fresh_index()
        index.load(make_points(10))
        with pytest.raises(KeyError):
            index.update(999, Point(0.5, 0.5))

    def test_update_returns_outcome(self):
        index = fresh_index()
        index.load(make_points(200))
        outcome = index.update(5, Point(0.99, 0.01))
        assert isinstance(outcome, UpdateOutcome)

    def test_range_query_and_knn(self):
        index = fresh_index()
        points = make_points(300)
        index.load(points)
        window = Rect(0.2, 0.2, 0.5, 0.6)
        expected = sorted(oid for oid, p in points if window.contains_point(p))
        assert sorted(index.range_query(window)) == expected
        nearest = index.knn(Point(0.5, 0.5), 5)
        assert len(nearest) == 5
        assert nearest == sorted(nearest)

    def test_position_of_unknown_object_is_none(self):
        index = fresh_index()
        index.load(make_points(10))
        assert index.position_of(404) is None


class TestStatisticsAndIntegrity:
    def test_io_snapshot_is_a_copy(self):
        index = fresh_index()
        index.load(make_points(200))
        index.update(0, Point(0.4, 0.4))
        snapshot = index.io_snapshot()
        index.update(1, Point(0.6, 0.6))
        assert index.stats.total_physical_io >= snapshot.total_physical_io

    def test_reset_statistics_clears_io_and_outcomes(self):
        index = fresh_index()
        index.load(make_points(200))
        index.update(0, Point(0.4, 0.4))
        index.reset_statistics()
        assert index.stats.total_physical_io == 0
        assert index.strategy.update_count == 0

    def test_validate_detects_hash_corruption(self):
        index = fresh_index()
        index.load(make_points(100))
        index.hash_index._leaf_of[0] = 999_999
        with pytest.raises(AssertionError):
            index.validate()

    def test_describe_mentions_strategy_and_size(self):
        index = fresh_index(strategy="LBU")
        index.load(make_points(120))
        text = index.describe()
        assert "LBU" in text
        assert "objects=120" in text

    def test_every_strategy_facade_round_trips(self):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            index = fresh_index(strategy=strategy)
            index.load(make_points(150, seed=9))
            rng = random.Random(1)
            for _ in range(200):
                index.update(rng.randrange(150), Point(rng.random(), rng.random()))
            index.validate()

    def test_summary_only_built_for_gbu(self):
        assert fresh_index(strategy="GBU").summary is not None
        assert fresh_index(strategy="TD").summary is None
        assert fresh_index(strategy="LBU").summary is None

    def test_charge_hash_io_can_be_disabled(self):
        index = fresh_index(charge_hash_io=False)
        index.load(make_points(100))
        index.update(0, Point(0.2, 0.2))
        assert index.stats.hash_index_reads == 0


class TestKnnEdgeCases:
    """Facade-level kNN edge cases: empty tree, k > population, ties."""

    def test_knn_on_empty_index(self):
        index = fresh_index()
        assert index.knn(Point(0.5, 0.5), 3) == []

    def test_knn_with_nonpositive_k(self):
        index = fresh_index()
        index.load(make_points(50))
        assert index.knn(Point(0.5, 0.5), 0) == []
        assert index.knn(Point(0.5, 0.5), -2) == []

    def test_knn_k_larger_than_population_returns_everything(self):
        index = fresh_index()
        points = make_points(40)
        index.load(points)
        nearest = index.knn(Point(0.5, 0.5), 1_000)
        assert len(nearest) == 40
        assert {oid for _dist, oid in nearest} == {oid for oid, _p in points}
        distances = [dist for dist, _oid in nearest]
        assert distances == sorted(distances)

    def test_knn_equidistant_tie_breaking_is_deterministic(self):
        """Four candidates at the identical distance: the k cut must be the
        same set, in the same order, on every run (ties break by oid)."""
        index = fresh_index()
        corners = [
            (0, Point(0.4, 0.4)),
            (1, Point(0.6, 0.4)),
            (2, Point(0.4, 0.6)),
            (3, Point(0.6, 0.6)),
            (4, Point(0.9, 0.9)),  # strictly farther
        ]
        index.load(corners)
        first = index.knn(Point(0.5, 0.5), 2)
        second = index.knn(Point(0.5, 0.5), 2)
        assert first == second
        assert [oid for _dist, oid in first] == [0, 1]
        assert first[0][0] == pytest.approx(first[1][0])

    def test_knn_after_updates_reflects_new_positions(self):
        index = fresh_index()
        index.load(make_points(60))
        index.update(7, Point(0.501, 0.501))
        nearest = index.knn(Point(0.5, 0.5), 1)
        assert nearest[0][1] == 7
