"""The binary page store codec and the coordinate-precision contracts.

Two codecs, two contracts:

* the sizing-model codec (``serialize_node``/``deserialize_node``) stores
  4-byte coordinates by default — round trips quantize each value to the
  nearest binary32, **exactly** :func:`coordinate_quantum`, and become fully
  lossless with ``coordinate_size=8``;
* the live page-store codec (:class:`NodeCodec`) is always binary64 and
  must reproduce every node bit for bit, in both node layouts, because the
  index actually runs on what it decodes.
"""

import pytest

from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node, PackedNode
from repro.storage import PageLayout
from repro.storage.serialization import (
    NodeCodec,
    SerializationError,
    coordinate_quantum,
    deserialize_node,
    serialize_node,
    serialized_size,
)

# Coordinates deliberately not representable in binary32: 0.1's float64
# expansion, a tiny offset, and a value needing more than 24 mantissa bits.
LOSSY_COORDS = (0.1, 0.1 + 1e-12, 1.0 / 3.0, 0.7000000123456789)


def sample_node(cls=Node):
    node = cls(page_id=5, level=0, parent_page_id=17)
    node.add_entry(Entry(Rect(LOSSY_COORDS[0], LOSSY_COORDS[1], 0.5, 0.5), 7))
    node.add_entry(Entry(Rect(LOSSY_COORDS[2], 0.2, LOSSY_COORDS[3], 0.9), 8))
    node.stored_mbr = Rect(0.05, 0.05, 0.95, 0.95)
    return node


class TestSizingCodecQuantization:
    """The f32 format's loss is exactly one binary32 rounding per value."""

    def test_round_trip_equals_coordinate_quantum(self):
        layout = PageLayout(page_size=1024)
        node = sample_node()
        restored = deserialize_node(5, serialize_node(node, layout), layout)
        for original, copy in zip(node.entries, restored.entries):
            assert copy.rect.as_tuple() == tuple(
                coordinate_quantum(value) for value in original.rect.as_tuple()
            )

    def test_f32_representable_coordinates_are_exact(self):
        layout = PageLayout(page_size=1024)
        node = Node(page_id=1, level=0)
        node.add_entry(Entry(Rect(0.25, 0.5, 0.75, 1.0), 3))  # exact in binary32
        restored = deserialize_node(1, serialize_node(node, layout), layout)
        assert restored.entries[0].rect == Rect(0.25, 0.5, 0.75, 1.0)

    def test_lossy_coordinates_are_not_exact_in_f32(self):
        # Regression guard: this is the lossiness the f64 format fixes.
        assert coordinate_quantum(0.1) != 0.1
        layout = PageLayout(page_size=1024)
        node = Node(page_id=1, level=0, entries=[Entry(Rect(0.1, 0.1, 0.1, 0.1), 3)])
        restored = deserialize_node(1, serialize_node(node, layout), layout)
        assert restored.entries[0].rect != node.entries[0].rect

    def test_quantum_is_identity_for_f64(self):
        for value in LOSSY_COORDS:
            assert coordinate_quantum(value, coordinate_size=8) == value


class TestSizingCodecF64:
    """``coordinate_size=8`` switches the format to <4d> and is lossless."""

    def test_round_trip_is_bit_exact(self):
        layout = PageLayout(page_size=1024, coordinate_size=8)
        node = sample_node()
        restored = deserialize_node(5, serialize_node(node, layout), layout)
        assert [e.rect.as_tuple() for e in restored.entries] == [
            e.rect.as_tuple() for e in node.entries
        ]
        assert restored.parent_page_id == 17
        assert restored.stored_mbr == node.stored_mbr

    def test_sizing_model_still_honoured(self):
        layout = PageLayout(page_size=1024, coordinate_size=8)
        node = Node(
            page_id=1,
            level=0,
            entries=[
                Entry(Rect.from_point(Point(0.1, 0.2)), oid)
                for oid in range(layout.leaf_capacity())
            ],
        )
        image = serialize_node(node, layout)
        assert len(image) <= layout.page_size
        assert serialized_size(node, layout) == len(image)

    def test_unsupported_coordinate_size_rejected(self):
        layout = PageLayout(page_size=1024, coordinate_size=2)
        with pytest.raises(SerializationError):
            serialize_node(Node(page_id=1, level=0), layout)


class TestNodeCodecRoundTrip:
    @pytest.mark.parametrize("node_layout,cls", [("object", Node), ("packed", PackedNode)])
    def test_lossless_round_trip(self, node_layout, cls):
        codec = NodeCodec(node_layout=node_layout)
        node = sample_node(cls)
        restored = codec.decode(5, codec.encode(node))
        assert type(restored) is cls
        assert restored.level == 0
        assert restored.parent_page_id == 17
        assert restored.stored_mbr.as_tuple() == node.stored_mbr.as_tuple()
        assert restored.child_ids() == [7, 8]
        # Bit-exact: these coordinates are not binary32-representable.
        assert [e.rect.as_tuple() for e in restored.entries] == [
            e.rect.as_tuple() for e in node.entries
        ]

    def test_cross_layout_images_are_identical(self):
        object_image = NodeCodec(node_layout="object").encode(sample_node(Node))
        packed_image = NodeCodec(node_layout="packed").encode(sample_node(PackedNode))
        assert object_image == packed_image

    def test_decode_into_either_layout(self):
        image = NodeCodec(node_layout="object").encode(sample_node(Node))
        packed = NodeCodec(node_layout="packed").decode(5, image)
        assert isinstance(packed, PackedNode)
        assert [e.rect.as_tuple() for e in packed.entries] == [
            e.rect.as_tuple() for e in sample_node().entries
        ]

    def test_empty_node_round_trip(self):
        codec = NodeCodec(node_layout="packed")
        node = PackedNode(page_id=2, level=3)
        restored = codec.decode(2, codec.encode(node))
        assert restored.level == 3
        assert len(restored) == 0
        assert restored.parent_page_id is None
        assert restored.stored_mbr is None

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            NodeCodec(node_layout="rowwise")

    def test_truncated_image_rejected(self):
        codec = NodeCodec()
        image = codec.encode(sample_node())
        with pytest.raises(SerializationError):
            codec.decode(5, image[:-3])
        with pytest.raises(SerializationError):
            codec.decode(5, b"\x00\x01")

    def test_non_binary_payload_rejected(self):
        with pytest.raises(SerializationError):
            NodeCodec().decode(5, sample_node())


class TestBinaryPageStoreBehaviour:
    """Pages hold bytes; every logical read decodes a fresh node."""

    def build_tree(self, node_layout="packed"):
        from repro.storage import BufferPool, DiskManager, IOStatistics
        from repro.rtree import RTree

        stats = IOStatistics()
        disk = DiskManager(page_size=256, stats=stats)
        tree = RTree(
            BufferPool(disk, 0, stats),
            layout=PageLayout(page_size=256),
            node_layout=node_layout,
            page_codec=NodeCodec(node_layout=node_layout),
        )
        return tree, stats

    def test_disk_frames_hold_bytes(self):
        tree, _stats = self.build_tree()
        for oid in range(50):
            tree.insert(oid, Point(oid / 50.0, (oid * 7 % 50) / 50.0))
        assert isinstance(tree.disk.read_page(tree.root_page_id), bytes)
        assert isinstance(tree.encode_page_payload(tree.read_node(tree.root_page_id)), bytes)

    def test_reads_decode_fresh_nodes(self):
        tree, _stats = self.build_tree()
        tree.insert(1, Point(0.1, 0.1))
        first = tree.read_node(tree.root_page_id)
        second = tree.read_node(tree.root_page_id)
        assert first is not second  # no aliasing through the page store
        ref = first.find_entry(1)
        ref.rect = Rect(0.9, 0.9, 0.9, 0.9)  # mutation not written back...
        assert tree.read_node(tree.root_page_id).find_entry(1).rect == Rect(
            0.1, 0.1, 0.1, 0.1
        )  # ...is invisible to later reads

    def test_queries_after_mixed_updates(self):
        tree, _stats = self.build_tree()
        for oid in range(120):
            tree.insert(oid, Point((oid % 12) / 12.0, (oid // 12) / 10.0))
        for oid in range(0, 120, 3):
            tree.delete(oid, Rect.from_point(Point((oid % 12) / 12.0, (oid // 12) / 10.0)))
        survivors = sorted(tree.range_query(Rect(0.0, 0.0, 1.0, 1.0)))
        assert survivors == [oid for oid in range(120) if oid % 3 != 0]
