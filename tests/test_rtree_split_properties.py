"""Property-based tests for the split strategies.

The split is the only place where the R-tree redistributes entries, so its
correctness (partitioning, minimum fill) is load-bearing for every structural
invariant of the tree.
"""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect, union_all
from repro.rtree import Entry, LinearSplit, QuadraticSplit, RStarSplit

coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def entry_lists(draw, min_size=4, max_size=24):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    entries = []
    for oid in range(count):
        x = draw(coordinate)
        y = draw(coordinate)
        entries.append(Entry(Rect.from_point(Point(x, y)), oid))
    return entries


@st.composite
def split_cases(draw):
    entries = draw(entry_lists())
    min_entries = draw(st.integers(min_value=1, max_value=len(entries) // 2))
    return entries, min_entries


STRATEGIES = [QuadraticSplit(), LinearSplit(), RStarSplit()]


@settings(max_examples=60, deadline=None)
@given(split_cases())
def test_every_strategy_partitions_entries(case):
    entries, min_entries = case
    original_ids = sorted(entry.child for entry in entries)
    for strategy in STRATEGIES:
        group_a, group_b = strategy.split(list(entries), min_entries)
        assert sorted(e.child for e in group_a + group_b) == original_ids


@settings(max_examples=60, deadline=None)
@given(split_cases())
def test_every_strategy_respects_minimum_fill(case):
    entries, min_entries = case
    for strategy in STRATEGIES:
        group_a, group_b = strategy.split(list(entries), min_entries)
        assert len(group_a) >= min_entries
        assert len(group_b) >= min_entries


@settings(max_examples=60, deadline=None)
@given(split_cases())
def test_group_mbrs_cover_their_entries(case):
    entries, min_entries = case
    for strategy in STRATEGIES:
        for group in strategy.split(list(entries), min_entries):
            mbr = union_all(entry.rect for entry in group)
            for entry in group:
                assert mbr.contains_rect(entry.rect)


@settings(max_examples=60, deadline=None)
@given(split_cases())
def test_union_of_group_mbrs_equals_original_mbr(case):
    entries, min_entries = case
    original = union_all(entry.rect for entry in entries)
    for strategy in STRATEGIES:
        group_a, group_b = strategy.split(list(entries), min_entries)
        combined = union_all(e.rect for e in group_a).union(union_all(e.rect for e in group_b))
        assert combined == original


@settings(max_examples=60, deadline=None)
@given(split_cases())
def test_split_does_not_mutate_input_entries(case):
    entries, min_entries = case
    rect_snapshot = [entry.rect for entry in entries]
    child_snapshot = [entry.child for entry in entries]
    for strategy in STRATEGIES:
        strategy.split(list(entries), min_entries)
        assert [entry.rect for entry in entries] == rect_snapshot
        assert [entry.child for entry in entries] == child_snapshot
