"""Tests for the Section 4 analytical cost model."""

import math

import pytest

from repro.core import IndexConfig, MovingObjectIndex
from repro.cost import (
    BottomUpCostModel,
    TopDownCostModel,
    TreeShape,
    expected_query_node_accesses,
    window_overlap_probability,
)

from tests.conftest import SMALL_PAGE_SIZE, make_points


def measured_shape(count=800):
    index = MovingObjectIndex(IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE))
    index.load(make_points(count))
    return TreeShape.from_tree(index.tree), index


class TestLemmas:
    def test_lemma2_probability_formula(self):
        assert window_overlap_probability(0.1, 0.1, 0.2, 0.2) == pytest.approx(0.09)

    def test_lemma2_capped_at_one(self):
        assert window_overlap_probability(0.9, 0.9, 0.9, 0.9) == 1.0

    def test_lemma2_zero_windows(self):
        assert window_overlap_probability(0.0, 0.0, 0.0, 0.0) == 0.0

    def test_lemma2_rejects_negative_dimensions(self):
        with pytest.raises(ValueError):
            window_overlap_probability(-0.1, 0.1, 0.1, 0.1)

    def test_lemma2_monotone_in_window_size(self):
        small = window_overlap_probability(0.05, 0.05, 0.1, 0.1)
        large = window_overlap_probability(0.2, 0.2, 0.1, 0.1)
        assert large > small


class TestTreeShape:
    def test_shape_from_tree_counts_levels_and_nodes(self):
        shape, index = measured_shape()
        assert shape.height == index.tree.height
        counts = index.tree.node_count()
        assert shape.nodes_at_level(0) == counts["leaf"]
        assert sum(shape.nodes_at_level(level) for level in range(1, shape.height)) == counts[
            "internal"
        ]

    def test_average_leaf_extent_is_positive_and_small(self):
        shape, _ = measured_shape()
        width, height = shape.average_leaf_extent()
        assert 0 < width < 0.5
        assert 0 < height < 0.5

    def test_nodes_at_missing_level_is_zero(self):
        shape, _ = measured_shape()
        assert shape.nodes_at_level(99) == 0


class TestQueryCost:
    def test_expected_accesses_grow_with_window_size(self):
        shape, _ = measured_shape()
        small = expected_query_node_accesses(shape, 0.01, 0.01)
        large = expected_query_node_accesses(shape, 0.3, 0.3)
        assert large > small

    def test_expected_accesses_at_least_one_path(self):
        shape, _ = measured_shape()
        assert expected_query_node_accesses(shape, 0.05, 0.05) >= shape.height - 1

    def test_analytical_query_cost_tracks_measurement(self):
        """Theorem 1's estimate should be within a factor ~2.5 of the actual
        node accesses of a real query workload on the measured tree."""
        shape, index = measured_shape()
        import random

        from repro.geometry import Rect

        rng = random.Random(4)
        side = 0.1
        measured_reads = []
        for _ in range(60):
            cx, cy = rng.random(), rng.random()
            window = Rect(
                max(0, cx - side / 2),
                max(0, cy - side / 2),
                min(1, cx + side / 2),
                min(1, cy + side / 2),
            )
            before = index.stats.physical_reads
            index.tree.range_query(window)
            measured_reads.append(index.stats.physical_reads - before)
        measured_average = sum(measured_reads) / len(measured_reads)
        predicted = expected_query_node_accesses(shape, side, side)
        assert predicted / 2.5 <= measured_average <= predicted * 2.5


class TestUpdateCostModels:
    def test_top_down_best_case_formula(self):
        shape, _ = measured_shape()
        model = TopDownCostModel(shape)
        assert model.best_case_cost() == 2 * shape.height + 1

    def test_top_down_expected_cost_at_least_best_case_minus_overlap(self):
        shape, _ = measured_shape()
        model = TopDownCostModel(shape)
        assert model.update_cost() >= shape.height + 1

    def test_bottom_up_cost_increases_with_distance(self):
        shape, _ = measured_shape()
        model = BottomUpCostModel(shape)
        costs = [model.update_cost(d) for d in (0.0, 0.01, 0.05, 0.2, 1.0)]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(costs, costs[1:]))

    def test_bottom_up_cost_bounded_by_constants(self):
        shape, _ = measured_shape()
        model = BottomUpCostModel(shape)
        assert model.update_cost(0.0) == pytest.approx(model.COST_IN_PLACE)
        assert model.update_cost(math.sqrt(2)) <= model.COST_ASCEND_WITH_TABLE

    def test_paper_bound_bottom_up_worst_below_top_down_best(self):
        """Section 4's conclusion: the bottom-up worst case does not exceed
        the top-down best case for trees of height >= 3."""
        shape, _ = measured_shape()
        if shape.height < 3:
            pytest.skip("tree too shallow for the paper's bound")
        bottom_up = BottomUpCostModel(shape)
        top_down = TopDownCostModel(shape)
        assert bottom_up.worst_case_cost() <= top_down.best_case_cost()

    def test_without_direct_access_table_ascent_costs_scale_with_height(self):
        shape, _ = measured_shape()
        with_table = BottomUpCostModel(shape, use_direct_access_table=True)
        without_table = BottomUpCostModel(shape, use_direct_access_table=False)
        assert without_table.update_cost(1.0) >= with_table.update_cost(1.0)

    def test_probability_within_leaf_decreases_with_distance(self):
        shape, _ = measured_shape()
        model = BottomUpCostModel(shape)
        probabilities = [model.probability_within_leaf(d) for d in (0.0, 0.01, 0.05, 0.3)]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(probabilities, probabilities[1:]))
        assert probabilities[0] == 1.0

    def test_probability_extendable_scales_with_epsilon(self):
        shape, _ = measured_shape()
        tight = BottomUpCostModel(shape, epsilon=0.001)
        loose = BottomUpCostModel(shape, epsilon=0.05)
        assert loose.probability_extendable(0.05) >= tight.probability_extendable(0.05)

    def test_cost_curve_shape(self):
        shape, _ = measured_shape()
        model = BottomUpCostModel(shape)
        curve = model.cost_curve([0.01, 0.05, 0.1])
        assert [d for d, _ in curve] == [0.01, 0.05, 0.1]
        assert all(cost > 0 for _, cost in curve)

    def test_measured_gbu_update_cost_within_model_envelope(self):
        """The measured average GBU update I/O must land between the model's
        in-place floor and the top-down best case for local movement."""
        shape, index = measured_shape()
        import random

        from repro.geometry import Point

        model = BottomUpCostModel(shape)
        top_down = TopDownCostModel(shape)
        rng = random.Random(5)
        index.reset_statistics()
        updates = 400
        for _ in range(updates):
            oid = rng.randrange(len(index))
            p = index.position_of(oid)
            index.update(oid, Point(
                min(1, max(0, p.x + rng.uniform(-0.02, 0.02))),
                min(1, max(0, p.y + rng.uniform(-0.02, 0.02))),
            ))
        measured = index.stats.total_physical_io / updates
        assert model.COST_IN_PLACE - 0.5 <= measured <= top_down.best_case_cost() + 2
