"""Tests for the strategy factory and the shared strategy interface."""

import pytest

from repro.rtree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.summary import SummaryStructure
from repro.update import (
    GeneralizedBottomUpUpdate,
    LocalizedBottomUpUpdate,
    NaiveBottomUpUpdate,
    TopDownUpdate,
    TuningParameters,
    UpdateOutcome,
    make_strategy,
    strategy_names,
)
from repro.update.factory import strategy_requires_parent_pointers

from tests.conftest import SMALL_PAGE_SIZE, make_points


def make_tree(store_parent_pointers=False):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    tree = RTree(
        BufferPool(disk, 0, stats),
        layout=PageLayout(page_size=SMALL_PAGE_SIZE),
        store_parent_pointers=store_parent_pointers,
    )
    for oid, point in make_points(200):
        tree.insert(oid, point)
    return tree


class TestFactory:
    def test_strategy_names(self):
        assert strategy_names() == ["TD", "NAIVE", "LBU", "GBU"]

    def test_parent_pointer_requirement(self):
        assert strategy_requires_parent_pointers("LBU")
        assert strategy_requires_parent_pointers("lbu")
        assert not strategy_requires_parent_pointers("GBU")
        assert not strategy_requires_parent_pointers("TD")

    def test_builds_each_strategy_type(self):
        assert isinstance(make_strategy("TD", make_tree()), TopDownUpdate)
        assert isinstance(make_strategy("NAIVE", make_tree()), NaiveBottomUpUpdate)
        assert isinstance(
            make_strategy("LBU", make_tree(store_parent_pointers=True)), LocalizedBottomUpUpdate
        )
        assert isinstance(make_strategy("GBU", make_tree()), GeneralizedBottomUpUpdate)

    def test_strategy_name_is_case_insensitive(self):
        assert isinstance(make_strategy("gbu", make_tree()), GeneralizedBottomUpUpdate)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("BOTTOMS-UP", make_tree())

    def test_auxiliary_structures_are_created_when_missing(self):
        strategy = make_strategy("GBU", make_tree())
        assert strategy.hash_index is not None
        assert strategy.summary is not None

    def test_supplied_structures_are_reused(self):
        tree = make_tree()
        hash_index = ObjectHashIndex.build_from_tree(tree)
        summary = SummaryStructure.build_from_tree(tree)
        strategy = make_strategy("GBU", tree, hash_index=hash_index, summary=summary)
        assert strategy.hash_index is hash_index
        assert strategy.summary is summary

    def test_params_are_passed_through(self):
        params = TuningParameters(epsilon=0.02, distance_threshold=0.5)
        strategy = make_strategy("GBU", make_tree(), params=params)
        assert strategy.params.epsilon == 0.02
        assert strategy.params.distance_threshold == 0.5


class TestSharedInterface:
    def test_outcome_fraction_bookkeeping(self):
        tree = make_tree()
        strategy = make_strategy("TD", tree)
        from repro.geometry import Point

        positions = dict(make_points(200))
        strategy.update(1, positions[1], Point(0.2, 0.2))
        strategy.update(2, positions[2], Point(0.35, 0.3))
        fractions = strategy.outcome_fractions()
        assert fractions == {"top_down": 1.0}
        assert strategy.update_count == 2

    def test_reset_counters(self):
        tree = make_tree()
        strategy = make_strategy("TD", tree)
        from repro.geometry import Point

        positions = dict(make_points(200))
        strategy.update(1, positions[1], Point(0.2, 0.2))
        strategy.reset_counters()
        assert strategy.update_count == 0
        assert strategy.outcome_fractions() == {}
        assert strategy.top_down_fraction() == 0.0

    def test_update_of_unknown_object_inserts_it(self):
        tree = make_tree()
        strategy = make_strategy("GBU", tree)
        from repro.geometry import Point

        outcome = strategy.update(99_999, Point(0.5, 0.5), Point(0.5, 0.5))
        assert outcome == UpdateOutcome.INSERTED_NEW
        assert 99_999 in tree.point_query(Point(0.5, 0.5))

    def test_insert_and_delete_shared_helpers(self):
        tree = make_tree()
        strategy = make_strategy("GBU", tree)
        from repro.geometry import Point

        strategy.insert(50_000, Point(0.42, 0.42))
        assert 50_000 in tree.point_query(Point(0.42, 0.42))
        assert strategy.delete(50_000, Point(0.42, 0.42))
        assert 50_000 not in tree.point_query(Point(0.42, 0.42))

    def test_repr_shows_update_count(self):
        strategy = make_strategy("TD", make_tree())
        assert "updates=0" in repr(strategy)
