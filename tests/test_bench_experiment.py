"""Tests for the experiment runner."""

import pytest

from repro.bench.experiment import run_experiment, run_figure_point, run_strategies
from repro.core import IndexConfig
from repro.workload import WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE

QUICK_SPEC = WorkloadSpec(num_objects=400, num_updates=500, num_queries=60, seed=2)
QUICK_CONFIG = IndexConfig(strategy="GBU", page_size=SMALL_PAGE_SIZE)


class TestRunExperiment:
    def test_produces_phase_metrics(self):
        result = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        assert result.update_phase.operations == QUICK_SPEC.num_updates
        assert result.query_phase.operations == QUICK_SPEC.num_queries
        assert result.avg_update_io > 0
        assert result.avg_query_io > 0
        assert result.update_phase.cpu_seconds >= 0

    def test_outcome_fractions_present_for_bottom_up(self):
        result = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        assert sum(result.outcome_fractions.values()) == pytest.approx(1.0)

    def test_tree_stats_reported(self):
        result = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        assert result.tree_stats["leaf"] > 0
        assert result.tree_stats["height"] >= 2

    def test_summary_ratio_only_for_gbu(self):
        gbu = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        td = run_experiment(QUICK_CONFIG.with_overrides(strategy="TD"), QUICK_SPEC)
        assert gbu.summary_size_ratio is not None and gbu.summary_size_ratio > 0
        assert td.summary_size_ratio is None

    def test_validation_can_be_enabled(self):
        run_experiment(QUICK_CONFIG, QUICK_SPEC, validate=True)

    def test_query_result_sink_collects_counts(self):
        sink = []
        run_experiment(QUICK_CONFIG, QUICK_SPEC, query_result_sink=sink)
        assert len(sink) == QUICK_SPEC.num_queries
        assert all(count >= 0 for count in sink)

    def test_same_spec_and_config_reproduce_identical_io(self):
        first = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        second = run_experiment(QUICK_CONFIG, QUICK_SPEC)
        assert first.update_phase.physical_io == second.update_phase.physical_io
        assert first.query_phase.physical_io == second.query_phase.physical_io


class TestRunFigurePoint:
    def test_config_overrides_applied(self):
        result = run_figure_point(
            "TD", QUICK_SPEC, config_overrides={"page_size": SMALL_PAGE_SIZE, "buffer_percent": 0.0}
        )
        assert result.config.buffer_percent == 0.0
        assert result.config.page_size == SMALL_PAGE_SIZE

    def test_param_overrides_applied(self):
        result = run_figure_point(
            "GBU",
            QUICK_SPEC,
            config_overrides={"page_size": SMALL_PAGE_SIZE},
            param_overrides={"epsilon": 0.05, "level_threshold": 1},
        )
        assert result.config.params.epsilon == 0.05
        assert result.config.params.level_threshold == 1

    def test_strategies_see_identical_workloads(self):
        """Query answers must match across strategies for the same spec."""
        sinks = {}
        for strategy in ("TD", "GBU"):
            sink = []
            config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE)
            run_experiment(config, QUICK_SPEC, query_result_sink=sink)
            sinks[strategy] = sink
        assert sinks["TD"] == sinks["GBU"]


class TestRunStrategies:
    def test_runs_each_requested_strategy(self):
        results = run_strategies(
            ("TD", "GBU"), QUICK_SPEC, config_overrides={"page_size": SMALL_PAGE_SIZE}
        )
        assert set(results) == {"TD", "GBU"}
        assert results["GBU"].avg_update_io <= results["TD"].avg_update_io
