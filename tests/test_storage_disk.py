"""Unit tests for :class:`repro.storage.disk.DiskManager`."""

import pytest

from repro.storage import DiskManager, IOStatistics, PageNotFoundError


class TestAllocation:
    def test_allocate_returns_distinct_ids(self):
        disk = DiskManager()
        ids = {disk.allocate_page() for _ in range(10)}
        assert len(ids) == 10

    def test_deallocated_ids_are_recycled(self):
        disk = DiskManager()
        first = disk.allocate_page()
        disk.deallocate_page(first)
        assert disk.allocate_page() == first

    def test_deallocate_unknown_page_raises(self):
        disk = DiskManager()
        with pytest.raises(PageNotFoundError):
            disk.deallocate_page(99)

    def test_len_reports_allocated_pages(self):
        disk = DiskManager()
        pages = [disk.allocate_page() for _ in range(5)]
        disk.deallocate_page(pages[0])
        assert len(disk) == 4

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=0)

    def test_database_size_bytes(self):
        disk = DiskManager(page_size=512)
        for _ in range(3):
            disk.allocate_page()
        assert disk.database_size_bytes == 3 * 512


class TestReadWrite:
    def test_write_then_read_round_trips(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.write_page(page, {"hello": "world"})
        assert disk.read_page(page) == {"hello": "world"}

    def test_read_unknown_page_raises(self):
        disk = DiskManager()
        with pytest.raises(PageNotFoundError):
            disk.read_page(123)

    def test_write_unknown_page_raises(self):
        disk = DiskManager()
        with pytest.raises(PageNotFoundError):
            disk.write_page(123, "data")

    def test_reads_and_writes_are_counted(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        disk.read_page(page)
        disk.read_page(page)
        assert stats.physical_writes == 1
        assert stats.physical_reads == 2

    def test_peek_is_not_counted(self):
        stats = IOStatistics()
        disk = DiskManager(stats=stats)
        page = disk.allocate_page()
        disk.write_page(page, "x")
        before = stats.physical_reads
        assert disk.peek(page) == "x"
        assert stats.physical_reads == before

    def test_contains(self):
        disk = DiskManager()
        page = disk.allocate_page()
        assert page in disk
        assert 999 not in disk

    def test_page_ids_iterates_allocated_pages(self):
        disk = DiskManager()
        pages = {disk.allocate_page() for _ in range(4)}
        assert set(disk.page_ids()) == pages
