"""Unit tests for :class:`repro.geometry.rect.Rect`."""

import pytest

from repro.geometry import Point, Rect, union_all
from repro.geometry.rect import rects_from_sequence


class TestConstruction:
    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            Rect(0.5, 0.0, 0.4, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 0.6, 1.0, 0.5)

    def test_degenerate_rectangle_allowed(self):
        rect = Rect(0.3, 0.3, 0.3, 0.3)
        assert rect.area() == 0.0

    def test_from_point(self):
        rect = Rect.from_point(Point(0.2, 0.8))
        assert rect.as_tuple() == (0.2, 0.8, 0.2, 0.8)

    def test_from_points_orders_coordinates(self):
        rect = Rect.from_points(Point(0.8, 0.1), Point(0.2, 0.9))
        assert rect.as_tuple() == (0.2, 0.1, 0.8, 0.9)

    def test_from_center(self):
        rect = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
        assert rect.as_tuple() == pytest.approx((0.4, 0.3, 0.6, 0.7))

    def test_from_center_rejects_negative_extent(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0.5, 0.5), -0.1, 0.1)

    def test_unit_square(self):
        assert Rect.unit().as_tuple() == (0.0, 0.0, 1.0, 1.0)

    def test_immutability(self):
        rect = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            rect.xmin = -1.0

    def test_rects_from_sequence(self):
        assert rects_from_sequence([0.1, 0.2, 0.3, 0.4]) == Rect(0.1, 0.2, 0.3, 0.4)

    def test_rects_from_sequence_wrong_length(self):
        with pytest.raises(ValueError):
            rects_from_sequence([0.1, 0.2, 0.3])


class TestMeasures:
    def test_area_and_margin(self):
        rect = Rect(0.0, 0.0, 0.4, 0.25)
        assert rect.area() == pytest.approx(0.1)
        assert rect.margin() == pytest.approx(0.65)

    def test_width_height_center(self):
        rect = Rect(0.1, 0.2, 0.5, 0.8)
        assert rect.width == pytest.approx(0.4)
        assert rect.height == pytest.approx(0.6)
        assert rect.center() == Point(0.3, 0.5)


class TestPredicates:
    def test_contains_point_inside_and_boundary(self):
        rect = Rect(0.2, 0.2, 0.6, 0.6)
        assert rect.contains_point(Point(0.4, 0.4))
        assert rect.contains_point(Point(0.2, 0.6))  # boundary counts
        assert not rect.contains_point(Point(0.61, 0.4))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 1.0, 1.0)
        inner = Rect(0.2, 0.2, 0.4, 0.4)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_overlap_and_touch(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        assert a.intersects(Rect(0.4, 0.4, 0.8, 0.8))
        assert a.intersects(Rect(0.5, 0.0, 0.9, 0.5))  # edge touch counts
        assert not a.intersects(Rect(0.51, 0.51, 0.9, 0.9))

    def test_intersection_region(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.25, 0.25, 1.0, 1.0)
        assert a.intersection(b) == Rect(0.25, 0.25, 0.5, 0.5)
        assert a.intersection(Rect(0.6, 0.6, 0.9, 0.9)) is None

    def test_overlap_area(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.25, 0.25, 0.75, 0.75)
        assert a.overlap_area(b) == pytest.approx(0.0625)
        assert a.overlap_area(Rect(0.6, 0.6, 0.7, 0.7)) == 0.0


class TestCombination:
    def test_union(self):
        a = Rect(0.0, 0.0, 0.3, 0.3)
        b = Rect(0.5, 0.6, 0.7, 0.9)
        assert a.union(b) == Rect(0.0, 0.0, 0.7, 0.9)

    def test_union_point(self):
        rect = Rect(0.2, 0.2, 0.4, 0.4)
        assert rect.union_point(Point(0.9, 0.1)) == Rect(0.2, 0.1, 0.9, 0.4)

    def test_union_all(self):
        rects = [Rect(0.1, 0.1, 0.2, 0.2), Rect(0.5, 0.0, 0.6, 0.3), Rect(0.0, 0.4, 0.1, 0.9)]
        assert union_all(rects) == Rect(0.0, 0.0, 0.6, 0.9)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])

    def test_enlargement_to_include(self):
        rect = Rect(0.0, 0.0, 0.5, 0.5)
        assert rect.enlargement_to_include(Rect(0.2, 0.2, 0.4, 0.4)) == 0.0
        assert rect.enlargement_to_include(Rect(0.0, 0.0, 1.0, 0.5)) == pytest.approx(0.25)

    def test_enlargement_to_include_point(self):
        rect = Rect(0.0, 0.0, 0.5, 0.5)
        assert rect.enlargement_to_include_point(Point(1.0, 0.5)) == pytest.approx(0.25)

    def test_min_distance_to_point(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.min_distance_to_point(Point(0.5, 0.5)) == 0.0
        assert rect.min_distance_to_point(Point(1.0, 2.0)) == pytest.approx(1.0)
        assert rect.min_distance_to_point(Point(4.0, 5.0)) == pytest.approx(5.0)


class TestDirectionalExtension:
    """``iExtendMBR`` (Algorithm 4) behaviour."""

    def test_extends_only_towards_target(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        target = Point(0.65, 0.5)  # moved east, within epsilon
        extended = rect.extended_towards(target, epsilon=0.1)
        assert extended == Rect(0.4, 0.4, 0.65, 0.6)

    def test_extension_limited_by_epsilon(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        target = Point(0.9, 0.5)  # farther than epsilon allows
        extended = rect.extended_towards(target, epsilon=0.1)
        assert extended == Rect(0.4, 0.4, 0.7, 0.6)
        assert not extended.contains_point(target)

    def test_extension_limited_by_parent_bound(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        bound = Rect(0.0, 0.0, 0.62, 1.0)
        extended = rect.extended_towards(Point(0.7, 0.5), epsilon=0.2, bound=bound)
        assert extended.xmax == pytest.approx(0.62)

    def test_northeast_move_extends_two_sides(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        extended = rect.extended_towards(Point(0.62, 0.63), epsilon=0.1)
        assert extended == Rect(0.4, 0.4, 0.62, 0.63)

    def test_move_west_and_south(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        extended = rect.extended_towards(Point(0.35, 0.32), epsilon=0.1)
        assert extended == Rect(0.35, 0.32, 0.6, 0.6)

    def test_point_inside_leaves_rect_unchanged(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        assert rect.extended_towards(Point(0.5, 0.5), epsilon=0.1) == rect

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).extended_towards(Point(2, 2), epsilon=-0.1)


class TestExpansion:
    """LBU-style all-direction expansion."""

    def test_expanded_grows_all_sides(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        assert rect.expanded(0.05).as_tuple() == pytest.approx((0.35, 0.35, 0.65, 0.65))

    def test_expanded_clipped_to_bound(self):
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        bound = Rect(0.38, 0.0, 1.0, 0.62)
        expanded = rect.expanded(0.05, bound=bound)
        assert expanded.as_tuple() == pytest.approx((0.38, 0.35, 0.65, 0.62))

    def test_expanded_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).expanded(-0.01)

    def test_expanded_zero_epsilon_is_identity(self):
        rect = Rect(0.1, 0.2, 0.3, 0.4)
        assert rect.expanded(0.0) == rect
