"""Tests for the TD (top-down) baseline strategy."""

import random

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.update import UpdateOutcome

from tests.conftest import SMALL_PAGE_SIZE, build_index, make_points


class TestTopDownUpdates:
    def test_every_update_is_top_down(self):
        index = build_index("TD")
        rng = random.Random(3)
        for oid in range(50):
            index.update(oid, Point(rng.random(), rng.random()))
        assert index.strategy.outcome_counts[UpdateOutcome.TOP_DOWN] == 50
        assert index.strategy.top_down_fraction() == 1.0

    def test_update_moves_the_object(self):
        index = build_index("TD", num_objects=100)
        index.update(3, Point(0.111, 0.222))
        assert 3 in index.range_query(Rect(0.11, 0.22, 0.112, 0.223))
        assert index.position_of(3) == Point(0.111, 0.222)

    def test_index_remains_valid_after_many_updates(self):
        index = build_index("TD", num_objects=300)
        rng = random.Random(5)
        for _ in range(600):
            oid = rng.randrange(300)
            index.update(oid, Point(rng.random(), rng.random()))
        index.validate()

    def test_queries_match_brute_force_after_updates(self):
        index = build_index("TD", num_objects=200)
        rng = random.Random(6)
        positions = {oid: index.position_of(oid) for oid in range(200)}
        for _ in range(400):
            oid = rng.randrange(200)
            new = Point(rng.random(), rng.random())
            index.update(oid, new)
            positions[oid] = new
        window = Rect(0.25, 0.25, 0.75, 0.75)
        expected = sorted(o for o, p in positions.items() if window.contains_point(p))
        assert sorted(index.range_query(window)) == expected

    def test_top_down_does_not_use_the_hash_index(self):
        index = build_index("TD", num_objects=150)
        before = index.stats.hash_index_reads
        rng = random.Random(7)
        for oid in range(50):
            index.update(oid, Point(rng.random(), rng.random()))
        assert index.stats.hash_index_reads == before

    def test_update_costs_two_descents(self):
        """A TD update must read at least ~2x the tree height."""
        index = build_index("TD", num_objects=600, buffer_percent=0.0)
        height = index.tree.height
        before = index.stats.physical_reads
        index.update(0, Point(0.5, 0.5))
        reads = index.stats.physical_reads - before
        assert reads >= 2 * height - 1
