"""Tests for STR bulk loading."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree, bulk_load_str, validate_tree
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout

from tests.conftest import SMALL_PAGE_SIZE, make_points


def fresh_tree(**kwargs):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    pool = BufferPool(disk, capacity=0, stats=stats)
    return RTree(pool, layout=PageLayout(page_size=SMALL_PAGE_SIZE), **kwargs)


class TestBulkLoadStructure:
    def test_loaded_tree_is_valid_and_well_filled(self):
        tree = fresh_tree()
        objects = make_points(800)
        bulk_load_str(tree, objects)
        stats = validate_tree(tree, expected_size=800, check_min_fill=True)
        assert stats["objects"] == 800

    def test_loading_empty_iterable_is_a_noop(self):
        tree = fresh_tree()
        bulk_load_str(tree, [])
        assert len(tree) == 0
        assert tree.height == 1

    def test_single_object(self):
        tree = fresh_tree()
        bulk_load_str(tree, [(1, Point(0.5, 0.5))])
        assert tree.point_query(Point(0.5, 0.5)) == [1]
        validate_tree(tree, expected_size=1)

    def test_loading_into_non_empty_tree_is_rejected(self):
        tree = fresh_tree()
        tree.insert(1, Point(0.1, 0.1))
        with pytest.raises(ValueError):
            bulk_load_str(tree, make_points(10))

    def test_invalid_fill_factor_rejected(self):
        tree = fresh_tree()
        with pytest.raises(ValueError):
            bulk_load_str(tree, make_points(10), fill_factor=0.0)
        with pytest.raises(ValueError):
            bulk_load_str(fresh_tree(), make_points(10), fill_factor=1.5)

    def test_bulk_load_with_parent_pointers(self):
        tree = fresh_tree(store_parent_pointers=True)
        bulk_load_str(tree, make_points(600))
        validate_tree(tree, expected_size=600)  # includes parent-pointer checks

    def test_rect_objects_supported(self):
        tree = fresh_tree()
        rng = random.Random(2)
        objects = []
        for oid in range(100):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            objects.append((oid, Rect(x, y, x + 0.05, y + 0.05)))
        bulk_load_str(tree, objects)
        validate_tree(tree, expected_size=100)


class TestBulkLoadBehaviour:
    def test_queries_match_inserted_tree(self):
        objects = make_points(700, seed=13)
        packed = fresh_tree()
        bulk_load_str(packed, objects)
        inserted = fresh_tree()
        for oid, point in objects:
            inserted.insert(oid, point)
        rng = random.Random(5)
        for _ in range(25):
            cx, cy, side = rng.random(), rng.random(), rng.uniform(0, 0.2)
            window = Rect(max(0, cx - side), max(0, cy - side), min(1, cx + side), min(1, cy + side))
            assert sorted(packed.range_query(window)) == sorted(inserted.range_query(window))

    def test_bulk_load_is_cheaper_than_repeated_insertion(self):
        objects = make_points(700, seed=13)
        packed = fresh_tree()
        bulk_load_str(packed, objects)
        inserted = fresh_tree()
        for oid, point in objects:
            inserted.insert(oid, point)
        assert (
            packed.disk.stats.total_physical_io < inserted.disk.stats.total_physical_io
        )

    def test_higher_fill_factor_gives_fewer_leaves(self):
        objects = make_points(600, seed=3)
        low = fresh_tree()
        bulk_load_str(low, objects, fill_factor=0.5)
        high = fresh_tree()
        bulk_load_str(high, objects, fill_factor=1.0)
        assert high.node_count()["leaf"] < low.node_count()["leaf"]

    def test_updates_after_bulk_load_keep_tree_valid(self):
        tree = fresh_tree()
        objects = make_points(500)
        bulk_load_str(tree, objects)
        rng = random.Random(8)
        live = dict(objects)
        for oid in list(live)[:200]:
            tree.delete(oid, live.pop(oid))
        for oid in range(10_000, 10_200):
            point = Point(rng.random(), rng.random())
            tree.insert(oid, point)
            live[oid] = point
        validate_tree(tree, expected_size=len(live))
