"""End-to-end crash-recovery equivalence for durable indexes.

Every test runs a workload against a durable index, then restores a second
index purely from the checkpoint plus WAL replay
(:func:`repro.core.persistence.load_index`) and requires the recovered
index to be logically identical to the live one: same object positions,
same range-query answers (compared sorted — the recovered tree is a
physically different page layout holding the same content), same kNN
answers, and a recovered structure that passes full validation.

Covered here: every update strategy on the single and the 4-shard facade,
batched and per-operation mutation paths, the concurrent engine, the
``process`` shard backend (coordinator-side logging), repartitioning, the
builder/spec/checkpoint round trip, and log rotation across checkpoints.
Torn-log crash simulation lives in ``tests/test_durability_crash_injection.py``.
"""

import json
import random

import pytest

from repro.api import IndexBuilder, Update, index_spec, open_index
from repro.core.persistence import load_index, save_index
from repro.durability import read_frames, recover_index, shard_log_paths
from repro.geometry import Point, Rect

STRATEGIES = ("TD", "NAIVE", "LBU", "GBU")


def durable_spec(tmp_path, strategy, kind, sync="group"):
    spec = {
        "config": {"strategy": strategy},
        "durability": {"dir": str(tmp_path / "wal"), "sync": sync, "group_size": 16},
    }
    if kind == "sharded":
        spec["kind"] = "sharded"
        spec["shards"] = 4
    return spec


def run_mixed_workload(index, seed=11, objects=150):
    """Load + per-op updates + batch + deletes + inserts, deterministically."""
    rng = random.Random(seed)
    index.load([(oid, Point(rng.random(), rng.random())) for oid in range(objects)])
    for oid in range(0, objects, 2):
        index.update(oid, Point(rng.random(), rng.random()))
    index.update_many(
        [(oid, Point(rng.random(), rng.random())) for oid in range(1, objects, 2)]
    )
    for oid in range(0, 20):
        index.delete(oid)
    for oid in range(objects, objects + 10):
        index.insert(oid, Point(rng.random(), rng.random()))
    return index


def oids_of(index):
    table = getattr(index, "_shard_of", None)
    if table is None:
        table = index._positions
    return sorted(table)


def assert_equivalent(live, recovered, seed=23):
    rng = random.Random(seed)
    assert oids_of(live) == oids_of(recovered)
    assert {oid: live.position_of(oid) for oid in oids_of(live)} == {
        oid: recovered.position_of(oid) for oid in oids_of(recovered)
    }
    for _ in range(8):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        window = Rect(x, y, x + 0.2, y + 0.2)
        assert sorted(live.range_query(window)) == sorted(
            recovered.range_query(window)
        )
        probe = Point(rng.random(), rng.random())
        assert live.knn(probe, 5) == recovered.knn(probe, 5)
    recovered.validate()


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("kind", ("single", "sharded"))
    def test_mixed_workload_recovers_identically(self, tmp_path, strategy, kind):
        live = run_mixed_workload(open_index(durable_spec(tmp_path, strategy, kind)))
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert_equivalent(live, recovered)

    @pytest.mark.parametrize("sync", ("always", "group", "none"))
    def test_every_sync_policy_recovers(self, tmp_path, sync):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "GBU", "sharded", sync=sync)),
            objects=80,
        )
        # ``none`` never fsyncs but still appends + flushes; on a live
        # filesystem (no OS crash) the frames are all readable.
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert_equivalent(live, recovered)

    def test_recover_index_convenience_wrapper(self, tmp_path):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "GBU", "single")), objects=60
        )
        live.durability.flush()
        recovered = recover_index(tmp_path / "wal")
        assert_equivalent(live, recovered)

    def test_recovered_index_keeps_logging(self, tmp_path):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "TD", "single")), objects=60
        )
        lsn_at_crash = live.durability.last_lsn
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        live.detach_durability()  # hand the logs over to the recovered index
        assert recovered.durability is not None
        assert recovered.durability.last_lsn == lsn_at_crash
        recovered.update(30, Point(0.99, 0.99))
        assert recovered.durability.last_lsn == lsn_at_crash + 1
        twice = load_index(tmp_path / "wal" / "checkpoint.json")
        assert twice.position_of(30) == Point(0.99, 0.99)

    def test_checkpoint_then_more_work_replays_only_the_tail(self, tmp_path):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "GBU", "sharded")), objects=80
        )
        live.checkpoint()  # rotates: the logs restart empty here
        rng = random.Random(31)
        for oid in range(20, 50):
            live.update(oid, Point(rng.random(), rng.random()))
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert_equivalent(live, recovered)


class TestCoordinatorSideLogging:
    def test_process_backend_recovers_identically(self, tmp_path):
        spec = durable_spec(tmp_path, "GBU", "sharded")
        spec["parallel"] = {"backend": "process", "workers": 2}
        live = run_mixed_workload(open_index(spec))
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        try:
            assert_equivalent(live, recovered)
        finally:
            live.detach_parallel()
            recovered.detach_parallel()

    def test_rebalance_repartition_is_replayed(self, tmp_path):
        live = open_index(durable_spec(tmp_path, "GBU", "sharded"))
        rng = random.Random(17)
        # Clustered load so a forced rebalance actually moves the boundaries.
        live.load(
            [
                (oid, Point(rng.random() * 0.4, rng.random() * 0.4))
                for oid in range(200)
            ]
        )
        live.rebalance(force=True)
        for oid in range(80):
            live.update(oid, Point(rng.random(), rng.random()))
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert recovered.partitioner.to_spec() == live.partitioner.to_spec()
        assert_equivalent(live, recovered)


class TestSpecAndCheckpointRoundTrip:
    def test_builder_attaches_durability(self, tmp_path):
        index = (
            IndexBuilder()
            .strategy("GBU")
            .durability(tmp_path / "wal", sync="none", group_size=8)
            .build()
        )
        assert index.durability is not None
        assert index.durability.to_spec() == {
            "dir": str(tmp_path / "wal"),
            "sync": "none",
            "group_size": 8,
        }

    def test_spec_and_index_spec_round_trip(self, tmp_path):
        spec = durable_spec(tmp_path, "GBU", "sharded")
        index = open_index(spec)
        assert index_spec(index)["durability"] == {
            "dir": str(tmp_path / "wal"),
            "sync": "group",
            "group_size": 16,
        }
        rebuilt = IndexBuilder.from_spec(index_spec(index)).spec()
        assert rebuilt["durability"] == index_spec(index)["durability"]

    def test_checkpoint_embeds_the_durability_section(self, tmp_path):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "TD", "single")), objects=40
        )
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert index_spec(recovered).get("durability") == index_spec(live).get(
            "durability"
        )

    def test_plain_export_recovers_without_durability(self, tmp_path):
        """An export to a foreign path is a snapshot, not a recovery point."""
        live = run_mixed_workload(
            open_index({"config": {"strategy": "TD"}}), objects=40
        )
        save_index(live, tmp_path / "export.json")
        restored = load_index(tmp_path / "export.json")
        assert restored.durability is None
        assert_equivalent(live, restored)

    def test_durable_index_exports_without_a_durability_section(self, tmp_path):
        """Exporting a *durable* index must not point back at its live logs.

        If the export carried the durability spec, loading it would replay
        the live WAL tail and attach a second writer (with its own LSN
        counter) to a directory the live manager is still appending to.
        """
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "TD", "single")), objects=40
        )
        save_index(live, tmp_path / "export.json")
        document = json.loads((tmp_path / "export.json").read_text())
        assert "durability" not in document
        restored = load_index(tmp_path / "export.json")
        assert restored.durability is None
        assert_equivalent(live, restored)
        # The live recovery timeline is untouched: the logs were not
        # rotated, and the manager's own checkpoint still recovers.
        live.durability.flush()
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert recovered.durability is not None
        assert_equivalent(live, recovered)

    def test_failed_apply_leaves_the_wal_silent(self, tmp_path):
        """Apply first, log on success: a strategy that raises logs nothing.

        Were the operation logged up front, recovery would replay a
        mutation the live index never performed and diverge from every
        answer the pre-crash process gave.
        """
        live = open_index(durable_spec(tmp_path, "TD", "single"))
        rng = random.Random(7)
        live.load(
            [(oid, Point(rng.random(), rng.random())) for oid in range(30)]
        )
        live.update(3, Point(0.5, 0.5))
        position_before = live.position_of(4)

        def failing_update(oid, old_location, new_location):
            raise RuntimeError("injected strategy failure")

        original = live.strategy.update
        live.strategy.update = failing_update
        try:
            with pytest.raises(RuntimeError):
                live.update(4, Point(0.25, 0.25))
        finally:
            live.strategy.update = original
        assert live.position_of(4) == position_before
        live.durability.flush()
        logged_oids = [
            record.oid
            for _lsn, records in read_frames(shard_log_paths(tmp_path / "wal")[0])
            for record in records
        ]
        assert 4 not in logged_oids
        recovered = load_index(tmp_path / "wal" / "checkpoint.json")
        assert recovered.position_of(4) == position_before
        assert_equivalent(live, recovered)

    def test_shard_sub_indexes_do_not_double_log(self, tmp_path):
        live = run_mixed_workload(
            open_index(durable_spec(tmp_path, "GBU", "sharded")), objects=60
        )
        assert all(shard.durability is None for shard in live.shards)
        # Exactly the coordinator's logs exist: one per shard plus meta.
        assert set(shard_log_paths(tmp_path / "wal")) <= set(range(4))
