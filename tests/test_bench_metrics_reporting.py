"""Tests for the benchmark metric rows and text reporting."""

from repro.bench import MetricRow, format_table, get_figure, render_figure_result
from repro.bench.reporting import pivot_by_strategy, rows_to_dicts


def sample_rows():
    return [
        MetricRow("epsilon", 0.003, "TD", avg_update_io=12.0, avg_query_io=6.0),
        MetricRow("epsilon", 0.003, "GBU", avg_update_io=5.5, avg_query_io=4.2,
                  extras={"top_down_fraction": 0.01}),
        MetricRow("epsilon", 0.03, "GBU", avg_update_io=4.4, avg_query_io=5.3),
    ]


class TestMetricRow:
    def test_as_dict_includes_only_present_metrics(self):
        row = MetricRow("x", 1, "TD", avg_update_io=3.0)
        exported = row.as_dict()
        assert exported["update_io"] == 3.0
        assert "query_io" not in exported
        assert "throughput_tps" not in exported

    def test_as_dict_rounds_values(self):
        row = MetricRow("x", 1, "TD", avg_update_io=3.14159)
        assert row.as_dict()["update_io"] == 3.142

    def test_extras_are_exported(self):
        row = MetricRow("x", 1, "GBU", extras={"top_down_fraction": 0.123456})
        assert row.as_dict()["top_down_fraction"] == 0.1235

    def test_throughput_rounding(self):
        row = MetricRow("x", 0.5, "GBU", throughput=1234.567)
        assert row.as_dict()["throughput_tps"] == 1234.6


class TestFormatTable:
    def test_renders_header_and_rows(self):
        table = format_table(rows_to_dicts(sample_rows()))
        lines = table.splitlines()
        assert "strategy" in lines[0]
        assert len(lines) == 2 + len(sample_rows())  # header + separator + rows

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_explicit_column_selection(self):
        table = format_table(rows_to_dicts(sample_rows()), columns=["strategy", "update_io"])
        assert "query_io" not in table
        assert "GBU" in table

    def test_columns_union_across_rows(self):
        rows = [{"a": 1}, {"b": 2}]
        table = format_table(rows)
        assert "a" in table and "b" in table


class TestRenderFigureResult:
    def test_report_contains_reference_and_expected_shape(self):
        definition = get_figure("fig5_epsilon")
        report = render_figure_result(definition, sample_rows())
        assert "Figure 5(a)-(d)" in report
        assert "expected shape" in report
        assert "GBU" in report

    def test_report_for_definition_with_notes(self):
        definition = get_figure("table1")
        report = render_figure_result(definition, sample_rows())
        assert "note:" in report


class TestPivot:
    def test_pivot_by_strategy_on_core_metric(self):
        pivot = pivot_by_strategy(sample_rows(), metric="avg_update_io")
        assert pivot[0.003]["TD"] == 12.0
        assert pivot[0.003]["GBU"] == 5.5
        assert pivot[0.03]["GBU"] == 4.4

    def test_pivot_on_extra_metric(self):
        pivot = pivot_by_strategy(sample_rows(), metric="top_down_fraction")
        assert pivot[0.003]["GBU"] == 0.01
        assert 0.03 not in pivot  # row without the extra is skipped

    def test_pivot_skips_missing_metric(self):
        rows = [MetricRow("x", 1, "TD")]
        assert pivot_by_strategy(rows, metric="avg_update_io") == {}
