"""Tests for the online operation engine, lock scopes and the session facade."""

import pytest

from repro.api import Operation
from repro.concurrency import EXTERNAL_GRANULE, TREE_GRANULE, LockMode
from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.update.base import BatchUpdate
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


def loaded(strategy, num_objects=800, seed=3, **spec_overrides):
    spec = WorkloadSpec(
        num_objects=num_objects,
        num_updates=0,
        num_queries=0,
        seed=seed,
        query_max_side=0.15,
        **spec_overrides,
    )
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE))
    index.load(generator.initial_objects())
    return index, generator


def granules(requests):
    return {request.granule for request in requests}


class TestLockScopes:
    def test_every_update_scope_includes_the_tree_intention(self):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            index, generator = loaded(strategy, num_objects=400)
            oid, old, new = next(generator.updates(1))
            scope = index.strategy.lock_scope(oid, old, new)
            assert TREE_GRANULE in granules(scope)

    def test_bottom_up_scope_takes_fewer_exclusive_granules_than_top_down(self):
        """Section 3.2.2's asymmetry as lock footprints: over a workload the
        bottom-up strategy takes fewer *exclusive* granule locks — the kind
        that blocks other clients — than the top-down strategy, whose two
        descents lock every leaf they may visit exclusively.  (GBU's scopes
        can contain more granules in total, but the surplus is intention
        locks on ancestors, which are mutually compatible.)"""

        def exclusive_total(index, requests):
            return sum(
                sum(
                    1
                    for request in index.strategy.lock_scope(oid, old, new)
                    if request.mode == LockMode.EXCLUSIVE
                )
                for oid, old, new in requests
            )

        index_td, generator = loaded("TD", num_objects=800, seed=5)
        index_gbu, _ = loaded("GBU", num_objects=800, seed=5)
        requests = list(generator.updates(50))
        assert exclusive_total(index_gbu, requests) < exclusive_total(index_td, requests)

    def test_zero_distance_move_locks_exactly_one_leaf_exclusively(self):
        index, _ = loaded("GBU", num_objects=800, seed=5)
        oid = 0
        old = index.position_of(oid)
        scope = index.strategy.lock_scope(oid, old, Point(old.x, old.y))
        exclusive = [
            request for request in scope if request.mode == LockMode.EXCLUSIVE
        ]
        assert len(exclusive) == 1  # exactly the object's leaf granule

    def test_in_place_scope_is_the_objects_leaf(self):
        index, _ = loaded("GBU", num_objects=400)
        oid = 7
        position = index.position_of(oid)
        scope = index.strategy.lock_scope(oid, position, position)
        leaf_page = index.hash_index.peek(oid)
        assert granules(scope) == {leaf_page, TREE_GRANULE}

    def test_insert_outside_root_mbr_locks_external_granule(self):
        index, _ = loaded("GBU", num_objects=300)
        scope = index.strategy.insert_lock_scope(Point(5.0, 5.0))
        assert EXTERNAL_GRANULE in granules(scope)

    def test_query_scope_is_shared_on_visited_leaves(self):
        index, _ = loaded("TD", num_objects=400)
        window = Rect(0.2, 0.2, 0.6, 0.6)
        scope = index.strategy.query_lock_scope(window)
        visited = set(index.tree.predict_visited_leaves(window))
        assert visited
        for request in scope:
            if request.granule == TREE_GRANULE:
                assert request.mode == LockMode.INTENTION_SHARED
            else:
                assert request.granule in visited
                assert request.mode == LockMode.SHARED

    def test_group_scope_locks_the_leaf_exclusively(self):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            index, generator = loaded(strategy, num_objects=400)
            oid, old, new = next(generator.updates(1))
            leaf_page = index.hash_index.peek(oid)
            scope = index.strategy.group_lock_scope(
                leaf_page, [BatchUpdate(oid, old, new)]
            )
            by_granule = {request.granule: request.mode for request in scope}
            assert by_granule[leaf_page] == LockMode.EXCLUSIVE
            assert TREE_GRANULE in by_granule


class TestConcurrentSession:
    def test_submit_and_run_per_client_queues(self):
        index, _ = loaded("GBU", num_objects=300)
        session = index.engine(num_clients=4)
        target_a = Point(0.5, 0.5)
        target_b = Point(0.25, 0.75)
        session.submit(0, ("update", 1, target_a))
        session.submit(1, ("update", 2, target_b))
        session.submit(2, ("range_query", Rect(0.0, 0.0, 1.0, 1.0)))
        assert session.pending() == 3
        result = session.run()
        assert session.pending() == 0
        assert result.operations == 3
        assert index.position_of(1) == target_a
        assert index.position_of(2) == target_b
        index.validate()

    def test_submit_rejects_unknown_client(self):
        index, _ = loaded("GBU", num_objects=300)
        session = index.engine(num_clients=2)
        with pytest.raises(ValueError):
            session.submit(2, ("range_query", Rect(0.0, 0.0, 1.0, 1.0)))

    def test_insert_and_delete_operations(self):
        index, _ = loaded("GBU", num_objects=300)
        session = index.engine(num_clients=2)
        new_oid = 10_000
        session.submit(0, ("insert", new_oid, Point(0.4, 0.4)))
        session.submit(1, ("delete", 5))
        result = session.run()
        assert result.operations == 2
        assert new_oid in index
        assert 5 not in index
        index.validate()

    def test_run_mixed_deals_the_generator_stream(self):
        index, generator = loaded("GBU", num_objects=500)
        session = index.engine(num_clients=8)
        result = session.run_mixed(generator, num_operations=120, update_fraction=0.5)
        assert result.operations == 120
        assert result.num_clients == 8
        index.validate()

    def test_per_client_io_accounting_sums_to_pool_physical_io(self):
        index, generator = loaded("LBU", num_objects=500)
        session = index.engine(num_clients=6)
        before = index.io_snapshot()
        result = session.run_mixed(generator, num_operations=100, update_fraction=0.7)
        delta = index.io_snapshot().delta_since(before)
        table = session.client_io()
        assert table  # at least one client did physical work
        pool_total = sum(counters.total for counters in table.values())
        # The pool attributes page transfers; the schedule's total also
        # includes charged hash-index probes, so it can only be larger.
        assert pool_total == delta.physical_reads + delta.physical_writes
        assert result.total_physical_io >= pool_total

    def test_client_streams_preserve_the_workload(self):
        spec = WorkloadSpec(num_objects=300, num_updates=0, num_queries=0, seed=13)
        shared = list(WorkloadGenerator(spec).mixed_operations(60, 0.5))
        streams = WorkloadGenerator(spec).client_streams(4, 60, 0.5)
        assert sum(len(stream) for stream in streams) == 60
        # Round-robin dealing: re-interleaving the streams restores the order.
        restored = []
        for position in range(60):
            restored.append(streams[position % 4][position // 4])
        assert restored == [Operation.from_tuple(item) for item in shared]


class TestConflictAwareBatchScheduling:
    @pytest.mark.parametrize("strategy", ["LBU", "GBU"])
    def test_concurrent_groups_beat_serial_execution(self, strategy):
        """Partitioning leaf groups into disjoint granule lock sets must yield
        a strictly lower makespan than draining the same groups serially
        (acceptance criterion, scaled down from the 10k benchmark)."""
        spec = WorkloadSpec(
            num_objects=1200,
            num_updates=2500,
            num_queries=0,
            distribution="gaussian",
            seed=7,
        )
        makespans = {}
        for label, clients in (("serial", 1), ("concurrent", 16)):
            generator = WorkloadGenerator(spec)
            index = MovingObjectIndex(IndexConfig(strategy=strategy))
            index.load(generator.initial_objects())
            ops = [BatchUpdate(oid, old, new) for oid, old, new in generator.updates()]
            result = index.engine(num_clients=clients).engine.run_batch(ops)
            index.validate()
            makespans[label] = result.makespan
            assert result.batch.updates == 2500
        assert makespans["concurrent"] < makespans["serial"]

    def test_session_update_many_applies_all_updates(self):
        index, generator = loaded("GBU", num_objects=600)
        session = index.engine(num_clients=8)
        updates = [(oid, new) for oid, _old, new in generator.updates(300)]
        result = session.update_many(updates)
        assert result.batch.updates == 300
        index.validate()
        final = {}
        for oid, new in updates:
            final[oid] = new
        for oid, expected in final.items():
            assert index.position_of(oid) == expected

    def test_run_batch_keeps_facade_positions_in_sync(self):
        """Direct engine.run_batch must update the facade's position map, or
        a later per-op update would hand the strategy a stale old position."""
        index, generator = loaded("GBU", num_objects=400)
        updates = list(generator.updates(200))
        ops = [BatchUpdate(oid, old, new) for oid, old, new in updates]
        index.engine(num_clients=8).engine.run_batch(ops)
        final = {}
        for oid, _old, new in updates:
            final[oid] = new
        for oid, expected in final.items():
            assert index.position_of(oid) == expected
        moved_oid = next(iter(final))
        index.update(moved_oid, Point(0.42, 0.24))
        index.validate()

    def test_batch_scheduling_is_deterministic(self):
        def run_once():
            spec = WorkloadSpec(
                num_objects=800,
                num_updates=1200,
                num_queries=0,
                distribution="gaussian",
                seed=21,
            )
            generator = WorkloadGenerator(spec)
            index = MovingObjectIndex(IndexConfig(strategy="GBU"))
            index.load(generator.initial_objects())
            ops = [BatchUpdate(oid, old, new) for oid, old, new in generator.updates()]
            return index.engine(num_clients=12).engine.run_batch(ops)

        first, second = run_once(), run_once()
        assert first.makespan == second.makespan
        assert first.schedule.lock_waits == second.schedule.lock_waits
