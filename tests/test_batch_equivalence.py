"""Batch/sequential equivalence of the group-by-leaf execution engine.

The batch engine's contract (see :mod:`repro.update.batch`) is that a batch
produces the same index contents — the same answers to every query, and a
structurally valid tree — as applying its operations one at a time.  These
property-style tests check that contract for every strategy, across
distributions, batch sizes, and batch orderings:

* applying the same update stream per-op and batched yields identical
  ``range_query`` answers everywhere and both indexes pass ``validate()``;
* a *shuffled* batch (over distinct objects, so per-object order is moot)
  still matches the sequentially-applied original order;
* queries embedded in a batch act as barriers and observe exactly the
  positions a sequential execution would.
"""

import random

import pytest

from repro.geometry import Point, Rect
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import build_index


STRATEGIES = ["TD", "NAIVE", "LBU", "GBU"]


def probe_windows(count=40, seed=5):
    rng = random.Random(seed)
    windows = []
    for _ in range(count):
        cx, cy, side = rng.random(), rng.random(), rng.uniform(0.0, 0.25)
        windows.append(
            Rect(
                max(0.0, cx - side),
                max(0.0, cy - side),
                min(1.0, cx + side),
                min(1.0, cy + side),
            )
        )
    windows.append(Rect.unit())
    return windows


def assert_equivalent(baseline, batched, seed=5):
    for window in probe_windows(seed=seed):
        assert sorted(baseline.range_query(window)) == sorted(
            batched.range_query(window)
        )
    baseline.validate()
    batched.validate()
    assert len(baseline) == len(batched)


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("distribution", ["uniform", "gaussian"])
    def test_same_stream_batched_or_not(self, strategy, distribution):
        """Identical streams, one applied per-op and one batched (dups allowed)."""
        spec = WorkloadSpec(
            num_objects=300,
            num_updates=900,
            num_queries=0,
            distribution=distribution,
            max_distance=0.05,
            seed=23,
        )
        baseline = build_index(strategy, num_objects=300, seed=23)
        batched = build_index(strategy, num_objects=300, seed=23)
        gen_a, gen_b = WorkloadGenerator(spec), WorkloadGenerator(spec)
        for oid, _old, new in gen_a.updates():
            baseline.update(oid, new)
        for chunk in gen_b.update_batches(150):
            batched.update_many([(oid, new) for oid, _old, new in chunk])
        assert_equivalent(baseline, batched)
        for oid in range(300):
            assert baseline.position_of(oid) == batched.position_of(oid)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shuffled_batch_matches_sequential(self, strategy):
        """A shuffled batch over distinct objects matches the ordered per-op run."""
        rng = random.Random(41)
        baseline = build_index(strategy, num_objects=350, seed=31)
        batched = build_index(strategy, num_objects=350, seed=31)
        for round_seed in (1, 2, 3):
            oids = rng.sample(range(350), 140)
            moves = []
            for oid in oids:
                position = baseline.position_of(oid)
                step = 0.12 if oid % 5 == 0 else 0.02  # mix locals and escapees
                new = Point(
                    min(1.0, max(0.0, position.x + rng.uniform(-step, step))),
                    min(1.0, max(0.0, position.y + rng.uniform(-step, step))),
                )
                moves.append((oid, new))
            for oid, new in moves:
                baseline.update(oid, new)
            shuffled = list(moves)
            rng.shuffle(shuffled)
            batched.update_many(shuffled)
            assert_equivalent(baseline, batched, seed=round_seed)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_queries_inside_a_batch_are_barriers(self, strategy):
        """A query in a mixed batch sees every operation that precedes it."""
        spec = WorkloadSpec(
            num_objects=250,
            num_updates=600,
            num_queries=0,
            max_distance=0.06,
            seed=7,
        )
        baseline = build_index(strategy, num_objects=250, seed=7)
        batched = build_index(strategy, num_objects=250, seed=7)
        gen_a, gen_b = WorkloadGenerator(spec), WorkloadGenerator(spec)

        sequential_answers = []
        ops = []
        window = Rect(0.2, 0.2, 0.7, 0.7)
        for position, (oid, _old, new) in enumerate(gen_a.updates()):
            baseline.update(oid, new)
            if position % 97 == 0:
                sequential_answers.append(sorted(baseline.range_query(window)))
        for position, (oid, _old, new) in enumerate(gen_b.updates()):
            ops.append(("update", oid, new))
            if position % 97 == 0:
                ops.append(("range_query", window))
        result = batched.apply(ops)

        assert [sorted(answer) for answer in result.queries] == sequential_answers
        assert_equivalent(baseline, batched)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_inserts_and_deletes_flush_pending_updates(self, strategy):
        baseline = build_index(strategy, num_objects=200, seed=19)
        batched = build_index(strategy, num_objects=200, seed=19)
        rng = random.Random(19)
        ops = []
        next_oid = 200
        for _ in range(300):
            roll = rng.random()
            if roll < 0.7:
                oid = rng.randrange(200)
                if baseline.position_of(oid) is None:
                    continue
                new = Point(rng.random(), rng.random())
                ops.append(("update", oid, new))
            elif roll < 0.85:
                ops.append(("insert", next_oid, Point(rng.random(), rng.random())))
                next_oid += 1
            else:
                oid = rng.randrange(200)
                ops.append(("delete", oid))
        for op in ops:
            if op[0] == "update":
                if baseline.position_of(op[1]) is not None:
                    baseline.update(op[1], op[2])
            elif op[0] == "insert":
                baseline.insert(op[1], op[2])
            else:
                baseline.delete(op[1], strict=False)
        # The batch facade mirrors the same skip-absent rule for deletes and
        # raises for updates of absent objects, so filter identically.
        filtered = []
        alive = {oid for oid in range(200)} | set()
        for op in ops:
            if op[0] == "update" and op[1] not in alive:
                continue
            if op[0] == "insert":
                alive.add(op[1])
            if op[0] == "delete":
                alive.discard(op[1])
            filtered.append(op)
        batched.apply(filtered)
        assert_equivalent(baseline, batched)


class TestBatchCostAdvantage:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batch_needs_fewer_physical_reads(self, strategy):
        """Group-by-leaf execution beats the per-op loop on physical reads.

        Small-scale version of the acceptance benchmark
        (``benchmarks/bench_batch_throughput.py`` runs the 10k-update
        Gaussian workload).
        """
        spec = WorkloadSpec(
            num_objects=600,
            num_updates=1500,
            num_queries=0,
            distribution="gaussian",
            max_distance=0.03,
            seed=3,
        )
        per_op = build_index(strategy, num_objects=600, seed=3)
        batched = build_index(strategy, num_objects=600, seed=3)
        gen_a, gen_b = WorkloadGenerator(spec), WorkloadGenerator(spec)
        for oid, _old, new in gen_a.updates():
            per_op.update(oid, new)
        for chunk in gen_b.update_batches(500):
            batched.update_many([(oid, new) for oid, _old, new in chunk])
        assert batched.stats.physical_reads < per_op.stats.physical_reads
        assert_equivalent(per_op, batched)
