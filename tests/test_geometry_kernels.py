"""Property tests: the batch kernels agree exactly with the scalar Rect ops.

The packed node layout answers every geometric question through
:mod:`repro.geometry.kernels` instead of per-entry :class:`Rect` calls, so
layout equivalence rests on one contract: **each kernel reproduces the scalar
predicate exactly** — same floats, same booleans, same tie-breaks — on every
backend.  These properties drive random rectangle buffers (including
degenerate point-rects and exactly-touching edges, the cases the moving-point
workload hits constantly) through every kernel and compare against a scalar
reference loop.
"""

from array import array
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect, kernels, union_all

# Mix plain floats with ones snapped to a coarse grid so exact ties and
# exactly-touching edges occur often instead of almost never.
_fine = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
_coarse = st.integers(min_value=0, max_value=8).map(lambda n: n / 8.0)
coordinates = st.one_of(_fine, _coarse)


@st.composite
def rect_tuples(draw):
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return (x1, y1, x2, y2)


@st.composite
def coord_buffers(draw, min_rects=1, max_rects=12):
    count = draw(st.integers(min_value=min_rects, max_value=max_rects))
    buffer = array("d")
    for _ in range(count):
        buffer.extend(draw(rect_tuples()))
    return buffer


def rects_of(coords):
    return [Rect(*coords[base : base + 4]) for base in range(0, len(coords), 4)]


BACKENDS = kernels.available_backends()


@contextmanager
def using_backend(name):
    previous = kernels.get_backend()
    kernels.set_backend(name)
    try:
        yield
    finally:
        kernels.set_backend(previous)


def on_every_backend(check):
    """Run *check* once per available backend (python always, numpy if present)."""
    for name in BACKENDS:
        with using_backend(name):
            check(name)


class TestBackendSelection:
    def test_python_backend_always_available(self):
        assert "python" in kernels.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")

    def test_set_backend_returns_effective_backend(self):
        with using_backend("python"):
            assert kernels.get_backend() == "python"
            # Requesting numpy either engages it or degrades to python —
            # never an error (the pure-Python fallback is mandatory).
            assert kernels.set_backend("numpy") in ("python", "numpy")


class TestUnionBounds:
    @settings(max_examples=150)
    @given(coord_buffers())
    def test_matches_union_all(self, coords):
        expected = union_all(rects_of(coords)).as_tuple()
        on_every_backend(
            lambda name: _check_equal(kernels.union_bounds(coords), expected, name)
        )

    def test_empty_buffer_rejected(self):
        def check(name):
            with pytest.raises(ValueError):
                kernels.union_bounds(array("d"))

        on_every_backend(check)

    def test_union_rect_is_exact(self):
        coords = array("d", [0.1, 0.2, 0.3, 0.4, 0.25, 0.1, 0.9, 0.35])
        on_every_backend(
            lambda name: _check_equal(
                kernels.union_rect(coords), Rect(0.1, 0.1, 0.9, 0.4), name
            )
        )


class TestIntersectsMany:
    @settings(max_examples=150)
    @given(coord_buffers(), rect_tuples())
    def test_matches_scalar_intersects(self, coords, window):
        expected = [
            index
            for index, rect in enumerate(rects_of(coords))
            if rect.intersects(Rect(*window))
        ]
        on_every_backend(
            lambda name: _check_equal(
                kernels.intersects_many(coords, *window), expected, name
            )
        )

    def test_touching_edge_counts_as_intersection(self):
        coords = array("d", [0.0, 0.0, 0.5, 0.5])

        def check(name):
            assert kernels.intersects_many(coords, 0.5, 0.5, 1.0, 1.0) == [0]
            assert kernels.intersects_many(coords, 0.5 + 1e-12, 0.5, 1.0, 1.0) == []

        on_every_backend(check)

    def test_degenerate_point_rects(self):
        coords = array("d", [0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75])

        def check(name):
            assert kernels.intersects_many(coords, 0.0, 0.0, 0.5, 0.5) == [0]
            assert kernels.intersects_many(coords, 0.25, 0.25, 0.75, 0.75) == [0, 1]

        on_every_backend(check)


class TestGatherVariants:
    """The *_ids kernels return ``ids[i]`` for exactly the matching indices."""

    @settings(max_examples=150)
    @given(coord_buffers(), rect_tuples())
    def test_intersects_ids_matches_index_variant(self, coords, window):
        ids = array("I", range(100, 100 + len(coords) // 4))
        expected = [ids[i] for i in kernels.intersects_many(coords, *window)]
        on_every_backend(
            lambda name: _check_equal(
                kernels.intersects_ids(coords, ids, *window), expected, name
            )
        )

    @settings(max_examples=150)
    @given(coord_buffers(), coordinates, coordinates)
    def test_contains_point_ids_matches_index_variant(self, coords, x, y):
        ids = array("I", range(100, 100 + len(coords) // 4))
        expected = [ids[i] for i in kernels.contains_point_many(coords, x, y)]
        on_every_backend(
            lambda name: _check_equal(
                kernels.contains_point_ids(coords, ids, x, y), expected, name
            )
        )


class TestContainedInMany:
    @settings(max_examples=150)
    @given(coord_buffers(), rect_tuples())
    def test_matches_scalar_contains_rect(self, coords, window):
        container = Rect(*window)
        expected = [
            index
            for index, rect in enumerate(rects_of(coords))
            if container.contains_rect(rect)
        ]
        on_every_backend(
            lambda name: _check_equal(
                kernels.contained_in_many(coords, *window), expected, name
            )
        )

    def test_boundary_touch_is_contained(self):
        coords = array("d", [0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.5 + 1e-12, 0.5])

        def check(name):
            assert kernels.contained_in_many(coords, 0.0, 0.0, 0.5, 0.5) == [0]
            assert kernels.contained_in_many(coords, 0.0, 0.0, 1.0, 1.0) == [0, 1]

        on_every_backend(check)


class TestContainsPointMany:
    @settings(max_examples=150)
    @given(coord_buffers(), coordinates, coordinates)
    def test_matches_scalar_contains_point(self, coords, x, y):
        expected = [
            index
            for index, rect in enumerate(rects_of(coords))
            if rect.contains_point(Point(x, y))
        ]
        on_every_backend(
            lambda name: _check_equal(
                kernels.contains_point_many(coords, x, y), expected, name
            )
        )

    def test_boundary_is_inclusive(self):
        coords = array("d", [0.0, 0.0, 0.5, 0.5])

        def check(name):
            assert kernels.contains_point_many(coords, 0.5, 0.0) == [0]
            assert kernels.contains_point_many(coords, 0.5, 0.5) == [0]

        on_every_backend(check)

    def test_point_rect_contains_only_itself(self):
        coords = array("d", [0.3, 0.7, 0.3, 0.7])

        def check(name):
            assert kernels.contains_point_many(coords, 0.3, 0.7) == [0]
            assert kernels.contains_point_many(coords, 0.3, 0.7 + 1e-12) == []

        on_every_backend(check)


class TestEnlargement:
    @settings(max_examples=150)
    @given(coord_buffers(), rect_tuples())
    def test_matches_scalar_enlargement_exactly(self, coords, query):
        query_rect = Rect(*query)
        # Bit-exact, not approximate: the kernel mirrors the scalar
        # operation order, so == must hold for every float.
        expected = [
            rect.enlargement_to_include(query_rect) for rect in rects_of(coords)
        ]
        on_every_backend(
            lambda name: _check_equal(
                kernels.enlargement_many(coords, *query), expected, name
            )
        )

    @settings(max_examples=150)
    @given(coord_buffers(), rect_tuples())
    def test_argmin_matches_sequential_first_wins_scan(self, coords, query):
        query_rect = Rect(*query)
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        for index, rect in enumerate(rects_of(coords)):
            enlargement = rect.enlargement_to_include(query_rect)
            area = rect.area()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = index
                best_enlargement = enlargement
                best_area = area
        on_every_backend(
            lambda name: _check_equal(
                kernels.argmin_enlargement(coords, *query), best_index, name
            )
        )

    def test_tie_broken_by_first_index(self):
        # Two identical rects already containing the query: zero enlargement,
        # equal area — the first one must win, like the sequential scan.
        coords = array("d", [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0])
        on_every_backend(
            lambda name: _check_equal(
                kernels.argmin_enlargement(coords, 0.4, 0.4, 0.6, 0.6), 0, name
            )
        )

    def test_empty_buffer_rejected(self):
        def check(name):
            with pytest.raises(ValueError):
                kernels.argmin_enlargement(array("d"), 0.0, 0.0, 1.0, 1.0)

        on_every_backend(check)


class TestMinDistanceMany:
    @settings(max_examples=150)
    @given(coord_buffers(), coordinates, coordinates)
    def test_matches_scalar_distance_exactly(self, coords, x, y):
        point = Point(x, y)
        expected = [rect.min_distance_to_point(point) for rect in rects_of(coords)]
        on_every_backend(
            lambda name: _check_equal(
                kernels.min_distance_many(coords, x, y), expected, name
            )
        )

    def test_zero_inside_and_on_boundary(self):
        coords = array("d", [0.0, 0.0, 1.0, 1.0])

        def check(name):
            assert kernels.min_distance_many(coords, 0.5, 0.5) == [0.0]
            assert kernels.min_distance_many(coords, 1.0, 0.5) == [0.0]

        on_every_backend(check)


def _check_equal(actual, expected, backend_name):
    assert actual == expected, f"backend {backend_name!r}: {actual!r} != {expected!r}"
