"""Tests for the declarative builder: specs, round-trips, checkpoint sharing."""

import json
import random

import pytest

from repro.api import (
    IndexBuilder,
    config_from_spec,
    config_to_spec,
    index_spec,
    open_index,
)
from repro.core import IndexConfig, MovingObjectIndex, load_index, save_index
from repro.geometry import Point, Rect
from repro.shard import ShardedIndex
from repro.shard.partitioner import BoundaryPartitioner
from repro.update import TuningParameters

from tests.conftest import SMALL_PAGE_SIZE, make_points


class TestConfigCodec:
    def test_round_trip_preserves_every_field(self):
        config = IndexConfig(
            strategy="LBU",
            page_size=512,
            buffer_percent=2.5,
            split="rstar",
            reinsert_on_underflow=False,
            charge_hash_io=False,
            params=TuningParameters(epsilon=0.01, level_threshold=2),
        )
        assert config_from_spec(config_to_spec(config)) == config

    def test_spec_is_json_safe(self):
        spec = config_to_spec(IndexConfig())
        assert config_from_spec(json.loads(json.dumps(spec))) == IndexConfig()

    def test_partial_spec_fills_defaults(self):
        config = config_from_spec({"strategy": "TD"})
        assert config.strategy == "TD"
        assert config.page_size == IndexConfig().page_size
        assert config.params == TuningParameters.paper_defaults()


class TestOpenIndex:
    def test_default_spec_builds_a_single_index(self):
        index = open_index()
        assert isinstance(index, MovingObjectIndex)
        assert index.config.strategy == "GBU"

    def test_sharded_spec_builds_a_sharded_index(self):
        index = open_index({"kind": "sharded", "shards": 8})
        assert isinstance(index, ShardedIndex)
        assert index.num_shards == 8

    def test_shards_one_is_a_single_shard_topology(self):
        index = open_index({"shards": 1})
        assert isinstance(index, ShardedIndex)
        assert index.num_shards == 1

    def test_overrides_merge_over_the_spec(self):
        spec = {"kind": "sharded", "shards": 2}
        index = open_index(spec, shards=8)
        assert index.num_shards == 8
        assert spec["shards"] == 2  # the caller's dict is not mutated

    def test_explicit_partitioner_spec(self):
        index = open_index(
            {
                "kind": "sharded",
                "partitioner": {
                    "kind": "boundaries",
                    "boundaries": [[0, 0, 0.5, 1], [0.5, 0, 1, 1]],
                },
            }
        )
        assert isinstance(index.partitioner, BoundaryPartitioner)
        assert index.num_shards == 2

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValueError):
            open_index({"shardz": 4})

    def test_conflicting_kind_rejected(self):
        with pytest.raises(ValueError):
            open_index({"kind": "single", "shards": 4})
        with pytest.raises(ValueError):
            open_index({"kind": "elastic"})


class TestIndexBuilder:
    def test_fluent_chain_equals_spec_construction(self):
        built = (
            IndexBuilder()
            .strategy("LBU")
            .page_size(512)
            .buffer_percent(2.0)
            .split("linear")
            .params(epsilon=0.02)
            .config_field("charge_hash_io", False)
            .build()
        )
        from_spec = open_index(
            {
                "config": {
                    "strategy": "LBU",
                    "page_size": 512,
                    "buffer_percent": 2.0,
                    "split": "linear",
                    "charge_hash_io": False,
                    "params": {"epsilon": 0.02},
                }
            }
        )
        assert built.config == from_spec.config

    def test_spec_emission_round_trips(self):
        builder = IndexBuilder().strategy("TD").shards(4).engine(num_clients=16)
        spec = builder.spec()
        again = index_spec(open_index(spec))
        assert again == spec

    def test_to_json_is_parseable_and_equivalent(self):
        builder = IndexBuilder().strategy("GBU").shards(2)
        spec = json.loads(builder.to_json())
        assert index_spec(open_index(spec)) == builder.spec()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            IndexBuilder().shards(0)


class TestSpecCheckpointRoundTrip:
    """Acceptance: spec -> index -> checkpoint -> load -> identical spec and
    identical query results, for both facade kinds."""

    @pytest.mark.parametrize(
        "spec",
        [
            {
                "kind": "single",
                "config": {"strategy": "GBU", "page_size": SMALL_PAGE_SIZE},
                "engine": {"num_clients": 12},
            },
            {
                "kind": "sharded",
                "shards": 4,
                "config": {"strategy": "LBU", "page_size": SMALL_PAGE_SIZE},
                "engine": {"num_clients": 8, "time_per_io": 0.02},
            },
        ],
        ids=["single", "sharded"],
    )
    def test_round_trip(self, spec, tmp_path):
        index = open_index(spec)
        index.load(make_points(300, seed=23))
        rng = random.Random(9)
        for _ in range(150):
            index.update(rng.randrange(300), Point(rng.random(), rng.random()))
        canonical = index_spec(index)

        path = tmp_path / "checkpoint.json"
        save_index(index, path)
        restored = load_index(path)

        assert index_spec(restored) == canonical
        windows = [
            Rect(0.1, 0.1, 0.4, 0.4),
            Rect(0.3, 0.5, 0.9, 0.95),
            Rect(0.0, 0.0, 1.0, 1.0),
        ]
        for window in windows:
            assert sorted(restored.range_query(window)) == sorted(
                index.range_query(window)
            )
        # The page codec stores coordinates as 32-bit floats (the paper's
        # entry format), so distances agree to float32 precision.
        restored_nn = restored.knn(Point(0.5, 0.5), 9)
        original_nn = index.knn(Point(0.5, 0.5), 9)
        assert [oid for _d, oid in restored_nn] == [oid for _d, oid in original_nn]
        for (restored_d, _), (original_d, _) in zip(restored_nn, original_nn):
            assert restored_d == pytest.approx(original_d, abs=1e-6)
        # Engine defaults survive the checkpoint: sessions open identically.
        assert restored.engine().num_clients == index.engine().num_clients
        restored.validate()
