"""The online shard rebalancer: monitor, policy, planner, and the full loop.

The tentpole of the rebalancing PR: a :class:`ShardRebalancer` attached to a
:class:`ShardedIndex` watches per-shard load, re-cuts the partition
boundaries when the max/mean load exceeds its threshold, and migrates the
displaced objects — as bulk leaf groups scheduled through the concurrent
engine, interleaved with live client traffic.  These tests cover every
layer: the load monitor's counters and I/O sampling, the trigger policy,
the weighted boundary planner, the plan/migrate cycle (serial and
scheduled), answer equivalence with a single index before, during ("mid
rebalance": boundaries installed, objects not yet moved) and after a
rebalance, and the spec/checkpoint round-trips.
"""

import random

import pytest

from repro.api import index_spec, open_index
from repro.core import IndexConfig, MovingObjectIndex
from repro.core.persistence import load_index, save_index
from repro.geometry import Point, Rect
from repro.shard import (
    BoundaryPartitioner,
    GridPartitioner,
    RebalancePolicy,
    ShardedIndex,
    ShardLoadMonitor,
    ShardRebalancer,
    plan_boundaries,
)
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


HOTSPOT_SPEC = WorkloadSpec(
    num_objects=600,
    num_updates=0,
    num_queries=0,
    seed=7,
    distribution="hotspot",
    hotspot_cells=2,
    hotspot_exponent=3.0,
)


def build_hotspot_sharded(rebalance=None, num_shards=4, strategy="TD"):
    spec = {
        "kind": "sharded",
        "shards": num_shards,
        "config": {
            "strategy": strategy,
            "page_size": SMALL_PAGE_SIZE,
            "buffer_percent": 0.0,
        },
        "engine": {"num_clients": 8},
    }
    if rebalance is not None:
        spec["rebalance"] = rebalance
    index = open_index(spec)
    index.load(WorkloadGenerator(HOTSPOT_SPEC).initial_objects())
    return index


def local_update_stream(index, count, seed=11, hot_only=True):
    """Seeded small-step updates, drawn mostly from the hot population."""
    rng = random.Random(seed)
    oids = sorted(index.object_directory())
    stream = []
    for _ in range(count):
        oid = rng.choice(oids)
        position = index.position_of(oid)
        stream.append(
            (
                "update",
                oid,
                Point(
                    min(max(position.x + (rng.random() - 0.5) * 0.02, 0.0), 1.0),
                    min(max(position.y + (rng.random() - 0.5) * 0.02, 0.0), 1.0),
                ),
            )
        )
    return stream


class TestShardLoadMonitor:
    def test_counters_accumulate_per_shard(self):
        monitor = ShardLoadMonitor(3)
        monitor.record_update(0, 5)
        monitor.record_query(2, 2)
        assert monitor.loads() == [5.0, 0.0, 2.0]
        assert monitor.total_operations() == 7

    def test_imbalance_is_max_over_mean(self):
        monitor = ShardLoadMonitor(4)
        for _ in range(30):
            monitor.record_update(0)
        for shard in (1, 2, 3):
            monitor.record_update(shard, 10)
        assert monitor.imbalance() == pytest.approx(30 * 4 / 60)

    def test_idle_monitor_reads_as_balanced(self):
        assert ShardLoadMonitor(4).imbalance() == 1.0

    def test_io_sampling_reads_shard_statistics(self):
        index = build_hotspot_sharded()
        monitor = ShardLoadMonitor(index.num_shards)
        monitor.sample_io(index.shards)  # baseline marks
        monitor.reset(index.shards)
        index.range_query(Rect(0.0, 0.0, 0.3, 0.3))
        monitor.sample_io(index.shards)
        assert sum(monitor.physical_io) > 0
        # A second sample with no traffic adds nothing.
        snapshot = list(monitor.physical_io)
        monitor.sample_io(index.shards)
        assert monitor.physical_io == snapshot


class TestRebalancePolicy:
    def test_requires_evidence_before_triggering(self):
        policy = RebalancePolicy(threshold=1.5, min_ops=10, cooldown=20)
        monitor = ShardLoadMonitor(2)
        monitor.record_update(0, 9)  # heavy skew, not enough evidence
        assert not policy.should_trigger(monitor, rebalances=0)
        monitor.record_update(0, 1)
        assert policy.should_trigger(monitor, rebalances=0)

    def test_cooldown_applies_after_the_first_rebalance(self):
        policy = RebalancePolicy(threshold=1.5, min_ops=5, cooldown=50)
        monitor = ShardLoadMonitor(2)
        monitor.record_update(0, 10)
        assert policy.should_trigger(monitor, rebalances=0)
        assert not policy.should_trigger(monitor, rebalances=1)

    def test_balanced_load_never_triggers(self):
        policy = RebalancePolicy(threshold=1.5, min_ops=1)
        monitor = ShardLoadMonitor(2)
        monitor.record_update(0, 50)
        monitor.record_update(1, 50)
        assert not policy.should_trigger(monitor, rebalances=0)

    def test_spec_round_trip(self):
        policy = RebalancePolicy(threshold=2.5, cooldown=123, min_ops=7)
        assert RebalancePolicy.from_spec(policy.to_spec()) == policy

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            RebalancePolicy(threshold=1.0)
        with pytest.raises(ValueError):
            RebalancePolicy.from_spec({"nope": 1})


class TestBoundaryPlanner:
    def test_equal_weights_equalise_population(self):
        rng = random.Random(3)
        items = [
            (Point(rng.random() * 0.4, rng.random() * 0.4), 1.0)
            for _ in range(200)
        ]
        partitioner = plan_boundaries(items, 4)
        assert isinstance(partitioner, BoundaryPartitioner)
        counts = [0] * 4
        for point, _w in items:
            counts[partitioner.shard_of(point)] += 1
        assert max(counts) * 4 / sum(counts) < 1.5

    def test_partition_remains_total_over_the_unit_square(self):
        rng = random.Random(5)
        items = [(Point(rng.random(), rng.random()), rng.random()) for _ in range(50)]
        partitioner = plan_boundaries(items, 6)
        for x in (0.0, 0.25, 0.5, 0.999, 1.0):
            for y in (0.0, 0.5, 1.0):
                assert 0 <= partitioner.shard_of(Point(x, y)) < 6

    def test_degenerate_inputs_still_cover_the_square(self):
        # All-equal coordinates, and no items at all.
        same = [(Point(0.5, 0.5), 1.0)] * 10
        for items in (same, []):
            partitioner = plan_boundaries(items, 4)
            assert partitioner.num_shards == 4
            assert 0 <= partitioner.shard_of(Point(0.123, 0.987)) < 4

    def test_weighted_cut_shifts_boundaries_towards_the_load(self):
        # Heavy weight in the left quarter pulls the x-cut left of 0.5.
        items = [(Point(0.05 + 0.002 * i, 0.5), 10.0) for i in range(100)]
        items += [(Point(0.3 + 0.007 * i, 0.25), 0.1) for i in range(100)]
        partitioner = plan_boundaries(items, 2)
        boundary = partitioner.boundary(0)
        assert boundary.xmax < 0.5


class TestRebalanceCycle:
    def test_forced_rebalance_balances_a_hotspot(self):
        index = build_hotspot_sharded()
        before = index.population_imbalance()
        assert before > 1.5  # the hotspot concentrates the population
        report = index.rebalance(force=True)
        assert report.triggered
        assert report.moves > 0
        assert index.population_imbalance() < before
        assert index.population_imbalance() < 1.5
        index.validate()

    def test_unforced_rebalance_without_evidence_is_a_no_op(self):
        index = build_hotspot_sharded()
        report = index.rebalance()
        assert not report.triggered
        assert isinstance(index.partitioner, GridPartitioner)

    def test_rebalance_preserves_answers(self):
        config = IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE)
        single = MovingObjectIndex(config)
        single.load(WorkloadGenerator(HOTSPOT_SPEC).initial_objects())
        index = build_hotspot_sharded()

        windows = [
            Rect(0.0, 0.0, 0.3, 0.3),
            Rect(0.2, 0.1, 0.6, 0.5),
            Rect(0.0, 0.0, 1.0, 1.0),
        ]

        def answers(facade):
            return (
                [sorted(facade.range_query(window)) for window in windows],
                [facade.knn(Point(x, y), 7) for x, y in ((0.1, 0.1), (0.7, 0.8))],
                {oid: facade.position_of(oid) for oid in range(600)},
            )

        expected = answers(single)
        assert answers(index) == expected
        index.rebalance(force=True)
        assert answers(index) == expected
        index.validate()

    def test_mid_rebalance_answers_stay_equivalent(self):
        """Between the boundary re-cut and the migrations, queries hold."""
        index = build_hotspot_sharded()
        rebalancer = ShardRebalancer(index.num_shards)
        rebalancer.monitor.reset(index.shards)
        plan = rebalancer.plan(index, force=True)
        assert plan is not None and plan.moves

        single = MovingObjectIndex(
            IndexConfig(strategy="TD", page_size=SMALL_PAGE_SIZE)
        )
        single.load(WorkloadGenerator(HOTSPOT_SPEC).initial_objects())

        # Install the new boundaries WITHOUT migrating: the mid-rebalance
        # window every query during a live rebalance observes.
        index.partitioner = plan.partitioner
        windows = [Rect(0.0, 0.0, 0.25, 0.25), Rect(0.1, 0.1, 0.9, 0.9)]
        for window in windows:
            assert sorted(index.range_query(window)) == sorted(
                single.range_query(window)
            )
        for x, y in ((0.05, 0.05), (0.5, 0.5)):
            assert index.knn(Point(x, y), 9) == single.knn(Point(x, y), 9)
        # Updates during the window migrate lazily through the new routing.
        moving = plan.moves[0]
        position = index.position_of(moving)
        index.update(moving, position)
        assert index.shard_for(moving) == index.partitioner.shard_of(position)
        # Finish the rebalance: every object lands where it routes.
        for oid in plan.moves:
            index.reroute(oid)
        index.validate()

    def test_migrate_leaf_group_moves_a_planned_bucket(self):
        index = build_hotspot_sharded()
        rebalancer = ShardRebalancer(index.num_shards)
        rebalancer.monitor.reset(index.shards)
        plan = rebalancer.plan(index, force=True)
        index.partitioner = plan.partitioner
        assert plan.buckets
        source_id, leaf_page, members = plan.buckets[0]
        moved = index.migrate_leaf_group(source_id, leaf_page, members)
        assert moved == len(members)
        for oid in members:
            assert index.shard_for(oid) == index.partitioner.shard_of(
                index.position_of(oid)
            )

    def test_migrate_leaf_group_tolerates_drifted_members(self):
        index = build_hotspot_sharded()
        rebalancer = ShardRebalancer(index.num_shards)
        rebalancer.monitor.reset(index.shards)
        plan = rebalancer.plan(index, force=True)
        index.partitioner = plan.partitioner
        source_id, leaf_page, members = max(
            plan.buckets, key=lambda bucket: len(bucket[2])
        )
        # One member was deleted, one already migrated by a client update.
        index.delete(members[0])
        if len(members) > 1:
            index.update(members[1], index.position_of(members[1]))
        index.migrate_leaf_group(source_id, leaf_page, members)
        for oid in members[1:]:
            assert index.shard_for(oid) == index.partitioner.shard_of(
                index.position_of(oid)
            )
        # Finish the plan so the whole directory is consistent again.
        for oid in plan.moves:
            if oid in index:
                index.reroute(oid)
        index.validate()


class TestAutoTrigger:
    POLICY = {"threshold": 1.5, "min_ops": 100, "cooldown": 100_000}

    def test_engine_run_triggers_and_rebalances_inline(self):
        index = build_hotspot_sharded(rebalance=self.POLICY)
        before = index.population_imbalance()
        session = index.engine()
        result = session.run_shared(local_update_stream(index, 400))
        assert index.rebalancer.rebalances == 1
        assert result.kinds.get("rebalance", 0) > 0
        assert index.population_imbalance() < before
        index.validate()

    def test_engine_run_without_skew_never_triggers(self):
        # min_ops is the noise floor: with only ~100 operations of evidence
        # a uniform workload can transiently read as 1.5x imbalanced, so a
        # production policy wants a larger evidence window.
        spec = {
            "kind": "sharded",
            "shards": 4,
            "config": {"strategy": "TD", "page_size": SMALL_PAGE_SIZE},
            "engine": {"num_clients": 8},
            "rebalance": {"threshold": 1.5, "min_ops": 300, "cooldown": 100_000},
        }
        index = open_index(spec)
        index.load(
            WorkloadGenerator(
                WorkloadSpec(num_objects=600, num_updates=0, num_queries=0, seed=7)
            ).initial_objects()
        )
        index.engine().run_shared(local_update_stream(index, 400))
        assert index.rebalancer.rebalances == 0
        assert isinstance(index.partitioner, GridPartitioner)

    def test_engine_run_stays_equivalent_to_serial_replay(self):
        """Mid-rebalance engine traffic commits the same final state."""
        stream = None
        final = {}
        for attach in (False, True):
            index = build_hotspot_sharded(
                rebalance=self.POLICY if attach else None
            )
            if stream is None:
                stream = local_update_stream(index, 400)
            session = index.engine()
            session.run_shared(list(stream))
            index.validate()
            final[attach] = {
                oid: index.position_of(oid) for oid in range(600)
            }
        # The rebalancer moves objects between shards but never changes what
        # the facade answers: both runs commit identical final positions.
        assert final[False] == final[True]

    def test_serial_batch_path_triggers_after_the_batch(self):
        index = build_hotspot_sharded(
            rebalance={"threshold": 1.5, "min_ops": 50, "cooldown": 100_000}
        )
        before = index.population_imbalance()
        updates = [
            (oid, new) for kind, oid, new in local_update_stream(index, 200)
        ]
        index.update_many(updates)
        assert index.rebalancer.rebalances == 1
        assert index.population_imbalance() < before
        index.validate()

    def test_rebalance_migrations_do_not_refill_the_evidence_window(self):
        """Regression: the rebalancer's own migration traffic must not land
        in the load monitor, or a re-cut displacing more objects than the
        cooldown re-satisfies the trigger gate by itself and storms into
        back-to-back rebalances."""
        index = build_hotspot_sharded(
            rebalance={"threshold": 1.5, "min_ops": 100, "cooldown": 150}
        )
        # Sustained hotspot traffic with a small cooldown: one decisive
        # rebalance (the hot region is re-cut and the skew is gone), not one
        # per cooldown window.
        session = index.engine()
        session.run_shared(local_update_stream(index, 600))
        assert index.rebalancer.rebalances == 1
        # A forced serial rebalance likewise leaves the window empty: the
        # migrations themselves were never recorded as load.
        fresh = build_hotspot_sharded(
            rebalance={"threshold": 1.5, "min_ops": 100, "cooldown": 150}
        )
        fresh.rebalance(force=True)
        assert fresh.rebalancer.monitor.total_operations() == 0

    def test_rebalancer_survives_gbu_strategy(self):
        index = build_hotspot_sharded(
            rebalance=self.POLICY, strategy="GBU"
        )
        index.engine().run_shared(local_update_stream(index, 400))
        assert index.rebalancer.rebalances == 1
        index.validate()


class TestSpecAndPersistence:
    def test_builder_spec_round_trip(self):
        spec = {
            "kind": "sharded",
            "shards": 4,
            "config": {"strategy": "TD", "page_size": SMALL_PAGE_SIZE},
            "rebalance": {"threshold": 2.0, "cooldown": 300, "min_ops": 64},
        }
        index = open_index(spec)
        assert index.rebalancer is not None
        assert index.rebalancer.policy.threshold == 2.0
        emitted = index_spec(index)
        assert emitted["rebalance"] == {
            "threshold": 2.0,
            "cooldown": 300,
            "min_ops": 64,
        }
        assert index_spec(open_index(emitted)) == emitted

    def test_rebalance_spec_requires_sharded_kind(self):
        with pytest.raises(ValueError):
            open_index({"kind": "single", "rebalance": {"threshold": 2.0}})

    def test_checkpoint_preserves_rebalancer_state(self, tmp_path):
        index = build_hotspot_sharded(
            rebalance={"threshold": 1.5, "min_ops": 10, "cooldown": 100_000}
        )
        index.rebalance(force=True)
        assert index.rebalancer.rebalances == 1
        path = tmp_path / "rebalanced.ckpt"
        save_index(index, path)
        restored = load_index(path)
        assert isinstance(restored, ShardedIndex)
        assert restored.rebalancer is not None
        assert restored.rebalancer.policy == index.rebalancer.policy
        assert restored.rebalancer.rebalances == 1
        # The re-cut boundaries travelled with the checkpoint too.
        assert isinstance(restored.partitioner, BoundaryPartitioner)
        assert restored.partitioner.to_spec() == index.partitioner.to_spec()
        restored.validate()
        # Positions travel through the 32-bit on-page entry format.
        for oid in range(600):
            original = index.position_of(oid)
            position = restored.position_of(oid)
            assert position.x == pytest.approx(original.x, abs=1e-6)
            assert position.y == pytest.approx(original.y, abs=1e-6)

    def test_plain_sharded_checkpoint_has_no_rebalancer(self, tmp_path):
        index = build_hotspot_sharded()
        path = tmp_path / "plain.ckpt"
        save_index(index, path)
        assert load_index(path).rebalancer is None
