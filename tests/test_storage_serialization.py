"""Tests for the binary node codec and its agreement with the page-size model."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import Entry, Node, RTree
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.storage.serialization import (
    SerializationError,
    deserialize_node,
    serialize_node,
    serialized_size,
)

from tests.conftest import SMALL_PAGE_SIZE, make_points


def leaf_with(count, seed=3, page_id=7):
    rng = random.Random(seed)
    entries = [
        Entry(Rect.from_point(Point(rng.random(), rng.random())), oid) for oid in range(count)
    ]
    return Node(page_id=page_id, level=0, entries=entries)


class TestRoundTrip:
    def test_leaf_round_trip_preserves_structure(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = leaf_with(8)
        restored = deserialize_node(node.page_id, serialize_node(node, layout), layout)
        assert restored.page_id == node.page_id
        assert restored.level == node.level
        assert [e.child for e in restored.entries] == [e.child for e in node.entries]
        for original, copy in zip(node.entries, restored.entries):
            assert copy.rect.as_tuple() == pytest.approx(original.rect.as_tuple(), rel=1e-6)

    def test_internal_node_round_trip(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = Node(
            page_id=3,
            level=2,
            entries=[Entry(Rect(0.1, 0.1, 0.4, 0.5), 11), Entry(Rect(0.5, 0.2, 0.9, 0.8), 12)],
        )
        restored = deserialize_node(3, serialize_node(node, layout), layout)
        assert restored.level == 2
        assert restored.child_ids() == [11, 12]

    def test_parent_pointer_round_trip(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = leaf_with(3)
        node.parent_page_id = 42
        restored = deserialize_node(node.page_id, serialize_node(node, layout), layout)
        assert restored.parent_page_id == 42

    def test_missing_parent_pointer_round_trip(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        restored = deserialize_node(1, serialize_node(leaf_with(3), layout), layout)
        assert restored.parent_page_id is None

    def test_stored_mbr_round_trip(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = leaf_with(3)
        node.stored_mbr = Rect(0.0, 0.0, 0.75, 0.75)
        restored = deserialize_node(node.page_id, serialize_node(node, layout), layout)
        assert restored.stored_mbr is not None
        assert restored.stored_mbr.as_tuple() == pytest.approx((0.0, 0.0, 0.75, 0.75))

    def test_empty_node_round_trip(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = Node(page_id=1, level=0)
        restored = deserialize_node(1, serialize_node(node, layout), layout)
        assert restored.entries == []


class TestSizeModelAgreement:
    def test_full_leaf_fits_in_its_page(self):
        """The fan-out promised by PageLayout must be honoured by the codec."""
        for page_size in (256, 512, 1024, 4096):
            layout = PageLayout(page_size=page_size)
            node = leaf_with(layout.leaf_capacity(), page_id=1)
            image = serialize_node(node, layout)
            assert len(image) <= page_size

    def test_full_internal_node_fits_in_its_page(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        entries = [
            Entry(Rect(0.0, 0.0, 0.1, 0.1), child) for child in range(layout.internal_capacity)
        ]
        node = Node(page_id=1, level=1, entries=entries)
        assert len(serialize_node(node, layout)) <= SMALL_PAGE_SIZE

    def test_overflowing_node_is_rejected(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        node = leaf_with(layout.leaf_capacity() * 3)
        with pytest.raises(SerializationError):
            serialize_node(node, layout)

    def test_serialized_size_matches_encoding(self):
        layout = PageLayout(page_size=1024)
        node = leaf_with(17)
        assert serialized_size(node, layout) == len(serialize_node(node, layout))

    def test_truncated_image_rejected(self):
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        image = serialize_node(leaf_with(5), layout)
        with pytest.raises(SerializationError):
            deserialize_node(1, image[: len(image) - 4], layout)
        with pytest.raises(SerializationError):
            deserialize_node(1, b"\x01\x02", layout)


class TestWholeTreeSerialization:
    def test_every_node_of_a_real_tree_serializes_within_its_page(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        layout = PageLayout(page_size=SMALL_PAGE_SIZE)
        tree = RTree(BufferPool(disk, 0, stats), layout=layout)
        for oid, point in make_points(600):
            tree.insert(oid, point)
        for node, _parent in tree.iter_nodes():
            image = serialize_node(node, layout)
            assert len(image) <= SMALL_PAGE_SIZE
            restored = deserialize_node(node.page_id, image, layout)
            assert restored.child_ids() == node.child_ids()
            assert restored.level == node.level
