"""Tests for the spatial partitioners."""

import pytest

from repro.geometry import Point, Rect
from repro.shard import (
    BoundaryPartitioner,
    GridPartitioner,
    partitioner_from_spec,
)


class TestGridPartitioner:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            GridPartitioner(0, 2)
        with pytest.raises(ValueError):
            GridPartitioner(2, -1)

    def test_for_shards_builds_near_square_grids(self):
        assert (GridPartitioner.for_shards(1).columns, GridPartitioner.for_shards(1).rows) == (1, 1)
        assert (GridPartitioner.for_shards(2).columns, GridPartitioner.for_shards(2).rows) == (2, 1)
        assert (GridPartitioner.for_shards(4).columns, GridPartitioner.for_shards(4).rows) == (2, 2)
        assert (GridPartitioner.for_shards(6).columns, GridPartitioner.for_shards(6).rows) == (3, 2)
        assert (GridPartitioner.for_shards(8).columns, GridPartitioner.for_shards(8).rows) == (4, 2)
        assert GridPartitioner.for_shards(7).num_shards == 7
        with pytest.raises(ValueError):
            GridPartitioner.for_shards(0)

    def test_every_position_lies_inside_its_shard_boundary(self):
        import random

        partitioner = GridPartitioner(4, 3)
        rng = random.Random(7)
        for _ in range(500):
            point = Point(rng.random(), rng.random())
            shard = partitioner.shard_of(point)
            assert partitioner.boundary(shard).contains_point(point)

    def test_boundaries_tile_the_unit_square(self):
        partitioner = GridPartitioner(3, 2)
        boundaries = partitioner.boundaries()
        assert len(boundaries) == 6
        total_area = sum(rect.area() for rect in boundaries)
        assert total_area == pytest.approx(1.0)

    def test_out_of_square_positions_clamp_to_edge_cells(self):
        partitioner = GridPartitioner(2, 2)
        assert partitioner.shard_of(Point(-0.5, -0.5)) == 0
        assert partitioner.shard_of(Point(1.5, 1.5)) == 3
        # exactly 1.0 belongs to the last cell
        assert partitioner.shard_of(Point(1.0, 1.0)) == 3

    def test_shards_intersecting_window(self):
        partitioner = GridPartitioner(2, 2)
        # a window inside the lower-left quadrant
        assert partitioner.shards_intersecting(Rect(0.1, 0.1, 0.3, 0.3)) == [0]
        # a window straddling the vertical boundary
        assert partitioner.shards_intersecting(Rect(0.4, 0.1, 0.6, 0.2)) == [0, 1]
        # the whole space touches every shard
        assert partitioner.shards_intersecting(Rect.unit()) == [0, 1, 2, 3]

    def test_boundary_rejects_out_of_range_shard(self):
        with pytest.raises(IndexError):
            GridPartitioner(2, 2).boundary(4)

    def test_spec_round_trip(self):
        partitioner = GridPartitioner(5, 3)
        rebuilt = partitioner_from_spec(partitioner.to_spec())
        assert isinstance(rebuilt, GridPartitioner)
        assert rebuilt.columns == 5 and rebuilt.rows == 3


class TestBoundaryPartitioner:
    def halves(self):
        return BoundaryPartitioner(
            [Rect(0.0, 0.0, 0.5, 1.0), Rect(0.5, 0.0, 1.0, 1.0)]
        )

    def test_requires_at_least_one_boundary(self):
        with pytest.raises(ValueError):
            BoundaryPartitioner([])

    def test_first_matching_boundary_wins(self):
        partitioner = self.halves()
        assert partitioner.shard_of(Point(0.2, 0.5)) == 0
        assert partitioner.shard_of(Point(0.8, 0.5)) == 1
        # the shared edge belongs to the first rectangle listing it
        assert partitioner.shard_of(Point(0.5, 0.5)) == 0

    def test_uncovered_position_is_an_error(self):
        partitioner = BoundaryPartitioner([Rect(0.0, 0.0, 0.4, 0.4)])
        with pytest.raises(ValueError):
            partitioner.shard_of(Point(0.9, 0.9))

    def test_spec_round_trip(self):
        partitioner = self.halves()
        rebuilt = partitioner_from_spec(partitioner.to_spec())
        assert isinstance(rebuilt, BoundaryPartitioner)
        assert rebuilt.boundaries() == partitioner.boundaries()

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(ValueError):
            partitioner_from_spec({"kind": "voronoi"})


class TestQuantileGridPartitioner:
    def build(self):
        from repro.shard import QuantileGridPartitioner

        return QuantileGridPartitioner(
            [0.0, 0.3, 0.7, 1.0],
            [[0.0, 0.5, 1.0], [0.0, 0.2, 1.0], [0.0, 0.8, 1.0]],
        )

    def test_is_a_boundary_partitioner_with_bisect_routing(self):
        from repro.shard import BoundaryPartitioner

        partitioner = self.build()
        assert isinstance(partitioner, BoundaryPartitioner)
        assert partitioner.num_shards == 6

    def test_routing_matches_first_containing_rectangle(self):
        """The bisect fast path must agree with the base class's linear scan
        for every point — including points exactly on interior cuts."""
        from repro.shard import BoundaryPartitioner

        partitioner = self.build()
        reference = BoundaryPartitioner(partitioner.boundaries())
        coords = [0.0, 0.1, 0.2, 0.3, 0.44, 0.5, 0.7, 0.8, 0.99, 1.0]
        for x in coords:
            for y in coords:
                point = Point(x, y)
                assert partitioner.shard_of(point) == reference.shard_of(point)

    def test_degenerate_zero_width_columns_route_like_the_scan(self):
        from repro.shard import BoundaryPartitioner, QuantileGridPartitioner

        partitioner = QuantileGridPartitioner(
            [0.0, 0.5, 0.5, 1.0],
            [[0.0, 1.0], [0.0, 1.0], [0.0, 1.0]],
        )
        reference = BoundaryPartitioner(partitioner.boundaries())
        for x in (0.0, 0.4999, 0.5, 0.5001, 1.0):
            point = Point(x, 0.5)
            assert partitioner.shard_of(point) == reference.shard_of(point)

    def test_spec_round_trip(self):
        from repro.shard import QuantileGridPartitioner, partitioner_from_spec

        partitioner = self.build()
        spec = partitioner.to_spec()
        assert spec["kind"] == "quantile_grid"
        restored = partitioner_from_spec(spec)
        assert isinstance(restored, QuantileGridPartitioner)
        assert restored.to_spec() == spec
        assert restored.boundaries() == partitioner.boundaries()

    def test_invalid_shapes_rejected(self):
        from repro.shard import QuantileGridPartitioner

        with pytest.raises(ValueError):
            QuantileGridPartitioner([0.0], [[0.0, 1.0]])
        with pytest.raises(ValueError):
            QuantileGridPartitioner([0.0, 1.0], [[0.0, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            QuantileGridPartitioner([0.0, 0.5, 1.0], [[0.0, 1.0], [0.0, 0.5, 1.0]])
