"""Integration tests for the end-to-end throughput experiment (Figure 8 machinery)."""

import pytest

from repro.concurrency import ThroughputExperiment, run_throughput
from repro.concurrency.throughput import record_traces
from repro.core import IndexConfig, MovingObjectIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


def loaded(strategy, num_objects=800, seed=3):
    spec = WorkloadSpec(
        num_objects=num_objects, num_updates=0, num_queries=0, seed=seed, query_max_side=0.15
    )
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE))
    index.load(generator.initial_objects())
    return index, generator


class TestExperimentConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThroughputExperiment(num_operations=0)
        with pytest.raises(ValueError):
            ThroughputExperiment(update_fraction=1.5)


class TestRecording:
    def test_traces_capture_every_operation(self):
        index, generator = loaded("GBU")
        experiment = ThroughputExperiment(num_operations=120, update_fraction=0.5, num_clients=8)
        traces = record_traces(index, generator, experiment)
        assert len(traces) == 120
        kinds = {trace.kind for trace in traces}
        assert kinds == {"update", "query"}

    def test_traces_have_positive_cost_and_lock_sets(self):
        index, generator = loaded("TD")
        experiment = ThroughputExperiment(num_operations=60, update_fraction=0.5, num_clients=8)
        traces = record_traces(index, generator, experiment)
        assert all(trace.physical_io >= 0 for trace in traces)
        assert any(trace.lock_requests for trace in traces)

    def test_recording_leaves_the_index_valid(self):
        index, generator = loaded("GBU")
        experiment = ThroughputExperiment(num_operations=100, update_fraction=0.8, num_clients=8)
        record_traces(index, generator, experiment)
        index.validate()

    def test_access_log_detached_after_recording(self):
        index, generator = loaded("GBU")
        experiment = ThroughputExperiment(num_operations=10, update_fraction=0.5, num_clients=4)
        record_traces(index, generator, experiment)
        assert index.buffer.access_log is None


class TestEndToEnd:
    def test_throughput_positive_for_all_strategies(self):
        for strategy in ("TD", "LBU", "GBU"):
            index, generator = loaded(strategy, num_objects=500)
            result = run_throughput(
                index,
                generator,
                ThroughputExperiment(num_operations=150, update_fraction=0.5, num_clients=8),
            )
            assert result.throughput > 0
            assert result.operations == 150

    def test_gbu_beats_td_on_update_heavy_mix(self):
        """The headline of Figure 8: under a 100 % update mix GBU sustains a
        higher transaction rate than TD."""
        results = {}
        for strategy in ("TD", "GBU"):
            index, generator = loaded(strategy, num_objects=800, seed=5)
            results[strategy] = run_throughput(
                index,
                generator,
                ThroughputExperiment(num_operations=250, update_fraction=1.0, num_clients=8),
            )
        assert results["GBU"].throughput > results["TD"].throughput

    def test_pure_query_mix_equalises_td_and_lbu(self):
        """With no updates, TD and LBU answer queries identically, so their
        simulated throughput must match exactly."""
        outcomes = {}
        for strategy in ("TD", "LBU"):
            index, generator = loaded(strategy, num_objects=500, seed=9)
            outcomes[strategy] = run_throughput(
                index,
                generator,
                ThroughputExperiment(num_operations=100, update_fraction=0.0, num_clients=8),
            )
        assert outcomes["TD"].throughput == pytest.approx(outcomes["LBU"].throughput, rel=1e-6)
