"""Integration tests for the online throughput experiment (Figure 8 machinery)."""

import pytest

from repro.concurrency import ThroughputExperiment, run_throughput
from repro.core import IndexConfig, MovingObjectIndex
from repro.workload import WorkloadGenerator, WorkloadSpec

from tests.conftest import SMALL_PAGE_SIZE


def loaded(strategy, num_objects=800, seed=3):
    spec = WorkloadSpec(
        num_objects=num_objects, num_updates=0, num_queries=0, seed=seed, query_max_side=0.15
    )
    generator = WorkloadGenerator(spec)
    index = MovingObjectIndex(IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE))
    index.load(generator.initial_objects())
    return index, generator


class TestExperimentConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ThroughputExperiment(num_operations=0)
        with pytest.raises(ValueError):
            ThroughputExperiment(update_fraction=1.5)


class TestEndToEnd:
    def test_throughput_positive_for_all_strategies(self):
        for strategy in ("TD", "NAIVE", "LBU", "GBU"):
            index, generator = loaded(strategy, num_objects=500)
            result = run_throughput(
                index,
                generator,
                ThroughputExperiment(num_operations=150, update_fraction=0.5, num_clients=8),
            )
            assert result.throughput > 0
            assert result.operations == 150

    def test_execution_is_online_and_leaves_the_index_valid(self):
        """The engine mutates the real index: positions advance and the
        structural invariants hold afterwards."""
        index, generator = loaded("GBU")
        before = {oid: index.position_of(oid) for oid in range(len(index))}
        run_throughput(
            index,
            generator,
            ThroughputExperiment(num_operations=120, update_fraction=1.0, num_clients=8),
        )
        index.validate()
        moved = sum(
            1 for oid, position in before.items() if index.position_of(oid) != position
        )
        assert moved > 0

    def test_deterministic_makespan_across_repeated_runs(self):
        """Same seed ⇒ identical makespan, bit for bit (acceptance criterion)."""
        outcomes = []
        for _ in range(2):
            index, generator = loaded("GBU", num_objects=600, seed=11)
            outcomes.append(
                run_throughput(
                    index,
                    generator,
                    ThroughputExperiment(
                        num_operations=200, update_fraction=0.6, num_clients=16
                    ),
                )
            )
        assert outcomes[0].makespan == outcomes[1].makespan
        assert outcomes[0].lock_waits == outcomes[1].lock_waits
        assert outcomes[0].total_physical_io == outcomes[1].total_physical_io

    def test_figure8_ordering_at_fifty_clients(self):
        """The paper's Figure 8 ordering: GBU ≥ LBU ≥ TD ops/sec at 50
        virtual clients on an update-heavy mix (acceptance criterion)."""
        throughput = {}
        for strategy in ("TD", "LBU", "GBU"):
            index, generator = loaded(strategy, num_objects=1500, seed=5)
            throughput[strategy] = run_throughput(
                index,
                generator,
                ThroughputExperiment(
                    num_operations=400, update_fraction=0.8, num_clients=50
                ),
            ).throughput
        assert throughput["GBU"] >= throughput["LBU"] >= throughput["TD"]

    def test_pure_query_mix_equalises_td_and_lbu(self):
        """With no updates, TD and LBU answer queries identically, so their
        scheduled throughput must match exactly."""
        outcomes = {}
        for strategy in ("TD", "LBU"):
            index, generator = loaded(strategy, num_objects=500, seed=9)
            outcomes[strategy] = run_throughput(
                index,
                generator,
                ThroughputExperiment(num_operations=100, update_fraction=0.0, num_clients=8),
            )
        assert outcomes["TD"].throughput == pytest.approx(outcomes["LBU"].throughput, rel=1e-6)

    def test_more_clients_never_reduce_throughput(self):
        results = {}
        for clients in (2, 16):
            index, generator = loaded("GBU", num_objects=600, seed=7)
            results[clients] = run_throughput(
                index,
                generator,
                ThroughputExperiment(
                    num_operations=150, update_fraction=0.5, num_clients=clients
                ),
            )
        assert results[16].throughput >= results[2].throughput - 1e-9
