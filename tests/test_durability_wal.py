"""Unit tests for the write-ahead log layer (``repro.durability``).

Covers the binary frame codec, the torn-frame / corrupt-frame distinction,
the :class:`~repro.durability.wal.WriteAheadLog` file lifecycle, the
:class:`~repro.durability.commit.DurabilityManager` sync policies and
rotation, the spec codec, and the crash-atomic checkpoint write.  End-to-end
recovery equivalence lives in ``tests/test_durability_recovery.py``; crash
simulation in ``tests/test_durability_crash_injection.py``.
"""

import json
import struct
import zlib

import pytest

from repro.api import open_index
from repro.api.errors import CheckpointError, CorruptLogError
from repro.core import IndexConfig, MovingObjectIndex
from repro.core.persistence import load_index, save_index
from repro.durability import (
    DEFAULT_GROUP_SIZE,
    DEFAULT_SYNC,
    META_SHARD,
    SINGLE_SHARD,
    SYNC_POLICIES,
    DurabilityManager,
    WriteAheadLog,
    delete_record,
    insert_record,
    last_lsn,
    meta_log_path,
    migrate_in_record,
    migrate_out_record,
    normalise_spec,
    read_frames,
    recover_index,
    repartition_record,
    shard_log_paths,
    update_record,
)
from repro.durability.wal import (
    _FRAME_HEADER,
    KIND_DELETE,
    KIND_INSERT,
    KIND_MIGRATE_IN,
    KIND_MIGRATE_OUT,
    KIND_REPARTITION,
    KIND_UPDATE,
    LogRecord,
    encode_frame,
    intact_prefix_length,
)
from repro.geometry import Point


def write_log(path, frames):
    """Write ``[(lsn, [records])]`` to *path* through the real writer."""
    log = WriteAheadLog(path)
    for lsn, records in frames:
        log.append(lsn, records)
    log.close()


class TestFrameCodec:
    def test_every_record_kind_round_trips(self, tmp_path):
        spec = {"kind": "grid", "cells": [1, 2]}
        records = [
            insert_record(7, Point(0.25, 0.75)),
            update_record(8, Point(0.5, 0.5)),
            delete_record(9),
            migrate_in_record(10, Point(0.1, 0.9)),
            migrate_out_record(11),
            repartition_record(spec),
        ]
        path = tmp_path / "log.wal"
        write_log(path, [(1, records)])
        [(lsn, decoded)] = list(read_frames(path, strict=True))
        assert lsn == 1
        assert [r.kind for r in decoded] == [
            KIND_INSERT,
            KIND_UPDATE,
            KIND_DELETE,
            KIND_MIGRATE_IN,
            KIND_MIGRATE_OUT,
            KIND_REPARTITION,
        ]
        assert decoded[0].oid == 7 and decoded[0].position() == Point(0.25, 0.75)
        assert decoded[2].oid == 9
        assert json.loads(decoded[5].payload.decode("utf-8")) == spec

    def test_multiple_frames_keep_their_boundaries(self, tmp_path):
        path = tmp_path / "log.wal"
        write_log(
            path,
            [
                (1, [insert_record(1, Point(0.1, 0.1))]),
                (2, [update_record(1, Point(0.2, 0.2)), delete_record(2)]),
                (5, [delete_record(1)]),  # LSN gaps are fine (other logs fill them)
            ],
        )
        frames = list(read_frames(path, strict=True))
        assert [lsn for lsn, _ in frames] == [1, 2, 5]
        assert [len(records) for _, records in frames] == [1, 2, 1]

    def test_unknown_kind_is_rejected_at_encode_time(self):
        with pytest.raises(ValueError):
            encode_frame(1, [LogRecord("teleport", oid=1)])

    def test_missing_log_reads_as_empty(self, tmp_path):
        assert list(read_frames(tmp_path / "absent.wal")) == []
        assert last_lsn(tmp_path / "absent.wal") == 0


class TestTornFrames:
    """A torn tail (the crash signature) stops tolerant reads cleanly."""

    def intact(self, tmp_path):
        path = tmp_path / "log.wal"
        write_log(
            path,
            [
                (1, [insert_record(1, Point(0.1, 0.1))]),
                (2, [update_record(1, Point(0.9, 0.9))]),
            ],
        )
        return path

    @pytest.mark.parametrize("chopped", [1, 7, 9, 15])
    def test_truncated_tail_yields_the_intact_prefix(self, tmp_path, chopped):
        path = self.intact(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - chopped])
        frames = list(read_frames(path))
        assert [lsn for lsn, _ in frames] == [1]
        with pytest.raises(CorruptLogError):
            list(read_frames(path, strict=True))

    def test_crc_mismatch_ends_the_tolerant_read(self, tmp_path):
        path = self.intact(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the last frame's body
        path.write_bytes(bytes(data))
        assert [lsn for lsn, _ in read_frames(path)] == [1]
        with pytest.raises(CorruptLogError):
            list(read_frames(path, strict=True))

    def test_implausible_length_field_reads_as_torn(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(_FRAME_HEADER.pack(2**31, 0))
        assert list(read_frames(path)) == []
        with pytest.raises(CorruptLogError):
            list(read_frames(path, strict=True))


class TestCorruptFrames:
    """CRC-valid nonsense is corruption and raises in both read modes."""

    def frame_with_body(self, body: bytes) -> bytes:
        return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body

    def test_unknown_kind_byte(self, tmp_path):
        body = struct.pack("<QI", 1, 1) + struct.pack("<BQ", 99, 7)
        path = tmp_path / "log.wal"
        path.write_bytes(self.frame_with_body(body))
        for strict in (False, True):
            with pytest.raises(CorruptLogError):
                list(read_frames(path, strict=strict))

    def test_record_count_overrunning_the_body(self, tmp_path):
        body = struct.pack("<QI", 1, 3) + struct.pack("<BQ", 3, 7)  # says 3, holds 1
        path = tmp_path / "log.wal"
        path.write_bytes(self.frame_with_body(body))
        with pytest.raises(CorruptLogError):
            list(read_frames(path))

    def test_trailing_bytes_inside_the_body(self, tmp_path):
        body = struct.pack("<QI", 1, 1) + struct.pack("<BQ", 3, 7) + b"xx"
        path = tmp_path / "log.wal"
        path.write_bytes(self.frame_with_body(body))
        with pytest.raises(CorruptLogError):
            list(read_frames(path))

    def test_lsn_running_backwards(self, tmp_path):
        path = tmp_path / "log.wal"
        write_log(path, [(2, [delete_record(1)])])
        with open(path, "ab") as handle:
            handle.write(encode_frame(2, [delete_record(2)]))  # does not advance
        for strict in (False, True):
            with pytest.raises(CorruptLogError):
                list(read_frames(path, strict=strict))


class TestWriteAheadLogLifecycle:
    def test_append_sets_dirty_and_sync_clears_it(self, tmp_path):
        log = WriteAheadLog(tmp_path / "log.wal")
        assert log.dirty is False
        log.append(1, [delete_record(1)])
        assert log.dirty is True
        log.sync()
        assert log.dirty is False
        log.close()

    def test_truncate_drops_every_frame(self, tmp_path):
        log = WriteAheadLog(tmp_path / "log.wal")
        log.append(1, [insert_record(1, Point(0.5, 0.5))])
        log.truncate()
        log.append(2, [delete_record(1)])
        log.close()
        assert [lsn for lsn, _ in read_frames(tmp_path / "log.wal")] == [2]

    def test_reopening_appends_after_the_existing_frames(self, tmp_path):
        write_log(tmp_path / "log.wal", [(1, [delete_record(1)])])
        write_log(tmp_path / "log.wal", [(2, [delete_record(2)])])
        assert [lsn for lsn, _ in read_frames(tmp_path / "log.wal")] == [1, 2]

    def test_reopening_truncates_a_torn_tail_before_appending(self, tmp_path):
        """Frames appended after a crash must not land beyond the tear.

        A reader stops at the first torn frame, so a writer that blindly
        appended after one would put every post-recovery frame where the
        *next* recovery never looks.  Reopening truncates to the intact
        prefix first.
        """
        path = tmp_path / "log.wal"
        write_log(path, [(1, [delete_record(1)]), (2, [delete_record(2)])])
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_frame(3, [delete_record(3)])[:-5])  # torn append
        assert intact_prefix_length(path) == intact
        write_log(path, [(3, [delete_record(4)])])
        assert path.stat().st_size > intact
        # Strict read succeeds: no torn bytes remain, every frame reachable.
        assert [lsn for lsn, _ in read_frames(path, strict=True)] == [1, 2, 3]

    def test_intact_prefix_length_of_missing_and_whole_logs(self, tmp_path):
        assert intact_prefix_length(tmp_path / "absent.wal") == 0
        path = tmp_path / "log.wal"
        write_log(path, [(1, [delete_record(1)])])
        assert intact_prefix_length(path) == path.stat().st_size


class TestDurabilityManager:
    def test_one_lsn_sequence_spans_every_log(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        manager.log_record(0, insert_record(1, Point(0.1, 0.1)))
        manager.log_record(1, insert_record(2, Point(0.9, 0.9)))
        manager.log_repartition({"kind": "grid"})
        manager.close()
        paths = shard_log_paths(tmp_path / "wal")
        assert sorted(paths) == [0, 1]
        assert [lsn for lsn, _ in read_frames(paths[0])] == [1]
        assert [lsn for lsn, _ in read_frames(paths[1])] == [2]
        assert [lsn for lsn, _ in read_frames(meta_log_path(tmp_path / "wal"))] == [3]

    def test_reattaching_continues_the_lsn_sequence(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        manager.log_record(0, delete_record(1))
        manager.log_record(0, delete_record(2))
        manager.close()
        resumed = DurabilityManager(tmp_path / "wal")
        assert resumed.last_lsn == 2
        assert resumed.log_record(0, delete_record(3)) == 3
        resumed.close()

    def test_cross_shard_unit_shares_one_lsn(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        lsn = manager.log_unit(
            {
                1: (migrate_in_record(7, Point(0.2, 0.2)),),
                0: (migrate_out_record(7),),
            },
            barrier=False,
        )
        manager.close()
        paths = shard_log_paths(tmp_path / "wal")
        assert last_lsn(paths[0]) == last_lsn(paths[1]) == lsn

    def test_empty_unit_is_a_no_op(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        before = manager.last_lsn
        assert manager.log_unit({0: ()}) == before
        manager.close()
        assert shard_log_paths(tmp_path / "wal") == {}

    def test_always_policy_syncs_every_unit(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal", sync="always")
        manager.log_record(0, delete_record(1))
        assert manager._logs[0].dirty is False
        manager.close()

    def test_group_policy_accumulates_per_op_units(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal", sync="group", group_size=3)
        manager.log_record(0, delete_record(1))
        manager.log_record(0, delete_record(2))
        assert manager._logs[0].dirty is True  # below the group threshold
        manager.log_record(0, delete_record(3))
        assert manager._logs[0].dirty is False  # third op closed the group
        manager.close()

    def test_group_policy_syncs_barrier_units_immediately(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal", sync="group", group_size=100)
        manager.log_unit({0: (delete_record(1),)}, barrier=True)
        assert manager._logs[0].dirty is False
        manager.close()

    def test_none_policy_never_syncs(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal", sync="none")
        manager.log_unit({0: (delete_record(1),)}, barrier=True)
        assert manager._logs[0].dirty is True
        manager.flush()
        assert manager._logs[0].dirty is False  # explicit flush still works
        manager.close()

    def test_rotate_truncates_every_log_and_keeps_counting(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        manager.log_record(0, delete_record(1))
        manager.log_record(1, delete_record(2))
        manager.log_repartition({"kind": "grid"})
        manager.rotate()
        assert all(
            path.stat().st_size == 0
            for path in shard_log_paths(tmp_path / "wal").values()
        )
        assert meta_log_path(tmp_path / "wal").stat().st_size == 0
        assert manager.log_record(0, delete_record(3)) == 4  # LSN did not reset
        manager.close()

    def test_rotate_truncates_logs_a_previous_process_left(self, tmp_path):
        write_log(tmp_path / "wal" / "shard-0002.wal", [(9, [delete_record(1)])])
        manager = DurabilityManager(tmp_path / "wal")
        manager.rotate()
        assert (tmp_path / "wal" / "shard-0002.wal").stat().st_size == 0
        manager.close()

    def test_spec_round_trip(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal", sync="none", group_size=9)
        clone = DurabilityManager.from_spec(manager.to_spec())
        assert clone.to_spec() == manager.to_spec()
        manager.close()
        clone.close()

    def test_defaults_are_the_documented_ones(self, tmp_path):
        manager = DurabilityManager(tmp_path / "wal")
        assert manager.sync_policy == DEFAULT_SYNC
        assert manager.group_size == DEFAULT_GROUP_SIZE
        assert DEFAULT_SYNC in SYNC_POLICIES
        manager.close()


class TestSpecValidation:
    def test_normalise_fills_defaults(self):
        assert normalise_spec({"dir": "/x"}) == {
            "dir": "/x",
            "sync": DEFAULT_SYNC,
            "group_size": DEFAULT_GROUP_SIZE,
        }

    @pytest.mark.parametrize(
        "spec",
        [
            {},  # missing dir
            {"dir": "/x", "sync": "fsync-sometimes"},
            {"dir": "/x", "group_size": 0},
            {"dir": "/x", "group_size": True},  # bool is not a count
            {"dir": "/x", "flush": "never"},  # unknown key
        ],
    )
    def test_bad_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            normalise_spec(spec)


class TestAtomicCheckpoint:
    def build(self):
        index = MovingObjectIndex(IndexConfig(strategy="TD"))
        index.load([(oid, Point(0.1 * oid, 0.1 * oid)) for oid in range(1, 9)])
        return index

    def test_save_leaves_no_temp_files(self, tmp_path):
        index = self.build()
        save_index(index, tmp_path / "checkpoint.json")
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]
        json.loads((tmp_path / "checkpoint.json").read_text())

    def test_failed_save_keeps_the_previous_checkpoint(self, tmp_path):
        index = self.build()
        target = tmp_path / "checkpoint.json"
        save_index(index, target)
        before = target.read_text()
        with pytest.raises(CheckpointError):
            save_index(index, tmp_path / "missing-dir" / "checkpoint.json")
        assert target.read_text() == before

    def test_durable_checkpoint_rotates_the_logs(self, tmp_path):
        wal = tmp_path / "wal"
        index = open_index(
            {"config": {"strategy": "TD"}, "durability": {"dir": str(wal)}}
        )
        index.load([(oid, Point(0.1 * oid, 0.1 * oid)) for oid in range(1, 9)])
        index.update(1, Point(0.95, 0.95))
        index.checkpoint()
        assert all(
            path.stat().st_size == 0 for path in shard_log_paths(wal).values()
        )

    def test_export_elsewhere_leaves_the_logs_alone(self, tmp_path):
        wal = tmp_path / "wal"
        index = open_index(
            {"config": {"strategy": "TD"}, "durability": {"dir": str(wal)}}
        )
        index.load([(oid, Point(0.1 * oid, 0.1 * oid)) for oid in range(1, 9)])
        index.update(1, Point(0.95, 0.95))
        index.durability.flush()
        sizes = {p: p.stat().st_size for p in shard_log_paths(wal).values()}
        save_index(index, tmp_path / "export.json")
        assert {p: p.stat().st_size for p in shard_log_paths(wal).values()} == sizes

    def test_checkpoint_without_durability_needs_a_path(self):
        index = self.build()
        with pytest.raises(ValueError):
            index.checkpoint()


class TestCheckpointErrors:
    def test_garbled_checkpoint_raises_checkpoint_error(self, tmp_path):
        target = tmp_path / "checkpoint.json"
        target.write_text('{"format_version": 2, "pages": {')  # torn write
        with pytest.raises(CheckpointError):
            load_index(target)

    def test_unsupported_format_version(self, tmp_path):
        target = tmp_path / "checkpoint.json"
        target.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(CheckpointError):
            load_index(target)

    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)
        assert issubclass(CorruptLogError, ValueError)

    def test_recover_without_a_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            recover_index(tmp_path / "nothing-here")
