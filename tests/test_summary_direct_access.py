"""Tests for the direct access table."""

from repro.geometry import Point, Rect
from repro.summary import DirectAccessTable


def rect(x0, y0, x1, y1):
    return Rect(x0, y0, x1, y1)


class TestUpsertAndLookup:
    def test_insert_and_get(self):
        table = DirectAccessTable()
        table.upsert(10, level=1, mbr=rect(0, 0, 0.5, 0.5), child_page_ids=[1, 2, 3])
        entry = table.get(10)
        assert entry is not None
        assert entry.level == 1
        assert entry.child_page_ids == [1, 2, 3]
        assert 10 in table
        assert len(table) == 1

    def test_get_missing_returns_none(self):
        assert DirectAccessTable().get(5) is None

    def test_upsert_updates_in_place(self):
        table = DirectAccessTable()
        table.upsert(10, 1, rect(0, 0, 0.5, 0.5), [1, 2])
        table.upsert(10, 1, rect(0, 0, 0.7, 0.7), [1, 2, 4])
        entry = table.get(10)
        assert entry.mbr == rect(0, 0, 0.7, 0.7)
        assert entry.child_page_ids == [1, 2, 4]
        assert len(table) == 1
        assert table.entry_insertions == 1
        assert table.mbr_updates == 1

    def test_unchanged_mbr_is_not_counted_as_update(self):
        table = DirectAccessTable()
        table.upsert(10, 1, rect(0, 0, 0.5, 0.5), [1])
        table.upsert(10, 1, rect(0, 0, 0.5, 0.5), [1, 2])
        assert table.mbr_updates == 0

    def test_remove(self):
        table = DirectAccessTable()
        table.upsert(10, 1, rect(0, 0, 0.5, 0.5), [1])
        table.remove(10)
        assert table.get(10) is None
        assert table.entry_removals == 1
        assert table.levels() == []

    def test_remove_missing_is_silent(self):
        DirectAccessTable().remove(99)

    def test_level_change_moves_entry_between_levels(self):
        table = DirectAccessTable()
        table.upsert(10, 1, rect(0, 0, 1, 1), [1])
        table.upsert(10, 2, rect(0, 0, 1, 1), [1])
        assert [e.page_id for e in table.entries_at_level(2)] == [10]
        assert list(table.entries_at_level(1)) == []


class TestLevelOrganisation:
    def test_levels_sorted_ascending(self):
        table = DirectAccessTable()
        table.upsert(30, 3, rect(0, 0, 1, 1), [20])
        table.upsert(20, 2, rect(0, 0, 1, 1), [10])
        table.upsert(10, 1, rect(0, 0, 1, 1), [1])
        assert table.levels() == [1, 2, 3]

    def test_entries_at_level(self):
        table = DirectAccessTable()
        table.upsert(11, 1, rect(0, 0, 0.5, 1), [1])
        table.upsert(12, 1, rect(0.5, 0, 1, 1), [2])
        table.upsert(20, 2, rect(0, 0, 1, 1), [11, 12])
        assert sorted(e.page_id for e in table.entries_at_level(1)) == [11, 12]

    def test_entries_containing_point(self):
        table = DirectAccessTable()
        table.upsert(11, 1, rect(0, 0, 0.5, 1), [1])
        table.upsert(12, 1, rect(0.5, 0, 1, 1), [2])
        hits = table.entries_containing(Point(0.25, 0.5), level=1)
        assert [e.page_id for e in hits] == [11]


class TestParentLookup:
    def build(self):
        table = DirectAccessTable()
        table.upsert(11, 1, rect(0, 0, 0.5, 1), [1, 2])
        table.upsert(12, 1, rect(0.5, 0, 1, 1), [3, 4])
        table.upsert(20, 2, rect(0, 0, 1, 1), [11, 12])
        return table

    def test_parent_of_leaf_page(self):
        table = self.build()
        assert table.parent_of(3).page_id == 12

    def test_parent_of_internal_page(self):
        table = self.build()
        assert table.parent_of(11).page_id == 20

    def test_parent_of_root_is_none(self):
        table = self.build()
        assert table.parent_of(20) is None

    def test_scan_parent_matches_reverse_map(self):
        table = self.build()
        for child, level in ((1, 1), (2, 1), (3, 1), (4, 1), (11, 2), (12, 2)):
            scanned = table.scan_parent_of(child, level)
            direct = table.parent_of(child)
            assert scanned.page_id == direct.page_id

    def test_parent_map_updated_when_children_move(self):
        table = self.build()
        # Leaf 2 moves from node 11 to node 12 (as after a shift/split).
        table.upsert(11, 1, rect(0, 0, 0.5, 1), [1])
        table.upsert(12, 1, rect(0.5, 0, 1, 1), [2, 3, 4])
        assert table.parent_of(2).page_id == 12

    def test_contains_child(self):
        table = self.build()
        assert table.get(11).contains_child(1)
        assert not table.get(11).contains_child(3)


class TestSizing:
    def test_size_bytes_scales_with_entries(self):
        table = DirectAccessTable()
        for page in range(10):
            table.upsert(page, 1, rect(0, 0, 1, 1), [100 + page])
        assert table.size_bytes(entry_size=28) == 280
