"""Packed columnar layout ≡ object layout, with and without binary pages.

The paper's numbers are all I/O counts; the packed layout and the binary
page store are CPU/representation changes that must be invisible to them.
These tests run identical workloads through every combination of
``node_layout`` × ``page_store`` and require **identical** query answers,
outcome counts, and logical *and* physical I/O statistics — for all four
update strategies, on the per-operation path, the group-by-leaf batch path,
and the concurrent engine path.
"""

import random

import pytest

from repro.api import Update
from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node, PackedNode, make_node

STRATEGIES = ("TD", "NAIVE", "LBU", "GBU")
VARIANTS = (
    ("packed", "object"),
    ("object", "binary"),
    ("packed", "binary"),
)


def make_workload(objects=600, moves=1200, seed=97):
    rng = random.Random(seed)
    points = [(oid, Point(rng.random(), rng.random())) for oid in range(objects)]
    updates = [
        (rng.randrange(objects), Point(rng.random(), rng.random()))
        for _ in range(moves)
    ]
    windows = [
        Rect(x, y, x + 0.12, y + 0.15)
        for x, y in ((0.1, 0.2), (0.4, 0.5), (0.7, 0.1), (0.0, 0.8))
    ]
    return points, updates, windows


def build(strategy, node_layout="object", page_store="object"):
    config = IndexConfig(
        strategy=strategy, node_layout=node_layout, page_store=page_store
    )
    index = MovingObjectIndex(config)
    return index


def io_tuple(index):
    io = index.io_snapshot()
    return (
        io.logical_reads,
        io.logical_writes,
        io.physical_reads,
        io.physical_writes,
    )


def run_per_op(index, points, updates, windows):
    index.load(points)
    for oid, location in updates:
        index.update(oid, location)
    answers = [sorted(index.range_query(window)) for window in windows]
    answers.append(index.knn(Point(0.5, 0.5), 10))
    index.validate()
    return answers, dict(index.strategy.outcome_counts), io_tuple(index)


def run_batch(index, points, updates, windows):
    index.load(points)
    index.update_many(updates)
    answers = [sorted(index.range_query(window)) for window in windows]
    index.validate()
    return answers, dict(index.strategy.outcome_counts), io_tuple(index)


def run_engine(index, points, updates, windows):
    index.load(points)
    session = index.engine(num_clients=6)
    for position, (oid, location) in enumerate(updates):
        session.submit(position % 6, Update(oid, location))
    session.run()
    answers = [sorted(index.range_query(window)) for window in windows]
    index.validate()
    return answers, io_tuple(index)


class TestPerOperationEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_variants_match_object_baseline(self, strategy):
        workload = make_workload()
        baseline = run_per_op(build(strategy), *workload)
        for node_layout, page_store in VARIANTS:
            result = run_per_op(build(strategy, node_layout, page_store), *workload)
            assert result == baseline, (strategy, node_layout, page_store)


class TestBatchEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_group_by_leaf_path_matches(self, strategy):
        workload = make_workload(seed=131)
        baseline = run_batch(build(strategy), *workload)
        for node_layout, page_store in VARIANTS:
            result = run_batch(build(strategy, node_layout, page_store), *workload)
            assert result == baseline, (strategy, node_layout, page_store)


class TestEngineEquivalence:
    @pytest.mark.parametrize("strategy", ("TD", "GBU"))
    def test_concurrent_engine_path_matches(self, strategy):
        workload = make_workload(objects=400, moves=600, seed=53)
        baseline = run_engine(build(strategy), *workload)
        for node_layout, page_store in VARIANTS:
            result = run_engine(build(strategy, node_layout, page_store), *workload)
            assert result == baseline, (strategy, node_layout, page_store)


class TestInsertDeleteEquivalence:
    def test_mixed_stream_matches(self):
        rng = random.Random(11)
        operations = []
        live = []
        for oid in range(300):
            operations.append(("insert", oid, Point(rng.random(), rng.random())))
            live.append(oid)
        for _ in range(200):
            kind = rng.random()
            if kind < 0.5 and live:
                operations.append(
                    ("update", rng.choice(live), Point(rng.random(), rng.random()))
                )
            elif kind < 0.75 and len(live) > 50:
                operations.append(("delete", live.pop(rng.randrange(len(live)))))
            else:
                operations.append(("range_query", Rect(0.2, 0.2, 0.6, 0.6)))

        def run(node_layout, page_store):
            index = build("GBU", node_layout, page_store)
            result = index.apply(operations)
            index.validate()
            return result.queries, sorted(
                index.range_query(Rect(0.0, 0.0, 1.0, 1.0))
            ), io_tuple(index)

        baseline = run("object", "object")
        for node_layout, page_store in VARIANTS:
            assert run(node_layout, page_store) == baseline, (node_layout, page_store)


class TestPackedNodeUnit:
    """Direct unit coverage of the packed layout's entry facade."""

    def leaf(self):
        node = PackedNode(page_id=9, level=0)
        node.add_entry(Entry(Rect(0.1, 0.1, 0.2, 0.2), 101))
        node.add_entry(Entry(Rect(0.3, 0.3, 0.4, 0.4), 102))
        node.add_entry(Entry(Rect(0.5, 0.5, 0.6, 0.6), 103))
        return node

    def test_entries_view_yields_detached_snapshots(self):
        node = self.leaf()
        assert [entry.child for entry in node.entries] == [101, 102, 103]
        snapshot = node.entries[1]
        snapshot.rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert node.entries[1].rect == Rect(0.3, 0.3, 0.4, 0.4)

    def test_find_entry_writes_through(self):
        node = self.leaf()
        ref = node.find_entry(102)
        ref.rect = Rect(0.7, 0.7, 0.8, 0.8)
        assert node.entries[1].rect == Rect(0.7, 0.7, 0.8, 0.8)
        assert node.mbr() == Rect(0.1, 0.1, 0.8, 0.8)

    def test_find_entry_ref_survives_other_removals(self):
        node = self.leaf()
        ref = node.find_entry(103)
        node.remove_entry(101)
        ref.rect = Rect(0.9, 0.9, 0.95, 0.95)
        assert node.find_entry(103).rect == Rect(0.9, 0.9, 0.95, 0.95)

    def test_remove_and_pop_keep_columns_aligned(self):
        node = self.leaf()
        removed = node.remove_entry(102)
        assert removed.child == 102 and removed.rect == Rect(0.3, 0.3, 0.4, 0.4)
        assert node.child_ids() == [101, 103]
        assert [entry.rect for entry in node.entries] == [
            Rect(0.1, 0.1, 0.2, 0.2),
            Rect(0.5, 0.5, 0.6, 0.6),
        ]
        assert node.remove_entry(999) is None

    def test_entries_setter_accepts_own_view_slice(self):
        node = self.leaf()
        node.entries = node.entries[:2]
        assert node.child_ids() == [101, 102]
        assert len(node) == 2 and len(node.coords) == 8

    def test_scan_methods_match_object_layout(self):
        entries = [
            Entry(Rect(0.1, 0.1, 0.4, 0.4), 1),
            Entry(Rect(0.35, 0.35, 0.7, 0.7), 2),
            Entry(Rect(0.8, 0.8, 0.9, 0.9), 3),
        ]
        object_node = make_node("object", page_id=1, level=1, entries=entries)
        packed_node = make_node("packed", page_id=1, level=1, entries=entries)
        assert isinstance(object_node, Node) and isinstance(packed_node, PackedNode)
        window = Rect(0.3, 0.3, 0.5, 0.5)
        point = Point(0.38, 0.38)
        assert packed_node.intersecting_children(window) == object_node.intersecting_children(window)
        assert packed_node.contains_point_children(point) == object_node.contains_point_children(point)
        assert packed_node.choose_subtree_child(Rect.from_point(point)) == object_node.choose_subtree_child(Rect.from_point(point))
        assert packed_node.entry_distances(point) == object_node.entry_distances(point)
        assert packed_node.mbr() == object_node.mbr()

    def test_make_node_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            make_node("rowwise", page_id=1, level=0)
