"""Tests for the ASCII chart rendering of experiment series."""

import pytest

from repro.bench import MetricRow
from repro.bench.plotting import chart_all_metrics, horizontal_bar_chart, series_summary


def io_rows():
    return [
        MetricRow("epsilon", 0.003, "TD", avg_update_io=12.0, avg_query_io=6.0),
        MetricRow("epsilon", 0.003, "GBU", avg_update_io=6.0, avg_query_io=4.0),
        MetricRow("epsilon", 0.03, "TD", avg_update_io=12.0, avg_query_io=6.0),
        MetricRow("epsilon", 0.03, "GBU", avg_update_io=4.0, avg_query_io=5.0),
    ]


def throughput_rows():
    return [
        MetricRow("fraction", 0.5, "TD", throughput=100.0),
        MetricRow("fraction", 0.5, "GBU", throughput=200.0),
    ]


class TestHorizontalBarChart:
    def test_contains_every_strategy_and_value(self):
        chart = horizontal_bar_chart(io_rows(), metric="avg_update_io")
        assert "TD" in chart and "GBU" in chart
        assert "12" in chart and "4" in chart

    def test_bar_lengths_scale_with_values(self):
        chart = horizontal_bar_chart(io_rows(), metric="avg_update_io", width=40)
        lines = [line for line in chart.splitlines() if "|" in line]
        td_bar = next(line for line in lines if "TD" in line).split("|")[1]
        gbu_bar = next(line for line in lines if "GBU" in line).split("|")[1]
        assert td_bar.count("#") > gbu_bar.count("#")
        # The largest value fills (approximately) the full width.
        assert td_bar.count("#") == 40

    def test_missing_metric_yields_empty_string(self):
        assert horizontal_bar_chart(io_rows(), metric="throughput") == ""

    def test_explicit_strategy_selection(self):
        chart = horizontal_bar_chart(io_rows(), metric="avg_update_io", strategies=["GBU"])
        assert "GBU" in chart and "TD" not in chart

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart(io_rows(), width=5)

    def test_chart_mentions_metric_label(self):
        chart = horizontal_bar_chart(io_rows(), metric="avg_query_io")
        assert "query" in chart


class TestChartAllMetrics:
    def test_combines_available_metrics(self):
        combined = chart_all_metrics(io_rows())
        assert "update" in combined and "query" in combined
        assert "throughput" not in combined

    def test_throughput_only_rows(self):
        combined = chart_all_metrics(throughput_rows())
        assert "throughput" in combined
        assert "update" not in combined

    def test_empty_rows(self):
        assert chart_all_metrics([]) == ""


class TestSeriesSummary:
    def test_min_max_mean_per_strategy(self):
        summary = series_summary(io_rows(), metric="avg_update_io")
        assert summary["TD"] == {"min": 12.0, "max": 12.0, "mean": 12.0}
        assert summary["GBU"]["min"] == 4.0
        assert summary["GBU"]["max"] == 6.0
        assert summary["GBU"]["mean"] == pytest.approx(5.0)

    def test_empty_for_missing_metric(self):
        assert series_summary(io_rows(), metric="throughput") == {}


class TestCliIntegration:
    def test_chart_flag_appends_charts(self, capsys):
        from repro.bench.cli import main

        assert main(["naive_fallback", "--scale", "0.12", "--seed", "4", "--chart"]) == 0
        output = capsys.readouterr().out
        assert "avg disk I/O per update" in output
        assert "#" in output
