"""Property-based tests (hypothesis) for the geometric primitives.

The R-tree's correctness leans entirely on a handful of geometric identities
(union monotonicity, containment transitivity, the bounded-extension
guarantees of Algorithm 4); these properties are exercised over random
rectangles and points.
"""

import math

from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, union_all

coordinates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def points(draw):
    return Point(draw(coordinates), draw(coordinates))


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return Rect(x1, y1, x2, y2)


epsilons = st.floats(min_value=0.0, max_value=0.5, allow_nan=False, allow_infinity=False)


class TestUnionProperties:
    @given(rects(), rects())
    def test_union_contains_both_operands(self, a, b):
        union = a.union(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_union_is_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects())
    def test_union_with_self_is_identity(self, rect):
        assert rect.union(rect) == rect

    @given(rects(), rects(), rects())
    def test_union_all_matches_pairwise_union(self, a, b, c):
        assert union_all([a, b, c]) == a.union(b).union(c)

    @given(rects(), points())
    def test_union_point_contains_point(self, rect, point):
        assert rect.union_point(point).contains_point(point)

    @given(rects(), rects())
    def test_enlargement_is_non_negative(self, a, b):
        assert a.enlargement_to_include(b) >= -1e-12


class TestContainmentAndOverlapProperties:
    @given(rects(), rects())
    def test_containment_implies_intersection(self, a, b):
        if a.contains_rect(b):
            assert a.intersects(b)

    @given(rects(), rects())
    def test_intersection_is_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_region_contained_in_both(self, a, b):
        region = a.intersection(b)
        if region is not None:
            assert a.contains_rect(region)
            assert b.contains_rect(region)

    @given(rects(), rects())
    def test_overlap_area_bounded_by_each_area(self, a, b):
        overlap = a.overlap_area(b)
        assert overlap <= a.area() + 1e-12
        assert overlap <= b.area() + 1e-12

    @given(rects(), points())
    def test_min_distance_zero_iff_contained(self, rect, point):
        distance = rect.min_distance_to_point(point)
        if rect.contains_point(point):
            assert distance == 0.0
        else:
            # Squaring a sub-normal gap can underflow to exactly zero, so the
            # strict inequality is only asserted for numerically meaningful
            # separations.
            gap_x = max(rect.xmin - point.x, 0.0, point.x - rect.xmax)
            gap_y = max(rect.ymin - point.y, 0.0, point.y - rect.ymax)
            if max(gap_x, gap_y) > 1e-100:
                assert distance > 0.0
            else:
                assert distance >= 0.0


class TestDirectionalExtensionProperties:
    """Algorithm 4 invariants."""

    @given(rects(), points(), epsilons)
    def test_extension_contains_original(self, rect, target, epsilon):
        extended = rect.extended_towards(target, epsilon)
        assert extended.contains_rect(rect)

    @given(rects(), points(), epsilons)
    def test_extension_bounded_by_epsilon_per_side(self, rect, target, epsilon):
        extended = rect.extended_towards(target, epsilon)
        assert rect.xmin - extended.xmin <= epsilon + 1e-12
        assert extended.xmax - rect.xmax <= epsilon + 1e-12
        assert rect.ymin - extended.ymin <= epsilon + 1e-12
        assert extended.ymax - rect.ymax <= epsilon + 1e-12

    @given(rects(), points(), epsilons, rects())
    def test_extension_never_escapes_bound_that_contains_rect(self, rect, target, epsilon, other):
        bound = other.union(rect)  # guarantee the bound covers the rectangle
        extended = rect.extended_towards(target, epsilon, bound=bound)
        assert bound.contains_rect(extended)

    @given(rects(), points(), epsilons)
    def test_extension_never_overshoots_target(self, rect, target, epsilon):
        """Extension goes only as far as needed: the extended side never
        passes the target coordinate (the 'only enough to bound the object'
        clause of Section 3.2.1)."""
        extended = rect.extended_towards(target, epsilon)
        if target.x > rect.xmax:
            assert extended.xmax <= max(rect.xmax, target.x) + 1e-12
        if target.x < rect.xmin:
            assert extended.xmin >= min(rect.xmin, target.x) - 1e-12
        if target.y > rect.ymax:
            assert extended.ymax <= max(rect.ymax, target.y) + 1e-12
        if target.y < rect.ymin:
            assert extended.ymin >= min(rect.ymin, target.y) - 1e-12

    @given(rects(), points())
    def test_large_epsilon_extension_reaches_target(self, rect, target):
        extended = rect.extended_towards(target, epsilon=2.0)
        assert extended.contains_point(target)


class TestExpansionProperties:
    """LBU's all-direction expansion invariants."""

    @given(rects(), epsilons)
    def test_expanded_contains_original(self, rect, epsilon):
        assert rect.expanded(epsilon).contains_rect(rect)

    @given(rects(), epsilons)
    def test_expanded_area_grows_monotonically(self, rect, epsilon):
        assert rect.expanded(epsilon).area() >= rect.area() - 1e-12

    @given(rects(), epsilons, rects())
    def test_expanded_respects_bound_containing_rect(self, rect, epsilon, other):
        bound = other.union(rect)
        assert bound.contains_rect(rect.expanded(epsilon, bound=bound))


class TestPointProperties:
    @given(points(), points())
    def test_distance_symmetry(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), rel_tol=1e-12)

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9

    @given(points())
    def test_clamped_point_is_inside_unit_square(self, point):
        clamped = point.clamped()
        assert Rect.unit().contains_point(clamped)
