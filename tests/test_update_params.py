"""Tests for the tuning parameter bundle."""

import pytest

from repro.update import TuningParameters


class TestDefaults:
    def test_paper_defaults_match_table1(self):
        params = TuningParameters.paper_defaults()
        assert params.epsilon == pytest.approx(0.003)
        assert params.distance_threshold == pytest.approx(0.03)
        assert params.level_threshold is None  # "height - 1", the maximum
        assert params.piggyback is True

    def test_frozen(self):
        params = TuningParameters()
        with pytest.raises(Exception):
            params.epsilon = 0.5


class TestValidation:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters(epsilon=-0.001)

    def test_negative_distance_threshold_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters(distance_threshold=-1)

    def test_negative_level_threshold_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters(level_threshold=-1)

    def test_zero_level_threshold_allowed(self):
        assert TuningParameters(level_threshold=0).level_threshold == 0

    def test_negative_piggyback_limit_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters(max_piggyback_objects=-1)


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        params = TuningParameters()
        tweaked = params.with_overrides(epsilon=0.03)
        assert tweaked.epsilon == 0.03
        assert params.epsilon == 0.003
        assert tweaked is not params

    def test_with_overrides_keeps_unrelated_fields(self):
        tweaked = TuningParameters().with_overrides(distance_threshold=0.3)
        assert tweaked.epsilon == 0.003
        assert tweaked.piggyback is True
