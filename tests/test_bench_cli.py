"""Tests for the command-line front end."""

import pytest

from repro.bench.cli import build_parser, list_figures, main, run


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.figure is None
        assert args.scale == 1.0
        assert args.seed is None

    def test_figure_and_options(self):
        args = build_parser().parse_args(["fig5_epsilon", "--scale", "2.5", "--seed", "9"])
        assert args.figure == "fig5_epsilon"
        assert args.scale == 2.5
        assert args.seed == 9


class TestListing:
    def test_list_mentions_every_figure_key(self):
        listing = list_figures()
        for key in ("fig5_epsilon", "fig8_throughput", "table1", "cost_model"):
            assert key in listing

    def test_main_without_figure_lists_and_succeeds(self, capsys):
        assert main([]) == 0
        assert "fig5_epsilon" in capsys.readouterr().out

    def test_main_with_list_flag(self, capsys):
        assert main(["--list"]) == 0
        assert "available experiments" in capsys.readouterr().out


class TestRunning:
    def test_run_table1_produces_report(self):
        report = run("table1", scale=1.0, seed=None)
        assert "Table 1" in report
        assert "epsilon" in report

    def test_main_runs_and_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Table 1" in target.read_text()

    def test_unknown_figure_returns_error_code(self, capsys):
        assert main(["fig99_unknown"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_naive_fallback_runs_at_tiny_scale(self, capsys):
        assert main(["naive_fallback", "--scale", "0.12", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Section 3.1" in out
        assert "NAIVE" in out

    def test_report_dir_writes_one_file_per_figure(self, tmp_path, capsys):
        directory = tmp_path / "reports" / "nested"
        assert main(["table1", "--report-dir", str(directory)]) == 0
        capsys.readouterr()
        report = directory / "table1.txt"
        assert report.exists()
        assert "Table 1" in report.read_text()

    def test_shard_scaling_is_registered(self):
        listing = list_figures()
        assert "shard_scaling" in listing
