"""Property-based end-to-end tests of the MovingObjectIndex.

A random sequence of operations (updates of varying distance, inserts,
deletes, window queries) is applied both to the real index and to a trivial
in-memory oracle (a dictionary of positions).  After every batch the index
must agree with the oracle on every query and pass full structural
validation.  The property is checked for each update strategy, which is the
strongest statement the library makes: no strategy ever loses, duplicates or
misplaces an object.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import IndexConfig, MovingObjectIndex
from repro.geometry import Point, Rect

from tests.conftest import SMALL_PAGE_SIZE


operation = st.sampled_from(["small_move", "large_move", "insert", "delete", "query"])


@st.composite
def operation_sequences(draw):
    length = draw(st.integers(min_value=20, max_value=80))
    return [draw(operation) for _ in range(length)], draw(st.integers(0, 2**16))


def run_sequence(strategy: str, operations, seed: int):
    rng = random.Random(seed)
    config = IndexConfig(strategy=strategy, page_size=SMALL_PAGE_SIZE, buffer_percent=1.0)
    index = MovingObjectIndex(config)
    oracle = {
        oid: Point(rng.random(), rng.random()) for oid in range(120)
    }
    index.load(list(oracle.items()))
    next_oid = 1_000

    for op in operations:
        if op in ("small_move", "large_move") and oracle:
            oid = rng.choice(list(oracle))
            step = 0.01 if op == "small_move" else 0.4
            old = oracle[oid]
            new = Point(
                min(1, max(0, old.x + rng.uniform(-step, step))),
                min(1, max(0, old.y + rng.uniform(-step, step))),
            )
            index.update(oid, new)
            oracle[oid] = new
        elif op == "insert":
            point = Point(rng.random(), rng.random())
            index.insert(next_oid, point)
            oracle[next_oid] = point
            next_oid += 1
        elif op == "delete" and len(oracle) > 30:
            oid = rng.choice(list(oracle))
            assert index.delete(oid)
            del oracle[oid]
        elif op == "query":
            cx, cy, s = rng.random(), rng.random(), rng.uniform(0, 0.3)
            window = Rect(max(0, cx - s), max(0, cy - s), min(1, cx + s), min(1, cy + s))
            expected = sorted(oid for oid, p in oracle.items() if window.contains_point(p))
            assert sorted(index.range_query(window)) == expected

    # Final checks: full agreement plus structural validity.
    assert sorted(index.range_query(Rect.unit())) == sorted(oracle)
    index.validate()
    return index


SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(operation_sequences())
def test_gbu_index_agrees_with_oracle(case):
    operations, seed = case
    run_sequence("GBU", operations, seed)


@SETTINGS
@given(operation_sequences())
def test_lbu_index_agrees_with_oracle(case):
    operations, seed = case
    run_sequence("LBU", operations, seed)


@SETTINGS
@given(operation_sequences())
def test_td_index_agrees_with_oracle(case):
    operations, seed = case
    run_sequence("TD", operations, seed)


@SETTINGS
@given(operation_sequences())
def test_naive_index_agrees_with_oracle(case):
    operations, seed = case
    run_sequence("NAIVE", operations, seed)
