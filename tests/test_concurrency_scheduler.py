"""Tests for the deterministic discrete-event operation scheduler."""

import pytest

from repro.concurrency import LockMode, OperationScheduler, VirtualOperation


class SyntheticOp(VirtualOperation):
    """A canned operation: fixed lock set, fixed I/O cost, executes a callback."""

    def __init__(self, io, granule=None, mode=LockMode.EXCLUSIVE, on_execute=None):
        self.io = io
        self.pairs = [(granule, mode)] if granule is not None else []
        self.on_execute = on_execute
        self.executed_by = None

    def lock_requests(self):
        return list(self.pairs)

    def execute(self, client):
        self.executed_by = client
        if self.on_execute is not None:
            self.on_execute(client)
        return self.io


def op(io, granule=None, mode=LockMode.EXCLUSIVE):
    return SyntheticOp(io, granule=granule, mode=mode)


class TestScheduler:
    def test_independent_operations_run_in_parallel(self):
        scheduler = OperationScheduler(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        result = scheduler.run([op(io=10, granule=i) for i in range(4)])
        # Four non-conflicting operations of 0.1s each on four clients: the
        # makespan is one operation's duration.
        assert result.makespan == pytest.approx(0.1)
        assert result.throughput == pytest.approx(40.0)
        assert result.lock_waits == 0

    def test_conflicting_operations_serialise(self):
        scheduler = OperationScheduler(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        result = scheduler.run([op(io=10, granule="hot") for _ in range(4)])
        assert result.makespan == pytest.approx(0.4)
        assert result.lock_waits > 0

    def test_shared_locks_do_not_serialise(self):
        scheduler = OperationScheduler(num_clients=4, time_per_io=0.01, cpu_time_per_op=0.0)
        result = scheduler.run(
            [op(io=10, granule="hot", mode=LockMode.SHARED) for _ in range(4)]
        )
        assert result.makespan == pytest.approx(0.1)

    def test_single_client_serialises_everything(self):
        scheduler = OperationScheduler(num_clients=1, time_per_io=0.01, cpu_time_per_op=0.0)
        result = scheduler.run([op(io=5, granule=i) for i in range(6)])
        assert result.makespan == pytest.approx(0.3)

    def test_more_clients_never_reduce_throughput(self):
        def traces():
            return [op(io=4, granule=i % 7) for i in range(50)]

        few = OperationScheduler(num_clients=2, time_per_io=0.01).run(traces())
        many = OperationScheduler(num_clients=16, time_per_io=0.01).run(traces())
        assert many.throughput >= few.throughput - 1e-9

    def test_execution_is_real_and_ordered_by_lock_grants(self):
        """Conflicting operations mutate shared state in lock-grant order."""
        log = []
        ops = [
            SyntheticOp(10, granule="hot", on_execute=lambda c, i=i: log.append(i))
            for i in range(4)
        ]
        OperationScheduler(num_clients=4, time_per_io=0.01).run(ops)
        assert log == [0, 1, 2, 3]

    def test_operation_count_and_client_reports(self):
        scheduler = OperationScheduler(num_clients=2, time_per_io=0.01)
        result = scheduler.run([op(io=1, granule=1), op(io=1, granule=2)])
        assert result.operations == 2
        assert sum(report.operations for report in result.clients.values()) == 2
        assert result.total_physical_io == 2

    def test_empty_stream(self):
        result = OperationScheduler(num_clients=2).run([])
        assert result.operations == 0
        assert result.throughput == 0.0

    def test_utilisation_bounded_by_one(self):
        traces = [op(io=3, granule=i % 3) for i in range(30)]
        result = OperationScheduler(num_clients=5, time_per_io=0.01).run(traces)
        assert 0.0 < result.utilisation <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OperationScheduler(num_clients=0)
        with pytest.raises(ValueError):
            OperationScheduler(time_per_io=-1.0)

    def test_determinism(self):
        def traces():
            return [op(io=(i % 5) + 1, granule=i % 4) for i in range(60)]

        first = OperationScheduler(num_clients=6, time_per_io=0.01).run(traces())
        second = OperationScheduler(num_clients=6, time_per_io=0.01).run(traces())
        assert first.makespan == second.makespan
        assert first.lock_waits == second.lock_waits


class TestPerClientStreams:
    def test_streams_are_consumed_per_client(self):
        scheduler = OperationScheduler(num_clients=3, time_per_io=0.01, cpu_time_per_op=0.0)
        streams = [[op(io=10, granule=f"g{c}") for _ in range(2)] for c in range(3)]
        result = scheduler.run_streams(streams)
        assert result.operations == 6
        assert result.num_clients == 3
        # Each client worked through its own two non-conflicting operations.
        assert result.makespan == pytest.approx(0.2)
        for report in result.clients.values():
            assert report.operations == 2

    def test_client_count_follows_streams(self):
        scheduler = OperationScheduler(num_clients=50)
        result = scheduler.run_streams([[op(io=1, granule=1)]])
        assert result.num_clients == 1

    def test_uneven_streams(self):
        scheduler = OperationScheduler(num_clients=2, time_per_io=0.01, cpu_time_per_op=0.0)
        result = scheduler.run_streams([[op(io=10, granule="a")], []])
        assert result.operations == 1
        assert result.makespan == pytest.approx(0.1)

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            OperationScheduler().run_streams([])

    def test_conflicting_streams_serialise_across_clients(self):
        scheduler = OperationScheduler(num_clients=2, time_per_io=0.01, cpu_time_per_op=0.0)
        streams = [[op(io=10, granule="hot")], [op(io=10, granule="hot")]]
        result = scheduler.run_streams(streams)
        assert result.makespan == pytest.approx(0.2)
        assert result.lock_waits == 1
