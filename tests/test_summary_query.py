"""Tests for summary-assisted window queries (Section 3.2)."""

import random

from repro.geometry import Rect
from repro.rtree import RTree
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.summary import SummaryStructure, summary_guided_range_query

from tests.conftest import SMALL_PAGE_SIZE, make_points


def setup(count=600):
    stats = IOStatistics()
    disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
    tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
    points = dict(make_points(count))
    for oid, point in points.items():
        tree.insert(oid, point)
    summary = SummaryStructure.build_from_tree(tree)
    return tree, summary, points, stats


def random_windows(count, seed=6, max_side=0.3):
    rng = random.Random(seed)
    windows = []
    for _ in range(count):
        cx, cy = rng.random(), rng.random()
        w, h = rng.uniform(0, max_side), rng.uniform(0, max_side)
        windows.append(
            Rect(max(0, cx - w / 2), max(0, cy - h / 2), min(1, cx + w / 2), min(1, cy + h / 2))
        )
    return windows


class TestCorrectness:
    def test_results_match_plain_range_query(self):
        tree, summary, _points, _ = setup()
        for window in random_windows(40):
            assert sorted(summary_guided_range_query(tree, summary, window)) == sorted(
                tree.range_query(window)
            )

    def test_results_match_brute_force(self):
        tree, summary, points, _ = setup(count=400)
        for window in random_windows(25, seed=9):
            expected = sorted(oid for oid, p in points.items() if window.contains_point(p))
            assert sorted(summary_guided_range_query(tree, summary, window)) == expected

    def test_disjoint_window_returns_nothing_without_io(self):
        tree, summary, _points, stats = setup()
        before = stats.physical_reads
        result = summary_guided_range_query(tree, summary, Rect(2.0, 2.0, 3.0, 3.0))
        assert result == []
        assert stats.physical_reads == before  # pruned entirely in memory

    def test_root_leaf_tree_falls_back_to_plain_query(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=SMALL_PAGE_SIZE, stats=stats)
        tree = RTree(BufferPool(disk, 0, stats), layout=PageLayout(page_size=SMALL_PAGE_SIZE))
        for oid, point in make_points(4):
            tree.insert(oid, point)
        summary = SummaryStructure.build_from_tree(tree)
        window = Rect.unit()
        assert sorted(summary_guided_range_query(tree, summary, window)) == sorted(
            tree.range_query(window)
        )

    def test_consistent_after_updates(self):
        tree, summary, points, _ = setup(count=300)
        # Move half of the objects via delete+insert and re-check equivalence.
        rng = random.Random(12)
        for oid in list(points)[:150]:
            tree.delete(oid, points[oid])
            from repro.geometry import Point

            new_point = Point(rng.random(), rng.random())
            tree.insert(oid, new_point)
            points[oid] = new_point
        for window in random_windows(20, seed=3):
            expected = sorted(oid for oid, p in points.items() if window.contains_point(p))
            assert sorted(summary_guided_range_query(tree, summary, window)) == expected


class TestIOBehaviour:
    def test_summary_query_reads_no_upper_internal_nodes(self):
        """For trees of height >= 3 the summary-guided query must read fewer
        (or equal) pages than the plain top-down query, because internal
        levels above the leaf-parents are resolved in memory."""
        tree, summary, _points, stats = setup(count=900)
        assert tree.height >= 3
        total_plain = 0
        total_guided = 0
        for window in random_windows(30, seed=4, max_side=0.4):
            before = stats.physical_reads
            tree.range_query(window)
            total_plain += stats.physical_reads - before

            before = stats.physical_reads
            summary_guided_range_query(tree, summary, window)
            total_guided += stats.physical_reads - before
        assert total_guided <= total_plain
        assert total_guided < total_plain  # strictly better in aggregate

    def test_summary_query_never_writes(self):
        tree, summary, _points, stats = setup()
        before = stats.physical_writes
        for window in random_windows(10):
            summary_guided_range_query(tree, summary, window)
        assert stats.physical_writes == before
