"""Tests for LBU — the Localized Bottom-Up Update (Algorithm 1)."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree
from repro.secondary import ObjectHashIndex
from repro.storage import BufferPool, DiskManager, IOStatistics, PageLayout
from repro.update import LocalizedBottomUpUpdate, UpdateOutcome

from tests.conftest import build_index


class TestConstruction:
    def test_requires_parent_pointers(self):
        stats = IOStatistics()
        disk = DiskManager(page_size=256, stats=stats)
        tree = RTree(
            BufferPool(disk, 0, stats),
            layout=PageLayout(page_size=256),
            store_parent_pointers=False,
        )
        hash_index = ObjectHashIndex.build_from_tree(tree)
        with pytest.raises(ValueError):
            LocalizedBottomUpUpdate(tree, hash_index)

    def test_index_config_builds_lbu_with_parent_pointers(self):
        index = build_index("LBU")
        assert index.tree.store_parent_pointers
        assert index.config.needs_parent_pointers


class TestUpdateOutcomes:
    def test_tiny_move_is_in_place(self):
        index = build_index("LBU", num_objects=300)
        oid = 5
        p = index.position_of(oid)
        outcome = index.update(oid, Point(min(1, p.x + 1e-9), p.y))
        assert outcome == UpdateOutcome.IN_PLACE

    def test_cross_space_move_is_top_down(self):
        index = build_index("LBU", num_objects=300)
        oid = 5
        p = index.position_of(oid)
        outcome = index.update(oid, Point(1.0 - p.x, 1.0 - p.y))
        assert outcome == UpdateOutcome.TOP_DOWN

    def test_moderate_moves_use_extension_or_siblings(self):
        index = build_index("LBU", num_objects=500, seed=2)
        rng = random.Random(10)
        for _ in range(800):
            oid = rng.randrange(500)
            p = index.position_of(oid)
            index.update(oid, Point(
                min(1, max(0, p.x + rng.uniform(-0.05, 0.05))),
                min(1, max(0, p.y + rng.uniform(-0.05, 0.05))),
            ))
        counts = index.strategy.outcome_counts
        assert counts[UpdateOutcome.EXTENDED] + counts[UpdateOutcome.SIBLING_SHIFT] > 0
        assert counts[UpdateOutcome.IN_PLACE] > 0

    def test_extension_is_bounded_by_epsilon(self):
        """With epsilon 0 no update may be classified as EXTENDED."""
        index = build_index("LBU", num_objects=400)
        index.strategy.params = index.strategy.params.with_overrides(epsilon=0.0)
        rng = random.Random(3)
        for _ in range(400):
            oid = rng.randrange(400)
            p = index.position_of(oid)
            index.update(oid, Point(
                min(1, max(0, p.x + rng.uniform(-0.05, 0.05))),
                min(1, max(0, p.y + rng.uniform(-0.05, 0.05))),
            ))
        assert index.strategy.outcome_counts[UpdateOutcome.EXTENDED] == 0

    def test_larger_epsilon_extends_more(self):
        small = build_index("LBU", num_objects=400, seed=9)
        large = build_index("LBU", num_objects=400, seed=9)
        small.strategy.params = small.strategy.params.with_overrides(epsilon=0.001)
        large.strategy.params = large.strategy.params.with_overrides(epsilon=0.05)
        rng_a, rng_b = random.Random(2), random.Random(2)
        for _ in range(500):
            for index, rng in ((small, rng_a), (large, rng_b)):
                oid = rng.randrange(400)
                p = index.position_of(oid)
                index.update(oid, Point(
                    min(1, max(0, p.x + rng.uniform(-0.03, 0.03))),
                    min(1, max(0, p.y + rng.uniform(-0.03, 0.03))),
                ))
        assert (
            large.strategy.outcome_counts[UpdateOutcome.EXTENDED]
            > small.strategy.outcome_counts[UpdateOutcome.EXTENDED]
        )


class TestCorrectnessUnderLoad:
    def test_structure_hash_and_queries_stay_correct(self):
        index = build_index("LBU", num_objects=400, seed=4)
        rng = random.Random(8)
        positions = {oid: index.position_of(oid) for oid in range(400)}
        for _ in range(1200):
            oid = rng.randrange(400)
            step = rng.choice([0.005, 0.05, 0.3])
            new = Point(
                min(1, max(0, positions[oid].x + rng.uniform(-step, step))),
                min(1, max(0, positions[oid].y + rng.uniform(-step, step))),
            )
            index.update(oid, new)
            positions[oid] = new
        index.validate()
        for window in (Rect(0.1, 0.1, 0.4, 0.5), Rect(0.5, 0.2, 0.9, 0.9), Rect.unit()):
            expected = sorted(o for o, p in positions.items() if window.contains_point(p))
            assert sorted(index.range_query(window)) == expected

    def test_lbu_updates_cost_less_io_than_td_on_local_moves(self):
        lbu = build_index("LBU", num_objects=400, seed=6, buffer_percent=0.0)
        td = build_index("TD", num_objects=400, seed=6, buffer_percent=0.0)
        rng_a, rng_b = random.Random(1), random.Random(1)
        for _ in range(500):
            for index, rng in ((lbu, rng_a), (td, rng_b)):
                oid = rng.randrange(400)
                p = index.position_of(oid)
                index.update(oid, Point(
                    min(1, max(0, p.x + rng.uniform(-0.01, 0.01))),
                    min(1, max(0, p.y + rng.uniform(-0.01, 0.01))),
                ))
        assert lbu.stats.total_physical_io < td.stats.total_physical_io

    def test_objects_never_lost(self):
        index = build_index("LBU", num_objects=300, seed=12)
        rng = random.Random(13)
        for _ in range(900):
            oid = rng.randrange(300)
            index.update(oid, Point(rng.random(), rng.random()))
        assert sorted(index.range_query(Rect.unit())) == list(range(300))
