"""Protocol-conformance suite of the typed operation API (v2).

Parametrized over both facade implementations — the single
:class:`MovingObjectIndex` and a 4-shard :class:`ShardedIndex` — this suite
pins the central contract of the API redesign: for one seeded operation
script, the typed surface (``execute`` / ``execute_many``), the legacy tuple
adapter and the direct method calls produce byte-identical results — query
and kNN answers, final positions, and outcome counts — on the per-operation,
batch and concurrent-engine paths.  It also covers the structured error
taxonomy on every facade and the streaming cursors' exhaustion behaviour.
"""

import random

import pytest

from repro.api import (
    KNN,
    Delete,
    DuplicateObjectError,
    Insert,
    RangeQuery,
    UnknownObjectError,
    Update,
    open_index,
)
from repro.core.protocol import SpatialIndexFacade
from repro.geometry import Point, Rect
from repro.shard.index import ShardedIndex
from repro.storage import BufferPool
from repro.update import UpdateOutcome

from tests.conftest import SMALL_PAGE_SIZE, make_points

FACADE_KINDS = ("single", "sharded")
NUM_OBJECTS = 150


def build(kind, strategy="GBU", **config_overrides):
    config = {"strategy": strategy, "page_size": SMALL_PAGE_SIZE}
    config.update(config_overrides)
    spec = {"kind": kind, "config": config}
    if kind == "sharded":
        spec["shards"] = 4
    return open_index(spec)


def loaded(kind, strategy="GBU", num_objects=NUM_OBJECTS, seed=17, **overrides):
    index = build(kind, strategy=strategy, **overrides)
    index.load(make_points(num_objects, seed=seed))
    return index


def operation_script(seed=3, count=150, num_objects=NUM_OBJECTS):
    """A seeded mixed script of typed operations (valid by construction)."""
    rng = random.Random(seed)
    alive = sorted(range(num_objects))
    next_oid = 10_000
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.5 and alive:
            ops.append(Update(rng.choice(alive), Point(rng.random(), rng.random())))
        elif roll < 0.62:
            ops.append(Insert(next_oid, Point(rng.random(), rng.random())))
            alive.append(next_oid)
            next_oid += 1
        elif roll < 0.72 and alive:
            oid = alive.pop(rng.randrange(len(alive)))
            ops.append(Delete(oid))
        elif roll < 0.88:
            x, y = rng.random() * 0.7, rng.random() * 0.7
            ops.append(RangeQuery(Rect(x, y, x + 0.25, y + 0.25)))
        else:
            ops.append(KNN(Point(rng.random(), rng.random()), 5))
    return ops


def outcome_counts(index):
    """Aggregated per-outcome counters (summed over shards when sharded)."""
    if isinstance(index, ShardedIndex):
        totals = {outcome: 0 for outcome in UpdateOutcome}
        for shard in index.shards:
            for outcome, count in shard.strategy.outcome_counts.items():
                totals[outcome] += count
        totals[UpdateOutcome.MIGRATED] += index.migrations
        return totals
    return dict(index.strategy.outcome_counts)


def final_positions(index, script):
    oids = {op.oid for op in script if hasattr(op, "oid")} | set(range(NUM_OBJECTS))
    return {oid: index.position_of(oid) for oid in sorted(oids)}


class TestPerOperationEquivalence:
    @pytest.mark.parametrize("kind", FACADE_KINDS)
    @pytest.mark.parametrize("strategy", ["TD", "GBU"])
    def test_typed_equals_tuple_equals_direct(self, kind, strategy):
        script = operation_script()
        typed = loaded(kind, strategy=strategy)
        tupled = loaded(kind, strategy=strategy)
        direct = loaded(kind, strategy=strategy)

        typed_answers, tuple_answers, direct_answers = [], [], []
        for op in script:
            result = typed.execute(op)
            if isinstance(op, (RangeQuery, KNN)):
                typed_answers.append(result.cursor().all())

            result = tupled.execute(op.to_tuple())  # the tuple adapter path
            if isinstance(op, (RangeQuery, KNN)):
                tuple_answers.append(result.cursor().all())

            if isinstance(op, Update):
                direct.update(op.oid, op.new_location)
            elif isinstance(op, Insert):
                direct.insert(op.oid, op.location)
            elif isinstance(op, Delete):
                direct.delete(op.oid)
            elif isinstance(op, RangeQuery):
                direct_answers.append(direct.range_query(op.window))
            else:
                direct_answers.append(direct.knn(op.point, op.k))

        assert typed_answers == tuple_answers == direct_answers
        assert (
            final_positions(typed, script)
            == final_positions(tupled, script)
            == final_positions(direct, script)
        )
        assert outcome_counts(typed) == outcome_counts(tupled) == outcome_counts(direct)
        typed.validate()
        tupled.validate()
        direct.validate()


class TestBatchEquivalence:
    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_execute_many_equals_tuple_apply(self, kind):
        script = operation_script(seed=5)
        typed = loaded(kind)
        tupled = loaded(kind)

        report = typed.execute_many(script)
        legacy = tupled.apply([op.to_tuple() for op in script])

        assert report.queries == legacy.queries
        assert report.neighbors == legacy.neighbors
        assert report.updates == legacy.updates
        assert report.inserts == legacy.inserts
        assert report.deletes == legacy.deletes
        assert report.coalesced == legacy.coalesced
        assert report.migrations == legacy.migrations
        assert final_positions(typed, script) == final_positions(tupled, script)
        typed.validate()
        tupled.validate()

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_batch_answers_match_per_operation_answers(self, kind):
        script = operation_script(seed=11)
        batch = loaded(kind)
        per_op = loaded(kind)

        report = batch.execute_many(script)
        answers = []
        for op in script:
            result = per_op.execute(op)
            if isinstance(op, RangeQuery):
                # Range answers are sets: the two regimes may shape the tree
                # (and hence the traversal order) differently.
                answers.append(sorted(result.cursor().all()))
            elif isinstance(op, KNN):
                answers.append(result.cursor().all())  # (distance, oid) order
        batched_answers = []
        queries, neighbors = iter(report.queries), iter(report.neighbors)
        for op in script:
            if isinstance(op, RangeQuery):
                batched_answers.append(sorted(next(queries)))
            elif isinstance(op, KNN):
                batched_answers.append(next(neighbors))
        assert batched_answers == answers
        assert final_positions(batch, script) == final_positions(per_op, script)


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_typed_and_tuple_streams_schedule_identically(self, kind):
        script = [
            op
            for op in operation_script(seed=7)
            if not isinstance(op, (Insert, Delete))
        ]
        typed = loaded(kind)
        tupled = loaded(kind)

        typed_session = typed.engine(num_clients=8)
        tuple_session = tupled.engine(num_clients=8)
        for position, op in enumerate(script):
            typed_session.submit(position % 8, op)
            tuple_session.submit(position % 8, op.to_tuple())
        typed_result = typed_session.run()
        tuple_result = tuple_session.run()

        assert typed_result.makespan == tuple_result.makespan
        assert typed_result.operations == tuple_result.operations
        assert typed_result.kinds == tuple_result.kinds
        assert final_positions(typed, script) == final_positions(tupled, script)

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_knn_operations_schedule_under_the_engine(self, kind):
        index = loaded(kind)
        session = index.engine(num_clients=2)
        session.submit(0, KNN(Point(0.5, 0.5), 3))
        session.submit(1, Update(0, Point(0.4, 0.4)))
        result = session.run()
        assert result.operations == 2
        assert result.kinds.get("knn") == 1


class TestErrorTaxonomyOnFacades:
    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_update_unknown_object(self, kind):
        index = loaded(kind)
        with pytest.raises(UnknownObjectError):
            index.execute(Update(999_999, Point(0.5, 0.5)))
        with pytest.raises(KeyError):  # legacy-compatible
            index.update(999_999, Point(0.5, 0.5))

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_insert_duplicate_object(self, kind):
        index = loaded(kind)
        with pytest.raises(DuplicateObjectError):
            index.execute(Insert(0, Point(0.5, 0.5)))
        with pytest.raises(ValueError):  # legacy-compatible
            index.insert(0, Point(0.5, 0.5))

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_delete_missing_strict_and_lenient(self, kind):
        index = loaded(kind)
        with pytest.raises(UnknownObjectError):
            index.execute(Delete(999_999))
        lenient = index.execute(Delete(999_999), strict=False)
        assert lenient.ok
        assert lenient.value is False
        assert index.delete(999_999, strict=False) is False

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_non_strict_execute_captures_errors(self, kind):
        index = loaded(kind)
        result = index.execute(Update(999_999, Point(0.5, 0.5)), strict=False)
        assert not result.ok
        assert isinstance(result.error, UnknownObjectError)

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_unparseable_operations_always_raise(self, kind):
        # There is no operation to attach a result to, so parse failures
        # raise even under strict=False.
        from repro.api import InvalidOperationError

        index = loaded(kind)
        with pytest.raises(InvalidOperationError):
            index.execute(("compact",), strict=False)

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_strict_batch_delete_raises_before_executing(self, kind):
        index = loaded(kind)
        before = final_positions(index, [])
        with pytest.raises(UnknownObjectError):
            index.execute_many(
                [Update(0, Point(0.9, 0.9)), Delete(999_999)]
            )
        # Validation happens before execution: nothing moved.
        assert final_positions(index, []) == before
        # The legacy adapter keeps the skip-missing semantics.
        result = index.apply([("update", 0, Point(0.9, 0.9)), ("delete", 999_999)])
        assert result.updates == 1
        assert index.position_of(0) == Point(0.9, 0.9)


class TestCursorsOnFacades:
    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_stream_query_matches_range_query_and_exhausts(self, kind):
        index = loaded(kind)
        window = Rect(0.2, 0.2, 0.7, 0.7)
        expected = index.range_query(window)
        cursor = index.stream_query(window)
        head = cursor.fetch(5)
        tail = cursor.all()
        assert head + tail == expected
        assert cursor.exhausted
        assert cursor.consumed == len(expected)
        with pytest.raises(StopIteration):
            next(cursor)

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_stream_knn_matches_knn(self, kind):
        index = loaded(kind)
        probe = Point(0.5, 0.5)
        expected = index.knn(probe, 7)
        cursor = index.stream_knn(probe, 7)
        assert cursor.fetch(3) == expected[:3]
        assert cursor.all() == expected[3:]
        assert cursor.exhausted

    @pytest.mark.parametrize("kind", FACADE_KINDS)
    def test_empty_window_cursor_is_born_exhausted_on_first_read(self, kind):
        index = loaded(kind)
        cursor = index.stream_query(Rect(5.0, 5.0, 6.0, 6.0))
        assert cursor.all() == []
        assert cursor.exhausted
        assert cursor.consumed == 0

    def test_streaming_defers_io_until_consumption(self):
        # TD + zero buffer: every node access is physical, so laziness is
        # directly visible in the counters.
        index = loaded("single", strategy="TD", buffer_percent=0.0)
        before = index.stats.total_physical_io
        cursor = index.stream_query(Rect(0.0, 0.0, 1.0, 1.0))
        assert index.stats.total_physical_io == before  # nothing read yet
        first = cursor.fetch(1)
        assert first
        partial_io = index.stats.total_physical_io - before
        assert partial_io > 0
        full_io = index.io_snapshot()
        index.range_query(Rect(0.0, 0.0, 1.0, 1.0))
        full_cost = index.stats.total_physical_io - full_io.total_physical_io
        # One result costs strictly less than materialising the full set.
        assert partial_io < full_cost

    def test_streaming_knn_defers_io_until_consumption(self):
        index = loaded("single", strategy="TD", buffer_percent=0.0)
        before = index.stats.total_physical_io
        cursor = index.stream_knn(Point(0.5, 0.5), NUM_OBJECTS)
        assert index.stats.total_physical_io == before
        cursor.fetch(1)
        partial_io = index.stats.total_physical_io - before
        assert partial_io > 0
        snapshot = index.stats.total_physical_io
        index.knn(Point(0.5, 0.5), NUM_OBJECTS)
        full_cost = index.stats.total_physical_io - snapshot
        assert partial_io < full_cost


class TestProtocolSurface:
    def test_configure_buffer_is_part_of_the_protocol(self):
        assert "configure_buffer" in SpatialIndexFacade.__abstractmethods__

    def test_sharded_buffer_split_preserves_the_aggregate_capacity(self):
        index = loaded("sharded", num_objects=400)
        index.configure_buffer(5.0)
        total_pages = sum(len(shard.disk) for shard in index.shards)
        expected = BufferPool.capacity_for_percentage(5.0, total_pages)
        nonempty = sum(1 for shard in index.shards if len(shard.disk) > 0)
        # Minimum-frame rule: every non-empty shard gets at least one frame;
        # the aggregate is exact whenever the capacity covers the minimums,
        # and runs over by the deficit otherwise (documented tie-break).
        assert sum(shard.buffer.capacity for shard in index.shards) == max(
            expected, nonempty
        )
        assert all(
            shard.buffer.capacity >= 1
            for shard in index.shards
            if len(shard.disk) > 0
        )
        # Proportionality: a shard holding more pages never gets less buffer.
        pairs = sorted(
            (len(shard.disk), shard.buffer.capacity) for shard in index.shards
        )
        for (small_pages, small_cap), (big_pages, big_cap) in zip(pairs, pairs[1:]):
            if big_pages > small_pages:
                assert big_cap >= small_cap

    def test_engine_defaults_flow_from_the_spec(self):
        index = open_index(
            {
                "kind": "single",
                "config": {"page_size": SMALL_PAGE_SIZE},
                "engine": {"num_clients": 5, "time_per_io": 0.02},
            }
        )
        session = index.engine()
        assert session.num_clients == 5
        assert session.engine.scheduler.time_per_io == 0.02
        # Explicit arguments still win over the spec defaults.
        assert index.engine(num_clients=2).num_clients == 2
