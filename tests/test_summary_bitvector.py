"""Tests for the leaf-fullness bit vector."""

from repro.summary import LeafBitVector


class TestBitVector:
    def test_set_and_query_fullness(self):
        bits = LeafBitVector()
        bits.set_fullness(4, True)
        bits.set_fullness(7, False)
        assert bits.is_full(4)
        assert not bits.is_full(7)

    def test_unknown_leaf_is_reported_full(self):
        # Conservative default: GBU must never pick an untracked sibling.
        assert LeafBitVector().is_full(123)

    def test_is_tracked(self):
        bits = LeafBitVector()
        assert not bits.is_tracked(1)
        bits.set_fullness(1, False)
        assert bits.is_tracked(1)

    def test_forget_removes_leaf(self):
        bits = LeafBitVector()
        bits.set_fullness(3, False)
        bits.forget(3)
        assert not bits.is_tracked(3)
        assert bits.is_full(3)  # back to the conservative default

    def test_forget_unknown_leaf_is_silent(self):
        LeafBitVector().forget(55)  # must not raise

    def test_len_and_iteration(self):
        bits = LeafBitVector()
        for page in (1, 2, 3):
            bits.set_fullness(page, page == 2)
        assert len(bits) == 3
        assert sorted(bits) == [1, 2, 3]

    def test_full_count(self):
        bits = LeafBitVector()
        bits.set_fullness(1, True)
        bits.set_fullness(2, False)
        bits.set_fullness(3, True)
        assert bits.full_count == 2

    def test_updates_overwrite_previous_state(self):
        bits = LeafBitVector()
        bits.set_fullness(9, True)
        bits.set_fullness(9, False)
        assert not bits.is_full(9)
        assert len(bits) == 1

    def test_size_is_one_bit_per_leaf(self):
        bits = LeafBitVector()
        for page in range(16):
            bits.set_fullness(page, False)
        assert bits.size_bytes() == 2
        bits.set_fullness(16, False)
        assert bits.size_bytes() == 3

    def test_empty_size(self):
        assert LeafBitVector().size_bytes() == 0
