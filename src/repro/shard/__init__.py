"""Sharded index layer: spatial partition routing over independent shards.

The paper's bottom-up strategies win because most moving-object updates are
local; the same locality argument says a fleet of objects partitions cleanly
across **spatial shards**.  This package provides:

* :mod:`repro.shard.partitioner` — the spatial partitioners: a uniform
  :class:`GridPartitioner` and the pluggable-boundary
  :class:`BoundaryPartitioner`, both serialisable to plain-dict specs;
* :mod:`repro.shard.index` — :class:`ShardedIndex`, a drop-in
  :class:`~repro.core.protocol.SpatialIndexFacade` implementation that
  routes every operation to one of N independent
  :class:`~repro.core.index.MovingObjectIndex` shards, migrates objects
  across shard boundaries, fans queries out to only the intersecting
  shards, and composes per-shard DGL lock scopes under the online
  concurrent operation engine;
* :mod:`repro.shard.rebalance` — the online :class:`ShardRebalancer`:
  per-shard load monitoring, an imbalance trigger policy, a weighted
  boundary-adjustment planner, and conflict-scheduled migration batches
  that re-cut the partition under hotspot drift;
* :mod:`repro.shard.adaptive` — the cost-model-driven
  :class:`AdaptiveStrategyController`: observes each shard's update/query
  mix, movement distances and buffer hit ratio, ranks the four update
  strategies with the Section 4 cost models and hot-swaps any shard whose
  workload favours a different one;
* :mod:`repro.shard.parallel` — the pluggable shard-execution backends
  (``serial`` | ``thread`` | ``process``): the process backend runs each
  shard inside a long-lived worker process speaking a batched picklable
  command protocol, preserving the serial path's exact answers and I/O
  counters while overlapping per-shard work.
"""

from repro.shard.adaptive import (
    AdaptiveStrategyController,
    AdaptiveStrategyPolicy,
    StrategyDecision,
    strategy_costs,
)
from repro.shard.index import MigrationOperation, ShardedIndex
from repro.shard.parallel import (
    BACKENDS,
    ProcessBackend,
    ShardBackend,
    ThreadBackend,
    make_backend,
)
from repro.shard.partitioner import (
    BoundaryPartitioner,
    GridPartitioner,
    Partitioner,
    QuantileGridPartitioner,
    near_square_factoring,
    partitioner_from_spec,
)
from repro.shard.rebalance import (
    RebalanceGroupMigration,
    RebalanceMigration,
    RebalancePlan,
    RebalancePolicy,
    RebalanceReport,
    ShardLoadMonitor,
    ShardRebalancer,
    plan_boundaries,
)

__all__ = [
    "AdaptiveStrategyController",
    "AdaptiveStrategyPolicy",
    "StrategyDecision",
    "strategy_costs",
    "ShardedIndex",
    "MigrationOperation",
    "BACKENDS",
    "ShardBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "Partitioner",
    "GridPartitioner",
    "BoundaryPartitioner",
    "QuantileGridPartitioner",
    "near_square_factoring",
    "partitioner_from_spec",
    "RebalanceGroupMigration",
    "RebalanceMigration",
    "RebalancePlan",
    "RebalancePolicy",
    "RebalanceReport",
    "ShardLoadMonitor",
    "ShardRebalancer",
    "plan_boundaries",
]
