"""Cost-model-driven per-shard update-strategy selection.

The paper's Section 4 cost formulas say *when* each update strategy should
win; a live sharded index can act on them.  This module closes that loop the
same way :mod:`repro.shard.rebalance` closes the load-skew loop:

* the :class:`~repro.shard.rebalance.ShardLoadMonitor` already counts every
  routed operation per shard — :meth:`~repro.shard.rebalance.ShardLoadMonitor.update_query_mix`
  turns the counters into the observed per-shard update/query mix;
* :class:`AdaptiveStrategyPolicy` is the evidence/cooldown gate (the
  :class:`~repro.shard.rebalance.RebalancePolicy` pattern: a minimum
  evidence window before the first switch, a longer one between switches);
* :class:`AdaptiveStrategyController` evaluates the Section 4 models —
  :class:`~repro.cost.model.TopDownCostModel` and
  :class:`~repro.cost.model.BottomUpCostModel` against the live
  :class:`~repro.cost.model.TreeShape` of each shard — weighted by that
  shard's observed mix, and proposes the cost-minimising strategy; the
  sharded index executes the proposal through
  :meth:`~repro.shard.index.ShardedIndex.set_strategy` (a hot swap, no
  rebuild).

The models give expected **node accesses**; what a deployment pays is
**disk transfers**.  The controller bridges the two with each shard's
observed buffer hit ratio: tree-page accesses are discounted by the hit
ratio, while the secondary-index probe every bottom-up update issues is
charged in full (the paper's Section 4.2 accounting — a hash probe is a
disk read the buffer pool never absorbs).  This is exactly the trade-off
the calibration benchmark measures: a shard whose working set is hot in
the buffer favours top-down (its descents are nearly free, the probes are
not), while a buffer-thrashing query-heavy shard favours GBU (the summary
answers window queries from leaf accesses alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Dict, List, Optional, Tuple

from repro.cost.model import (
    BottomUpCostModel,
    TopDownCostModel,
    TreeShape,
    expected_query_node_accesses,
    window_overlap_probability,
)
from repro.shard.rebalance import ShardLoadMonitor, UpdateQueryMix

if TYPE_CHECKING:  # runtime-import free: shard.index imports this module
    from repro.shard.index import ShardedIndex

#: Query window edge assumed by the selection rule when ranking strategies
#: (the paper's experiments use windows of about 1 % of the unit square).
DEFAULT_QUERY_EXTENT = 0.1

#: Movement distance assumed before a shard has reported any moves.
DEFAULT_MOVE_DISTANCE = 0.05

#: The candidate strategies, in the factory's canonical order (ties in the
#: cost ranking resolve towards the front, after preferring the incumbent).
CANDIDATE_STRATEGIES: Tuple[str, ...] = ("TD", "NAIVE", "LBU", "GBU")


def leaf_level_query_accesses(
    shape: TreeShape, query_width: float, query_height: float
) -> float:
    """Theorem 1 restricted to the leaf level.

    A summary-guided window query (GBU with ``use_summary_for_queries``)
    prunes internal levels in main memory and reads only the qualifying
    leaves, so its expected node accesses are the leaf terms of the
    Theorem 1 sum.
    """
    if not shape.node_extents:
        return 0.0
    return sum(
        window_overlap_probability(width, height, query_width, query_height)
        for width, height in shape.node_extents[0]
    )


def strategy_costs(
    shape: TreeShape,
    mix: UpdateQueryMix,
    *,
    miss_ratio: float,
    distance: float,
    query_extent: float = DEFAULT_QUERY_EXTENT,
    use_summary_for_queries: bool = True,
    charge_hash_io: bool = True,
    epsilon: float = 0.003,
) -> Dict[str, float]:
    """Expected disk transfers of the observed mix under each strategy.

    Per-operation costs come from the Section 4 models; tree-page accesses
    are scaled by *miss_ratio* (the shard's observed buffer miss fraction),
    while bottom-up hash probes are charged in full when *charge_hash_io*
    is set — the probe bypasses the buffer pool.  The returned mapping has
    one non-negative total per candidate strategy.
    """
    miss = max(0.0, min(1.0, miss_ratio))
    probe = 1.0 if charge_hash_io else 0.0

    query_plain = expected_query_node_accesses(shape, query_extent, query_extent)
    query_summary = leaf_level_query_accesses(shape, query_extent, query_extent)

    top_down = TopDownCostModel(shape)
    update_td = top_down.update_cost()

    # The bottom-up constants fold the hash probe into COST_IN_PLACE (probe +
    # leaf read + leaf write); peel it off so it can be charged unbuffered.
    localized = BottomUpCostModel(
        shape, epsilon=epsilon, use_direct_access_table=False
    )
    generalized = BottomUpCostModel(
        shape, epsilon=epsilon, use_direct_access_table=True
    )
    update_lbu_tree = max(0.0, localized.update_cost(distance) - 1.0)
    update_gbu_tree = max(0.0, generalized.update_cost(distance) - 1.0)

    # NAIVE (Section 3.1 strawman): probe + leaf read, update in place when
    # the leaf MBR still covers the new position, otherwise fall back to a
    # full top-down update with the probe and read wasted.
    p_in_place = generalized.probability_within_leaf(distance)
    update_naive_tree = 1.0 + p_in_place * 1.0 + (1.0 - p_in_place) * update_td

    per_update = {
        "TD": update_td * miss,
        "NAIVE": probe + update_naive_tree * miss,
        "LBU": probe + update_lbu_tree * miss,
        "GBU": probe + update_gbu_tree * miss,
    }
    per_query = {
        "TD": query_plain * miss,
        "NAIVE": query_plain * miss,
        "LBU": query_plain * miss,
        "GBU": (query_summary if use_summary_for_queries else query_plain) * miss,
    }
    return {
        name: mix.updates * per_update[name] + mix.queries * per_query[name]
        for name in CANDIDATE_STRATEGIES
    }


@dataclass
class AdaptiveStrategyPolicy:
    """When a shard's observed mix is evidence enough to switch strategy.

    Attributes
    ----------
    enabled:
        Master switch; a disabled policy never proposes a change (the
        controller still monitors, so flipping it on acts immediately).
    cooldown:
        Minimum recorded operations on a shard between consecutive switches
        of that shard, so a fresh strategy gets time to prove itself.
    min_ops:
        Minimum recorded operations on a shard before its *first* switch;
        prevents a handful of early operations from being read as a trend.
    """

    enabled: bool = True
    cooldown: int = 400
    min_ops: int = 128

    def __post_init__(self) -> None:
        if self.cooldown < 0 or self.min_ops < 0:
            raise ValueError("cooldown and min_ops must be non-negative")

    def evidence_required(self, switches: int) -> int:
        """Operations a shard needs in its window before a switch is considered."""
        return self.min_ops if switches == 0 else max(self.min_ops, self.cooldown)

    def to_spec(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe), the ``adaptive`` builder spec section."""
        return {
            "enabled": self.enabled,
            "cooldown": self.cooldown,
            "min_ops": self.min_ops,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "AdaptiveStrategyPolicy":
        """Rebuild a policy from its (possibly partial) spec dict."""
        known = {"enabled", "cooldown", "min_ops"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown adaptive spec keys {sorted(unknown)!r}")
        return cls(
            enabled=bool(spec.get("enabled", cls.enabled)),
            cooldown=int(spec.get("cooldown", cls.cooldown)),
            min_ops=int(spec.get("min_ops", cls.min_ops)),
        )


@dataclass(frozen=True)
class StrategyDecision:
    """One shard's proposed strategy switch, with the ranking that chose it."""

    shard_id: int
    strategy: str
    current: str
    costs: Dict[str, float] = field(compare=False)

    def describe(self) -> str:
        ranking = ", ".join(
            f"{name}={self.costs[name]:.0f}"
            for name in sorted(self.costs, key=lambda key: self.costs[key])
        )
        return (
            f"shard {self.shard_id}: {self.current} -> {self.strategy} ({ranking})"
        )


class AdaptiveStrategyController:
    """Feedback loop: observe each shard's mix, switch it to the cheapest strategy.

    Attach to a :class:`~repro.shard.index.ShardedIndex` (the ``adaptive``
    spec section of :func:`repro.api.open_index` does this declaratively).
    Once attached, the index records every routed operation into the
    monitor; the auto-trigger hooks — the engine's maintenance interleave
    for live sessions, the batch epilogue for serial batches — call
    :meth:`~repro.shard.index.ShardedIndex.auto_adapt`, which executes the
    :meth:`decide` proposals as hot swaps.  ``switches`` counts completed
    switches across all shards and survives checkpoints
    (:meth:`state_to_spec`).
    """

    #: Candidate strategies, re-exported for callers.
    CANDIDATES: ClassVar[Tuple[str, ...]] = CANDIDATE_STRATEGIES

    def __init__(
        self,
        num_shards: int,
        policy: Optional[AdaptiveStrategyPolicy] = None,
        switches: int = 0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.policy = policy if policy is not None else AdaptiveStrategyPolicy()
        self.monitor = ShardLoadMonitor(num_shards)
        self.switches = switches
        self.query_extent = DEFAULT_QUERY_EXTENT
        self._shard_switches: List[int] = [0] * num_shards
        self._move_distance: List[float] = [0.0] * num_shards
        self._moves: List[int] = [0] * num_shards

    # -- observation -----------------------------------------------------
    def record_move(self, shard_id: int, distance: float) -> None:
        """Fold one observed object movement distance into the shard's window."""
        if distance < 0:
            return
        self._move_distance[shard_id] += distance
        self._moves[shard_id] += 1

    def observed_distance(self, shard_id: int) -> float:
        """Mean movement distance observed on the shard (default when idle)."""
        if self._moves[shard_id] == 0:
            return DEFAULT_MOVE_DISTANCE
        return self._move_distance[shard_id] / self._moves[shard_id]

    @staticmethod
    def miss_ratio(shard: Any) -> float:
        """The shard's observed buffer miss fraction (1.0 before any reads)."""
        stats = shard.stats
        logical = stats.logical_reads
        if logical <= 0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - stats.buffer_hits / logical))

    # -- trigger ---------------------------------------------------------
    def should_adapt(self, sharded: "ShardedIndex") -> bool:
        """Cheap gate: has any shard accumulated enough evidence to rank?

        Polled from the same places as
        :meth:`~repro.shard.rebalance.ShardRebalancer.should_rebalance`;
        the tree-shape measurement in :meth:`decide` is only worth paying
        once a switch is possible at all.
        """
        if not self.policy.enabled:
            return False
        return any(
            mix.total >= self.policy.evidence_required(self._shard_switches[i])
            for i, mix in enumerate(self.monitor.update_query_mix())
        )

    # -- selection -------------------------------------------------------
    def decide(self, sharded: "ShardedIndex") -> List[StrategyDecision]:
        """Rank the candidates per shard; propose every beneficial switch.

        A shard is considered once its window holds
        :meth:`AdaptiveStrategyPolicy.evidence_required` operations.  The
        incumbent strategy wins ties, so an idle ranking never churns.
        """
        decisions: List[StrategyDecision] = []
        if not self.policy.enabled:
            return decisions
        mixes = self.monitor.update_query_mix()
        for shard_id, shard in enumerate(sharded.shards):
            mix = mixes[shard_id]
            required = self.policy.evidence_required(self._shard_switches[shard_id])
            if mix.total < required:
                continue
            shape = TreeShape.from_tree(shard.tree)
            if not shape.node_extents or not shape.node_extents[0]:
                continue  # empty shard: nothing to rank
            costs = strategy_costs(
                shape,
                mix,
                miss_ratio=self.miss_ratio(shard),
                distance=self.observed_distance(shard_id),
                query_extent=self.query_extent,
                use_summary_for_queries=shard.config.use_summary_for_queries,
                charge_hash_io=shard.config.charge_hash_io,
                epsilon=shard.config.params.epsilon,
            )
            current = str(shard.active_strategy)
            winner = min(
                CANDIDATE_STRATEGIES,
                key=lambda name: (costs[name], name != current),
            )
            if winner != current:
                decisions.append(
                    StrategyDecision(
                        shard_id=shard_id,
                        strategy=winner,
                        current=current,
                        costs=costs,
                    )
                )
        return decisions

    # -- bookkeeping -----------------------------------------------------
    def committed(self, shard_id: int) -> None:
        """Record a completed switch and restart that shard's evidence window."""
        self.switches += 1
        self._shard_switches[shard_id] += 1
        self.monitor.updates[shard_id] = 0
        self.monitor.queries[shard_id] = 0
        self.monitor.physical_io[shard_id] = 0
        self._move_distance[shard_id] = 0.0
        self._moves[shard_id] = 0

    # -- persistence -----------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """The declarative (policy-only) spec section, JSON-round-trippable."""
        return self.policy.to_spec()

    def state_to_spec(self) -> Dict[str, Any]:
        """Checkpoint form: the policy spec plus the runtime counters."""
        spec = self.to_spec()
        spec["switches"] = self.switches
        return spec

    @classmethod
    def from_spec(
        cls, spec: Dict[str, Any], num_shards: int
    ) -> "AdaptiveStrategyController":
        """Rebuild a controller from a policy spec or a checkpointed state spec."""
        data = dict(spec)
        switches = int(data.pop("switches", 0))
        return cls(
            num_shards,
            policy=AdaptiveStrategyPolicy.from_spec(data),
            switches=switches,
        )


__all__ = [
    "AdaptiveStrategyController",
    "AdaptiveStrategyPolicy",
    "CANDIDATE_STRATEGIES",
    "DEFAULT_MOVE_DISTANCE",
    "DEFAULT_QUERY_EXTENT",
    "StrategyDecision",
    "leaf_level_query_accesses",
    "strategy_costs",
]
