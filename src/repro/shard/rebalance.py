"""Online shard rebalancing under load skew.

The ``shard_scaling`` figure shows the weakness of a static spatial
partition: under the paper's hotspot (Zipf-skewed) update workload a uniform
grid concentrates both data and update traffic on few shards, the load
imbalance climbs towards the shard count, and the multi-shard makespan win
collapses.  This module adds the system's first feedback-driven control
loop — an **online rebalancer** that watches per-shard load and re-cuts the
partition boundaries so the hot region is spread over every shard:

* :class:`ShardLoadMonitor` — per-shard update/query counters plus physical
  I/O sampled from each shard's :class:`~repro.storage.stats.IOStatistics`
  (during engine runs those counters accrue through the buffer pools'
  per-client attribution, which the monitor also samples per shard);
* :class:`RebalancePolicy` — the trigger rule: rebalance when the max/mean
  per-shard load exceeds ``threshold``, at least ``min_ops`` operations have
  been observed since the last boundary change, and ``cooldown`` operations
  have passed between consecutive rebalances;
* :func:`plan_boundaries` — the boundary-adjustment planner: a weighted
  near-square cut of the unit square (columns split by x, each column split
  by y) where every object carries its owning shard's load share, so the new
  :class:`~repro.shard.partitioner.BoundaryPartitioner` equalises *load*,
  not just population;
* :class:`RebalanceMigration` — one object's move to its re-routed shard,
  scheduled through the concurrent engine exactly like a boundary-crossing
  update migration: the lock scope names the delete granules in the source
  shard and the insert granules in the destination shard, acquired
  all-or-nothing, so rebalance traffic interleaves safely with live client
  sessions and serialises only with operations it truly conflicts with;
* :class:`ShardRebalancer` — the controller gluing these together, attached
  to a :class:`~repro.shard.index.ShardedIndex` via the declarative
  ``rebalance`` spec section (:func:`repro.api.open_index`) and checkpointed
  by :mod:`repro.core.persistence`.

Every migration re-reads the object's *live* position at dispatch time, so a
plan races safely with concurrent updates: an object that moved (or was
deleted) after planning is re-routed to wherever it now belongs — or not at
all — never to a stale position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.concurrency.scheduler import VirtualOperation
from repro.geometry import Point, Rect
from repro.shard.partitioner import (
    BoundaryPartitioner,
    QuantileGridPartitioner,
    near_square_factoring,
)

if TYPE_CHECKING:  # runtime-import free: shard.index imports this module
    from repro.concurrency.engine import OnlineOperationEngine
    from repro.concurrency.locks import LockMode
    from repro.concurrency.scheduler import ScheduleResult
    from repro.shard.index import ShardedIndex


class _IOSource(Protocol):
    """The slice of a shard the monitor samples (satisfied by any facade)."""

    def total_physical_io(self) -> int: ...


@dataclass(frozen=True)
class UpdateQueryMix:
    """One shard's observed operation mix since the last monitor reset.

    The consumer-facing view of the raw update/query counters: the adaptive
    strategy controller weights its cost-model comparison by this mix, and
    callers no longer re-derive ratios (with their own zero-total guards)
    from the counter lists.
    """

    updates: int
    queries: int

    @property
    def total(self) -> int:
        """Recorded operations on the shard (updates + query visits)."""
        return self.updates + self.queries

    @property
    def update_fraction(self) -> float:
        """Updates as a fraction of the total (0.0 on an idle shard)."""
        return self.updates / self.total if self.total else 0.0

    @property
    def query_fraction(self) -> float:
        """Query visits as a fraction of the total (0.0 on an idle shard)."""
        return self.queries / self.total if self.total else 0.0


# ---------------------------------------------------------------------------
# Load monitoring
# ---------------------------------------------------------------------------


class ShardLoadMonitor:
    """Per-shard load counters: updates, queries, and sampled physical I/O.

    The sharded index records every routed operation against its shard;
    :meth:`sample_io` folds in the physical page transfers each shard's
    :class:`~repro.storage.stats.IOStatistics` accumulated since the last
    sample (under the online engine those transfers are the ones the buffer
    pools attribute to virtual clients — the same counters, viewed per
    shard).  ``load = updates + queries + physical I/O`` per shard, so an
    I/O-heavy shard reads as hot even at moderate operation counts.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.updates: List[int] = [0] * num_shards
        self.queries: List[int] = [0] * num_shards
        self.physical_io: List[int] = [0] * num_shards
        self._io_marks: List[int] = [0] * num_shards

    def record_update(self, shard_id: int, count: int = 1) -> None:
        """Count *count* update-side operations (insert/update/delete) on a shard."""
        self.updates[shard_id] += count

    def record_query(self, shard_id: int, count: int = 1) -> None:
        """Count *count* query-side visits (range/kNN fan-out) on a shard."""
        self.queries[shard_id] += count

    def sample_io(self, shards: Sequence[_IOSource]) -> None:
        """Fold in each shard's physical I/O delta since the last sample."""
        for shard_id, shard in enumerate(shards):
            current = shard.total_physical_io()
            delta = current - self._io_marks[shard_id]
            if delta > 0:
                self.physical_io[shard_id] += delta
            self._io_marks[shard_id] = current

    def exclude_io(self, shard_id: int, amount: int) -> None:
        """Skip *amount* of a shard's physical I/O in the next sample.

        Used by the rebalancer's migration paths: the migrations' own I/O
        must not read as shard load, or the storm the cooldown exists to
        prevent would re-trigger itself (the migration burst lands in the
        evidence window :meth:`reset` just opened).
        """
        self._io_marks[shard_id] += amount

    # -- derived views ---------------------------------------------------
    def loads(self) -> List[float]:
        """Combined per-shard load (operations + queries + physical I/O)."""
        return [
            float(self.updates[i] + self.queries[i] + self.physical_io[i])
            for i in range(self.num_shards)
        ]

    def total_operations(self) -> int:
        """Recorded operations (updates + query visits) since the last reset."""
        return sum(self.updates) + sum(self.queries)

    def update_query_mix(self) -> List[UpdateQueryMix]:
        """Per-shard observed mix (ratio + totals) since the last reset."""
        return [
            UpdateQueryMix(updates=self.updates[i], queries=self.queries[i])
            for i in range(self.num_shards)
        ]

    def imbalance(self) -> float:
        """Max/mean of the per-shard loads (1.0 = balanced, also when idle)."""
        loads = self.loads()
        total = sum(loads)
        if total <= 0:
            return 1.0
        return max(loads) * self.num_shards / total

    def reset(self, shards: Optional[Sequence[_IOSource]] = None) -> None:
        """Zero the counters; re-mark the I/O baselines when *shards* given."""
        self.updates = [0] * self.num_shards
        self.queries = [0] * self.num_shards
        self.physical_io = [0] * self.num_shards
        if shards is not None:
            self._io_marks = [shard.total_physical_io() for shard in shards]
        else:
            self._io_marks = [0] * self.num_shards


# ---------------------------------------------------------------------------
# Trigger policy
# ---------------------------------------------------------------------------


@dataclass
class RebalancePolicy:
    """When load skew is bad enough — and evidence fresh enough — to act.

    Attributes
    ----------
    threshold:
        Trigger when max/mean per-shard load exceeds this factor (the
        ``shard_scaling`` hotspot runs reach ~4x on a 4-shard grid).
    cooldown:
        Minimum recorded operations between consecutive rebalances, so a
        freshly cut partition gets time to prove itself before being re-cut.
    min_ops:
        Minimum recorded operations before the *first* trigger; prevents a
        handful of early operations from being read as a trend.
    """

    threshold: float = 1.5
    cooldown: int = 400
    min_ops: int = 128

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0 (1.0 = perfectly balanced)")
        if self.cooldown < 0 or self.min_ops < 0:
            raise ValueError("cooldown and min_ops must be non-negative")

    def evidence_required(self, rebalances: int) -> int:
        """Operations needed in the window before a trigger is considered."""
        return self.min_ops if rebalances == 0 else max(self.min_ops, self.cooldown)

    def should_trigger(self, monitor: ShardLoadMonitor, rebalances: int) -> bool:
        """Evidence check against *monitor* (counters since the last rebalance)."""
        if monitor.total_operations() < self.evidence_required(rebalances):
            return False
        return monitor.imbalance() > self.threshold

    def to_spec(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe), the ``rebalance`` builder spec section."""
        return {
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "min_ops": self.min_ops,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "RebalancePolicy":
        """Rebuild a policy from its (possibly partial) spec dict."""
        known = {"threshold", "cooldown", "min_ops"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown rebalance spec keys {sorted(unknown)!r}")
        return cls(
            threshold=float(spec.get("threshold", cls.threshold)),
            cooldown=int(spec.get("cooldown", cls.cooldown)),
            min_ops=int(spec.get("min_ops", cls.min_ops)),
        )


# ---------------------------------------------------------------------------
# Boundary planning
# ---------------------------------------------------------------------------


def _weighted_cuts(
    items: List[Tuple[float, float]], groups: int
) -> Tuple[List[float], List[List[Tuple[float, float]]]]:
    """Cut *items* (``(coordinate, weight)``, pre-sorted) into weight-balanced groups.

    Returns the interior+outer cut coordinates ``[0.0, c1, ..., 1.0]``
    (length ``groups + 1``, non-decreasing) and the item groups themselves.
    Each interior cut lies halfway between the adjacent items of the two
    groups it separates, so boundary objects stay strictly inside their
    group's rectangle whenever coordinates differ.
    """
    total = sum(weight for _, weight in items)
    cuts: List[float] = [0.0]
    grouped: List[List[Tuple[float, float]]] = []
    cursor = 0
    accumulated = 0.0
    for group in range(groups - 1):
        target = total * (group + 1) / groups
        start = cursor
        while cursor < len(items) and (
            accumulated + items[cursor][1] <= target or cursor == start
        ):
            accumulated += items[cursor][1]
            cursor += 1
        grouped.append(items[start:cursor])
        if cursor == 0:
            cut = 0.0
        elif cursor >= len(items):
            cut = 1.0
        else:
            cut = (items[cursor - 1][0] + items[cursor][0]) / 2.0
        cut = min(1.0, max(cut, cuts[-1]))
        cuts.append(cut)
    grouped.append(items[cursor:])
    cuts.append(1.0)
    return cuts, grouped


def plan_boundaries(
    items: Sequence[Tuple[Point, float]], num_shards: int
) -> QuantileGridPartitioner:
    """Weighted near-square partition of the unit square over *items*.

    The space is cut into ``columns`` x-strips of roughly equal total weight
    and each strip into ``rows`` y-cells of roughly equal weight within the
    strip — the same ``columns x rows`` shape as
    :meth:`~repro.shard.partitioner.GridPartitioner.for_shards`, but with
    boundaries placed where the *weight* is, not at uniform fractions.  With
    no items (or all-equal coordinates) the cuts degenerate gracefully:
    every cell still exists and the cells jointly cover the unit square, so
    the resulting :class:`~repro.shard.partitioner.BoundaryPartitioner`
    remains total.
    """
    columns, rows = near_square_factoring(num_shards)
    by_x = sorted(
        ((point.clamped(), weight) for point, weight in items),
        key=lambda item: (item[0].x, item[0].y),
    )
    x_items = [(point.x, weight) for point, weight in by_x]
    x_cuts, x_groups_flat = _weighted_cuts(x_items, columns)
    # Regroup the actual points to the x groups (same order, same sizes).
    column_y_cuts: List[List[float]] = []
    offset = 0
    for column in range(columns):
        group_size = len(x_groups_flat[column])
        column_points = by_x[offset : offset + group_size]
        offset += group_size
        y_items = sorted(
            ((point.y, weight) for point, weight in column_points),
        )
        y_cuts, _ = _weighted_cuts(y_items, rows)
        column_y_cuts.append(y_cuts)
    return QuantileGridPartitioner(x_cuts, column_y_cuts)


# ---------------------------------------------------------------------------
# Scheduled migration
# ---------------------------------------------------------------------------


class RebalanceMigration(VirtualOperation):
    """One object's re-route to the shard its position now belongs to.

    Scheduled through the concurrent engine like every other operation: the
    lock scope — recomputed from the live index on each dispatch attempt —
    is the update scope of a zero-distance move, which for an object whose
    directory shard disagrees with the partitioner is exactly the
    cross-shard migration scope: delete granules in the source shard plus
    insert granules in the destination shard, both namespaced, acquired
    all-or-nothing.  Concurrent client operations on other granules
    interleave freely; an object deleted (or already re-routed) by the time
    the migration dispatches degrades to a no-op.
    """

    __slots__ = ("engine", "sharded", "oid")
    kind = "rebalance"

    def __init__(
        self, engine: "OnlineOperationEngine", sharded: "ShardedIndex", oid: int
    ) -> None:
        self.engine = engine
        self.sharded = sharded
        self.oid = oid

    def lock_requests(self) -> List[Tuple[Hashable, "LockMode"]]:
        position = self.sharded.position_of(self.oid)
        if position is None:
            return []  # object vanished; executing is a no-op
        return self.sharded.lock_requests_for("update", (self.oid, position))

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client, lambda: self.sharded.reroute(self.oid)
        )


class RebalanceGroupMigration(VirtualOperation):
    """A whole source-leaf bucket of displaced objects, migrated in bulk.

    The scheduled form of
    :meth:`~repro.shard.index.ShardedIndex.migrate_leaf_group`: one
    source-side removal pass and one bulk insert per destination shard move
    the entire bucket, so the migration cost is paid per *leaf*, not per
    object — the same group-by-leaf amortisation the batch update engine
    applies to client updates.  The lock scope is the union of the members'
    migration scopes (source delete granules + destination insert granules,
    recomputed from the live index on every dispatch attempt), acquired
    all-or-nothing; members that drifted since planning degrade to the
    per-object path inside the group executor.
    """

    __slots__ = ("engine", "sharded", "source_id", "leaf_page", "oids")
    kind = "rebalance"

    def __init__(
        self,
        engine: "OnlineOperationEngine",
        sharded: "ShardedIndex",
        source_id: int,
        leaf_page: int,
        oids: List[int],
    ) -> None:
        self.engine = engine
        self.sharded = sharded
        self.source_id = source_id
        self.leaf_page = leaf_page
        self.oids = oids

    def lock_requests(self) -> List[Tuple[Hashable, "LockMode"]]:
        pairs: List[Tuple[Hashable, "LockMode"]] = []
        seen: Set[Tuple[Hashable, "LockMode"]] = set()
        for oid in self.oids:
            position = self.sharded.position_of(oid)
            if position is None:
                continue
            for pair in self.sharded.lock_requests_for("update", (oid, position)):
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        return pairs

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client,
            lambda: self.sharded.migrate_leaf_group(
                self.source_id, self.leaf_page, self.oids
            ),
        )


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------


@dataclass
class RebalancePlan:
    """A planned boundary adjustment: the new partition plus the moves it needs.

    ``buckets`` groups the moves by ``(source shard, source leaf)`` — the
    unit :class:`RebalanceGroupMigration` executes — and ``loose`` holds the
    members with no indexed leaf at planning time (migrated per object).
    """

    partitioner: BoundaryPartitioner
    moves: List[int]
    imbalance_before: float
    loads: List[float] = field(default_factory=list)
    buckets: List[Tuple[int, int, List[int]]] = field(default_factory=list)
    loose: List[int] = field(default_factory=list)


@dataclass
class RebalanceReport:
    """Outcome of one :meth:`ShardedIndex.rebalance` call."""

    triggered: bool
    imbalance_before: float = 1.0
    imbalance_after: float = 1.0
    moves: int = 0
    schedule: Optional["ScheduleResult"] = None

    def describe(self) -> str:
        if not self.triggered:
            return "rebalance: not triggered"
        return (
            f"rebalance: moves={self.moves} "
            f"imbalance {self.imbalance_before:.2f} -> {self.imbalance_after:.2f}"
        )


class ShardRebalancer:
    """Feedback loop: monitor shard load, re-cut boundaries, migrate objects.

    Attach to a :class:`~repro.shard.index.ShardedIndex` (the ``rebalance``
    spec section of :func:`repro.api.open_index` does this declaratively).
    Once attached, the index records every routed operation into the
    monitor; the auto-trigger hooks — the engine's maintenance interleave
    for live sessions, the batch epilogue for serial batches — consult
    :meth:`should_rebalance` and execute :meth:`plan` as conflict-scheduled
    migration batches.  ``rebalances`` counts completed boundary changes and
    survives checkpoints (:meth:`state_to_spec`).
    """

    def __init__(
        self,
        num_shards: int,
        policy: Optional[RebalancePolicy] = None,
        rebalances: int = 0,
    ) -> None:
        self.policy = policy if policy is not None else RebalancePolicy()
        self.monitor = ShardLoadMonitor(num_shards)
        self.rebalances = rebalances

    # -- trigger ---------------------------------------------------------
    def should_rebalance(self, sharded: "ShardedIndex") -> bool:
        """Sample I/O and evaluate the policy against the current counters.

        The cheap operation-count gate runs first: this method is polled
        before every engine operation draw, and the per-shard I/O sampling
        is only worth paying once enough evidence has accumulated for a
        trigger to be possible at all.
        """
        if sharded.num_shards <= 1:
            return False
        if self.monitor.total_operations() < self.policy.evidence_required(
            self.rebalances
        ):
            return False
        self.monitor.sample_io(sharded.shards)
        return self.policy.should_trigger(self.monitor, self.rebalances)

    # -- planning --------------------------------------------------------
    def plan(self, sharded: "ShardedIndex", force: bool = False) -> Optional[RebalancePlan]:
        """Plan a boundary adjustment from the observed load (or populations).

        Each object is weighted by its owning shard's load share (load
        divided by population), so shifting boundaries equalises the load
        distribution; objects of shards with **no** recorded load carry
        zero weight (an idle region needs no capacity of its own — its
        objects ride along with wherever the load-driven cuts fall).  Only
        when *nothing* recorded any load — ``force`` on an idle index —
        do weights fall back to 1.0 and the plan equalises populations.
        Returns ``None`` when there is nothing to plan (single shard, empty
        index, or no move would change ownership).
        """
        if sharded.num_shards <= 1 or len(sharded) == 0:
            return None
        self.monitor.sample_io(sharded.shards)
        loads = self.monitor.loads()
        populations = sharded.shard_populations()
        weights = [
            loads[shard_id] / populations[shard_id] if populations[shard_id] else 0.0
            for shard_id in range(sharded.num_shards)
        ]
        if not any(weights):
            if not force:
                return None
            weights = [1.0] * sharded.num_shards
        records: List[Tuple[int, Point, int]] = []
        for oid in sorted(sharded.object_directory()):
            position = sharded.position_of(oid)
            shard_id = sharded.shard_for(oid)
            if position is None or shard_id is None:
                continue
            records.append((oid, position, shard_id))
        partitioner = plan_boundaries(
            [(position, weights[shard_id]) for _oid, position, shard_id in records],
            sharded.num_shards,
        )
        moves: List[int] = []
        pending: List[Tuple[int, int]] = []
        for oid, position, shard_id in records:
            if partitioner.shard_of(position) == shard_id:
                continue
            moves.append(oid)
            pending.append((oid, shard_id))
        if not moves:
            return None
        # Resolve leaf ownership in one batched (uncharged) lookup per shard
        # rather than one hash probe per object — under the process backend
        # each shard's batch is a single worker round-trip.
        by_shard: Dict[int, List[int]] = {}
        for oid, shard_id in pending:
            by_shard.setdefault(shard_id, []).append(oid)
        leaf_of: Dict[Tuple[int, int], Optional[int]] = {}
        for shard_id, oids in by_shard.items():
            pages = sharded.leaf_pages_of(shard_id, oids)
            for oid, leaf_page in zip(oids, pages):
                leaf_of[(shard_id, oid)] = leaf_page
        grouped: Dict[Tuple[int, int], List[int]] = {}
        loose: List[int] = []
        for oid, shard_id in pending:
            leaf_page = leaf_of[(shard_id, oid)]
            if leaf_page is None:
                loose.append(oid)
            else:
                grouped.setdefault((shard_id, leaf_page), []).append(oid)
        return RebalancePlan(
            partitioner=partitioner,
            moves=moves,
            imbalance_before=self.monitor.imbalance(),
            loads=loads,
            buckets=[
                (shard_id, leaf_page, members)
                for (shard_id, leaf_page), members in sorted(grouped.items())
            ],
            loose=loose,
        )

    # -- bookkeeping -----------------------------------------------------
    def committed(self, sharded: "ShardedIndex") -> None:
        """Record a completed boundary change and restart the evidence window."""
        self.rebalances += 1
        self.monitor.reset(sharded.shards)

    # -- persistence -----------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """The declarative (policy-only) spec section, JSON-round-trippable."""
        return self.policy.to_spec()

    def state_to_spec(self) -> Dict[str, Any]:
        """Checkpoint form: the policy spec plus the runtime counters."""
        spec = self.to_spec()
        spec["rebalances"] = self.rebalances
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, Any], num_shards: int) -> "ShardRebalancer":
        """Rebuild a rebalancer from a policy spec or a checkpointed state spec."""
        data = dict(spec)
        rebalances = int(data.pop("rebalances", 0))
        return cls(
            num_shards,
            policy=RebalancePolicy.from_spec(data),
            rebalances=rebalances,
        )


__all__ = [
    "RebalanceGroupMigration",
    "RebalanceMigration",
    "RebalancePlan",
    "RebalancePolicy",
    "RebalanceReport",
    "ShardLoadMonitor",
    "ShardRebalancer",
    "UpdateQueryMix",
    "plan_boundaries",
]
