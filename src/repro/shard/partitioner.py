"""Spatial partitioners: how the data space is split into shards.

A :class:`Partitioner` assigns every position in the unit square to exactly
one shard and publishes each shard's **boundary rectangle**.  The sharded
index routes every operation through this assignment: updates go to the
owning shard (or migrate between two shards when a move crosses a
boundary), and queries fan out to exactly the shards whose boundaries
intersect the query window.

The same locality argument that makes the paper's bottom-up updates cheap
makes spatial partitioning effective: objects move small distances between
updates, so the overwhelming majority of updates stay inside one shard and
cross-shard migrations are rare.  :class:`GridPartitioner` is the uniform
default; :class:`BoundaryPartitioner` accepts an explicit boundary list, the
pluggable escape hatch for skew-aware layouts (cf. the hotspot workloads,
where a uniform grid concentrates load on few shards).

Partitioners serialise to a plain-dict *spec* (:meth:`Partitioner.to_spec` /
:func:`partitioner_from_spec`) so a sharded checkpoint can record how its
page images were split.
"""

from __future__ import annotations

import abc
import bisect
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Point, Rect


def near_square_factoring(num_shards: int) -> Tuple[int, int]:
    """The most-square ``(columns, rows)`` factoring with exactly *num_shards* cells.

    Shared by :meth:`GridPartitioner.for_shards` and the rebalancer's
    boundary planner, so a rebalanced partition keeps the same
    ``columns x rows`` shape a fresh grid of the same shard count would
    have.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    rows = int(num_shards**0.5)
    while num_shards % rows:
        rows -= 1
    return num_shards // rows, rows


class Partitioner(abc.ABC):
    """Assignment of positions to shards, with published shard boundaries."""

    @property
    @abc.abstractmethod
    def num_shards(self) -> int:
        """Number of shards this partitioner routes to."""

    @abc.abstractmethod
    def shard_of(self, point: Point) -> int:
        """The shard owning *point*.  Total: every position maps somewhere."""

    @abc.abstractmethod
    def boundary(self, shard: int) -> Rect:
        """The boundary rectangle of *shard* (contains all its positions)."""

    @abc.abstractmethod
    def to_spec(self) -> Dict:
        """Plain-dict description, round-trippable via :func:`partitioner_from_spec`."""

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------
    def boundaries(self) -> List[Rect]:
        """Every shard's boundary rectangle, indexed by shard id."""
        return [self.boundary(shard) for shard in range(self.num_shards)]

    def shards_intersecting(self, window: Rect) -> List[int]:
        """Shards whose boundary rectangle intersects *window* (fan-out set)."""
        return [
            shard
            for shard in range(self.num_shards)
            if self.boundary(shard).intersects(window)
        ]

    def describe(self) -> str:
        return f"{type(self).__name__}(shards={self.num_shards})"


class GridPartitioner(Partitioner):
    """Uniform ``columns x rows`` grid over the unit square.

    Cell ``(col, row)`` is shard ``row * columns + col``.  Positions are
    clamped into the unit square before assignment, so the mapping is total
    even for degenerate inputs; every workload position in this repository
    is already inside the unit square (the movement model clamps), so each
    object's position always lies within its shard's boundary rectangle —
    the invariant the kNN pruning bound relies on.
    """

    def __init__(self, columns: int, rows: int = 1) -> None:
        if columns <= 0 or rows <= 0:
            raise ValueError("columns and rows must be positive")
        self.columns = columns
        self.rows = rows

    @classmethod
    def for_shards(cls, num_shards: int) -> "GridPartitioner":
        """The most-square ``columns x rows`` grid with exactly *num_shards* cells."""
        columns, rows = near_square_factoring(num_shards)
        return cls(columns=columns, rows=rows)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.columns * self.rows

    def shard_of(self, point: Point) -> int:
        col = min(self.columns - 1, max(0, int(point.x * self.columns)))
        row = min(self.rows - 1, max(0, int(point.y * self.rows)))
        return row * self.columns + col

    def boundary(self, shard: int) -> Rect:
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range (0..{self.num_shards - 1})")
        col = shard % self.columns
        row = shard // self.columns
        return Rect(
            col / self.columns,
            row / self.rows,
            (col + 1) / self.columns,
            (row + 1) / self.rows,
        )

    def to_spec(self) -> Dict:
        return {"kind": "grid", "columns": self.columns, "rows": self.rows}

    def describe(self) -> str:
        return f"grid {self.columns}x{self.rows}"


class BoundaryPartitioner(Partitioner):
    """Explicit boundary rectangles — the pluggable partition spec.

    The rectangles must jointly cover the unit square; a position belongs to
    the first rectangle that contains it (rectangles may share edges, as
    tiles do).  This is the escape hatch for skew-aware layouts: carve the
    hot region into many small shards and the cold remainder into few.
    """

    def __init__(self, boundaries: Sequence[Rect]) -> None:
        if not boundaries:
            raise ValueError("at least one boundary rectangle is required")
        self._boundaries = list(boundaries)

    @property
    def num_shards(self) -> int:
        return len(self._boundaries)

    def shard_of(self, point: Point) -> int:
        clamped = point.clamped()
        for shard, rect in enumerate(self._boundaries):
            if rect.contains_point(clamped):
                return shard
        raise ValueError(
            f"position {point!r} is not covered by any shard boundary"
        )

    def boundary(self, shard: int) -> Rect:
        return self._boundaries[shard]

    def to_spec(self) -> Dict:
        return {
            "kind": "boundaries",
            "boundaries": [list(rect.as_tuple()) for rect in self._boundaries],
        }

    def describe(self) -> str:
        return f"boundaries[{len(self._boundaries)}]"


class QuantileGridPartitioner(BoundaryPartitioner):
    """A ``columns x rows`` grid with per-column quantile cuts, O(log n) routing.

    The shape the rebalancer's boundary planner emits: x-cuts split the unit
    square into columns and each column carries its own y-cuts.  The
    boundary rectangles (column-major: all rows of column 0 first) make this
    a :class:`BoundaryPartitioner`, but :meth:`shard_of` routes by bisecting
    the cut arrays instead of scanning every rectangle — the post-rebalance
    routing stays as cheap as the uniform grid it replaced.  A point exactly
    on an interior cut belongs to the lower/left cell, matching the
    first-containing-rectangle rule of the rectangle list.
    """

    def __init__(self, x_cuts: Sequence[float], y_cuts: Sequence[Sequence[float]]) -> None:
        if len(x_cuts) < 2:
            raise ValueError("x_cuts must have at least two entries (0.0 and 1.0)")
        if len(y_cuts) != len(x_cuts) - 1:
            raise ValueError("one y-cut list is required per column")
        rows = {len(cuts) - 1 for cuts in y_cuts}
        if len(rows) != 1:
            raise ValueError("every column must have the same number of rows")
        self._x_cuts = [float(value) for value in x_cuts]
        self._y_cuts = [[float(value) for value in cuts] for cuts in y_cuts]
        self._rows = rows.pop()
        super().__init__(
            [
                Rect(
                    self._x_cuts[column],
                    column_cuts[row],
                    self._x_cuts[column + 1],
                    column_cuts[row + 1],
                )
                for column, column_cuts in enumerate(self._y_cuts)
                for row in range(self._rows)
            ]
        )

    def shard_of(self, point: Point) -> int:
        clamped = point.clamped()
        # bisect_left over the interior cuts: a coordinate equal to a cut
        # lands in the lower/left cell, exactly like the first-containing
        # scan over the column-major rectangle list.
        column = bisect.bisect_left(self._x_cuts, clamped.x, 1, len(self._x_cuts) - 1) - 1
        column_cuts = self._y_cuts[column]
        row = bisect.bisect_left(column_cuts, clamped.y, 1, len(column_cuts) - 1) - 1
        return column * self._rows + row

    def to_spec(self) -> Dict:
        return {
            "kind": "quantile_grid",
            "x_cuts": list(self._x_cuts),
            "y_cuts": [list(cuts) for cuts in self._y_cuts],
        }

    def describe(self) -> str:
        return f"quantile grid {len(self._y_cuts)}x{self._rows}"


def partitioner_from_spec(spec: Dict) -> Partitioner:
    """Rebuild a partitioner from its :meth:`~Partitioner.to_spec` dict."""
    kind = spec.get("kind")
    if kind == "grid":
        return GridPartitioner(columns=spec["columns"], rows=spec["rows"])
    if kind == "boundaries":
        return BoundaryPartitioner(
            [Rect(*values) for values in spec["boundaries"]]
        )
    if kind == "quantile_grid":
        return QuantileGridPartitioner(spec["x_cuts"], spec["y_cuts"])
    raise ValueError(f"unknown partitioner spec kind {kind!r}")
