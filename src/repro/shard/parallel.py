"""Parallel shard-execution backends: serial, thread, and process workers.

A :class:`~repro.shard.index.ShardedIndex` owns N fully independent
:class:`~repro.core.index.MovingObjectIndex` shards — disjoint trees, disks,
buffers and counters — so shard-local work commutes freely across shards.
This module turns that structural independence into wall-clock parallelism
behind one small seam: every shard-local step becomes a picklable **command**
(:class:`Insert`, :class:`ApplyBatch`, :class:`Range`, :class:`KNNProbe`,
the rebalance leaf-group :class:`ExportGroup`/:class:`ImportGroup` pair, …),
one function (:func:`execute_command`) interprets a command against one
shard, and a pluggable backend decides *where* that interpreter runs:

* **serial** — no backend attached; the sharded index runs its original
  in-process loops untouched (the default, and the baseline every other
  backend must match bit for bit);
* :class:`ThreadBackend` — the same in-process shard objects, but fan-out
  dispatches (per-shard batch buckets, multi-shard range queries) run on a
  thread pool.  Shards are disjoint object graphs, so per-shard commands
  never share mutable state;
* :class:`ProcessBackend` — one long-lived worker process per shard slot
  (``workers`` may be smaller than the shard count; shard *i* lives in
  worker ``i % workers``).  Each worker owns the authoritative copy of its
  shards, hydrated once at attach time from the shared checkpoint page
  images, and the coordinator keeps per-shard **mirrors** of the metadata
  the router needs between dispatches (object positions, I/O counters, root
  MBRs, disk sizes).  Commands are batched **per worker per dispatch** —
  one pipe message carries every command a dispatch has for that worker —
  which amortises IPC over whole batch buckets instead of paying a round
  trip per operation.

Determinism and exactness
-------------------------
Backends are not allowed to change answers or costs: every command is the
literal shard-local half of the serial code path (``ApplyBatch`` pre-commits
positions then runs the shard's group-by-leaf executor exactly as
``_flush_updates`` does; ``KNNProbe`` replays the serial candidate-
consumption loop against the running cross-shard best list), so results,
tie-breaks, and logical/physical I/O counters are identical across all
three backends — the shard-equivalence suite asserts this per strategy.
Cross-shard kNN probes stay sequential even under the process backend: the
pruning radius each probe carries comes from the previous shard's answer,
and probing speculatively in parallel would charge I/O the serial path
never pays.

Every worker reply carries, besides the command payloads, a state envelope
per touched shard: a full :class:`~repro.storage.stats.IOStatistics`
snapshot (copied field-wise into the coordinator's mirror, so
``io_snapshot``/batch I/O deltas/rebalance load sampling keep working
unchanged), the tree's root MBR, and the disk page count.
"""

from __future__ import annotations

import bisect
import multiprocessing
import os
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect, kernels
from repro.storage.stats import IOStatistics
from repro.update.base import BatchUpdate

# ---------------------------------------------------------------------------
# The command protocol (everything here must pickle cleanly)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Insert:
    """Insert a new object into the shard."""

    oid: int
    location: Point


@dataclass(frozen=True)
class Update:
    """In-shard move through the shard's update strategy; returns the outcome."""

    oid: int
    new_location: Point


@dataclass(frozen=True)
class Delete:
    """Remove an object from the shard; returns whether it existed."""

    oid: int


@dataclass(frozen=True)
class ApplyBatch:
    """One shard's coalesced batch bucket, run through the group-by-leaf executor.

    Mirrors the serial ``_flush_updates`` shard step exactly: positions are
    pre-committed, then the shard's :class:`~repro.update.batch.BatchExecutor`
    runs.  Returns the sub-result counters (groups, largest group, residuals).
    """

    requests: Tuple[BatchUpdate, ...]


@dataclass(frozen=True)
class Range:
    """Window query against this shard; returns the shard's hits in order."""

    window: Rect


@dataclass(frozen=True)
class KNNProbe:
    """One shard's step of the cross-shard best-first kNN.

    Carries the running merged best list (the pruning radius); the worker
    replays the exact serial consumption loop — consume the shard's
    distance-ordered stream only while candidates can still enter the top
    *k* — and returns the updated best list.
    """

    point: Point
    k: int
    best: Tuple[Tuple[float, int], ...]


@dataclass(frozen=True)
class LeafOf:
    """Uncharged leaf-page lookups (rebalance planning); one entry per oid."""

    oids: Tuple[int, ...]


@dataclass(frozen=True)
class ExportGroup:
    """Source half of a rebalance leaf-group handoff.

    Removes the confirmed members from the planned leaf with one
    CondenseTree pass (:meth:`~repro.rtree.tree.RTree.remove_group`) and
    returns their entry rectangles.  When the leaf dissolved or a member
    left it since planning, nothing is mutated and ``ok`` is False — the
    coordinator falls back to per-object reroutes, exactly like the serial
    path.
    """

    leaf_page: int
    oids: Tuple[int, ...]
    hint: Point


@dataclass(frozen=True)
class ImportGroup:
    """Destination half of a rebalance handoff: bulk-insert exported entries."""

    entries: Tuple[Tuple[int, Rect], ...]
    positions: Tuple[Tuple[int, Point], ...]


@dataclass(frozen=True)
class ConfigureBuffer:
    """Install this shard's share of the aggregate buffer capacity (clears it)."""

    capacity: int


@dataclass(frozen=True)
class ResetStats:
    """Zero the shard's I/O and outcome counters."""


@dataclass(frozen=True)
class Validate:
    """Run the shard's structural validation; returns its report and height."""

    check_min_fill: bool = False


@dataclass(frozen=True)
class RefreshSummary:
    """Rebuild the shard's summary structure from the tree (GBU)."""


@dataclass(frozen=True)
class SetStrategy:
    """Hot-swap the shard's update strategy in place; returns the new name."""

    name: str


@dataclass(frozen=True)
class Checkpoint:
    """Return the shard's full checkpoint document (page images + config)."""


@dataclass(frozen=True)
class KernelBackendQuery:
    """Report which geometry kernel backend this process resolved."""


@dataclass(frozen=True)
class SetIOLatency:
    """Charge real wall-clock *seconds* per physical page transfer."""

    seconds: float


Command = Any  # any of the dataclasses above


# ---------------------------------------------------------------------------
# The shared interpreter: one command against one shard
# ---------------------------------------------------------------------------


def execute_command(shard, command: Command) -> Any:
    """Run one *command* against one :class:`MovingObjectIndex` shard.

    This is the single interpreter every backend shares — the thread
    backend calls it in-process, the worker main loop calls it in its own
    process — so a command means exactly one thing regardless of where the
    shard lives.  Each branch is the literal shard-local half of the
    corresponding serial :class:`~repro.shard.index.ShardedIndex` code path.
    """
    if isinstance(command, Insert):
        shard.insert(command.oid, command.location)
        return None
    if isinstance(command, Update):
        return shard.update(command.oid, command.new_location)
    if isinstance(command, Delete):
        return shard.delete(command.oid)
    if isinstance(command, ApplyBatch):
        requests = list(command.requests)
        for request in requests:
            shard._positions[request.oid] = request.new_location
        sub = shard.batch.execute(requests)
        return {
            "groups": sub.groups,
            "largest_group": sub.largest_group,
            "residuals": sub.residuals,
        }
    if isinstance(command, Range):
        return shard.range_query(command.window)
    if isinstance(command, KNNProbe):
        best: List[Tuple[float, int]] = list(command.best)
        for candidate in shard.tree.iter_knn(command.point, command.k):
            if len(best) >= command.k and candidate[0] > best[-1][0]:
                break  # stream is distance-ordered: nothing closer follows
            bisect.insort(best, candidate)
            del best[command.k :]
        return best
    if isinstance(command, LeafOf):
        return [shard.hash_index.peek(oid) for oid in command.oids]
    if isinstance(command, ExportGroup):
        path = shard.tree.find_path_to_leaf(
            command.leaf_page, Rect.from_point(command.hint)
        )
        if path is None:
            return {"ok": False}
        try:
            moved = shard.tree.remove_group(path, list(command.oids))
        except LookupError:
            # A member left the (still existing) leaf — nothing was mutated.
            return {"ok": False}
        for oid in command.oids:
            shard._positions.pop(oid, None)
        return {"ok": True, "entries": [(entry.child, entry.rect) for entry in moved]}
    if isinstance(command, ImportGroup):
        from repro.rtree.node import Entry  # local: keep module imports light

        shard.tree.insert_group(
            [Entry(rect, oid) for oid, rect in command.entries]
        )
        for oid, position in command.positions:
            shard._positions[oid] = position
        return None
    if isinstance(command, ConfigureBuffer):
        shard.buffer.clear()
        shard.buffer.capacity = command.capacity
        return None
    if isinstance(command, ResetStats):
        shard.reset_statistics()
        return None
    if isinstance(command, Validate):
        return {
            "report": shard.validate(check_min_fill=command.check_min_fill),
            "height": shard.tree.height,
        }
    if isinstance(command, RefreshSummary):
        shard.refresh_summary()
        return None
    if isinstance(command, SetStrategy):
        return shard.set_strategy(command.name)
    if isinstance(command, Checkpoint):
        from repro.core.persistence import _index_document

        return _index_document(shard)
    if isinstance(command, KernelBackendQuery):
        return kernels.get_backend()
    if isinstance(command, SetIOLatency):
        shard.disk.io_latency_s = command.seconds
        return None
    raise TypeError(f"unknown shard command {command!r}")


def assign_stats(target: IOStatistics, source: IOStatistics) -> None:
    """Overwrite *target*'s counters in place with *source*'s values.

    The coordinator keeps each shard's :class:`IOStatistics` object identity
    stable (the buffer pool, disk manager and hash index of the mirror all
    hold references to it), so syncing worker counters must assign fields,
    not replace the object.
    """
    target.physical_reads = source.physical_reads
    target.physical_writes = source.physical_writes
    target.logical_reads = source.logical_reads
    target.logical_writes = source.logical_writes
    target.buffer_hits = source.buffer_hits
    target.dirty_evictions = source.dirty_evictions
    target.hash_index_reads = source.hash_index_reads
    target.over_capacity_peak = source.over_capacity_peak
    target.extra = dict(source.extra)


def _shard_state(shard) -> Dict[str, Any]:
    """The per-shard state envelope piggybacked on every worker reply."""
    mbr = shard.tree.root_mbr()
    return {
        "stats": shard.stats.snapshot(),
        "root_mbr": None if mbr is None else tuple(mbr),
        "pages": len(shard.disk),
    }


# ---------------------------------------------------------------------------
# Worker process main loop
# ---------------------------------------------------------------------------


def _worker_main(conn, init: Dict[int, Dict[str, Any]], kernel_backend: str) -> None:
    """Own a set of shards and serve batched command dispatches over *conn*.

    ``init`` maps shard id -> hydration payload: the shard's checkpoint
    document (page images + embedded config spec), the coordinator's current
    counter values (restoring resets them; the worker continues the
    coordinator's sequence), the buffer share, and the disk latency knob.
    """
    try:
        if kernel_backend in kernels.available_backends():
            kernels.set_backend(kernel_backend)
        from repro.core.persistence import _restore_index

        shards: Dict[int, Any] = {}
        for shard_id, payload in init.items():
            shard = _restore_index(payload["document"])
            assign_stats(shard.stats, payload["stats"])
            shard.buffer.clear()
            shard.buffer.capacity = payload["buffer_capacity"]
            shard.disk.io_latency_s = payload["io_latency"]
            shards[shard_id] = shard
        conn.send({"ok": True})
    except BaseException as error:  # hydration failed: report, then exit
        conn.send({"ok": False, "error": f"worker hydration failed: {error!r}"})
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if message[0] == "shutdown":
            conn.send({"ok": True})
            return
        _tag, per_shard = message
        try:
            payloads = {
                shard_id: [
                    execute_command(shards[shard_id], command)
                    for command in commands
                ]
                for shard_id, commands in per_shard.items()
            }
            state = {shard_id: _shard_state(shards[shard_id]) for shard_id in per_shard}
            conn.send({"ok": True, "payloads": payloads, "state": state})
        except BaseException as error:
            import traceback

            conn.send(
                {"ok": False, "error": f"{error!r}\n{traceback.format_exc()}"}
            )


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ShardBackend:
    """Common surface of the pluggable execution backends.

    ``dispatch`` takes per-shard command lists, runs all shards' lists
    concurrently (each shard's own list stays in order), and returns the
    per-shard result payload lists.  ``remote`` tells the coordinator
    whether its local shard objects are authoritative (thread) or mirrors
    synced from worker state envelopes (process).
    """

    name = "serial"
    remote = False

    def dispatch(
        self, per_shard: Dict[int, Sequence[Command]]
    ) -> Dict[int, List[Any]]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def describe(self) -> str:
        return self.name


class ThreadBackend(ShardBackend):
    """Fan shard-local commands out over an in-process thread pool.

    The shard objects stay authoritative in the coordinator process;
    per-shard command lists for *different* shards run concurrently on the
    pool (shards share no mutable state), single-shard dispatches run
    inline.  Useful when the simulated disk charges real device latency —
    sleeping transfers overlap across shards — and as the bridge backend
    that keeps the full engine SPI available.
    """

    name = "thread"
    remote = False

    def __init__(self, sharded, workers: Optional[int] = None) -> None:
        self.sharded = sharded
        self.workers = max(1, min(workers or sharded.num_shards, sharded.num_shards))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )

    def _run(self, shard_id: int, commands: Sequence[Command]) -> List[Any]:
        shard = self.sharded.shards[shard_id]
        return [execute_command(shard, command) for command in commands]

    def dispatch(
        self, per_shard: Dict[int, Sequence[Command]]
    ) -> Dict[int, List[Any]]:
        if len(per_shard) <= 1 or self.workers == 1:
            return {
                shard_id: self._run(shard_id, commands)
                for shard_id, commands in per_shard.items()
            }
        futures = {
            shard_id: self._pool.submit(self._run, shard_id, commands)
            for shard_id, commands in per_shard.items()
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def describe(self) -> str:
        return f"thread[{self.workers}]"


def _terminate_workers(processes, connections, owner_pid) -> None:
    """Finalizer: make sure worker processes never outlive the backend.

    Fork-started workers inherit the coordinator's finalizer registry, so
    this also runs inside each worker at its own exit — where the Process
    handles belong to another process and must not be touched.
    """
    if os.getpid() != owner_pid:
        return
    for conn in connections:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for process in processes:
        if process.is_alive():
            process.terminate()
        process.join(timeout=2.0)


class ProcessBackend(ShardBackend):
    """Long-lived per-shard worker processes with batched pipe IPC.

    Worker ``w`` owns shards ``{i : i % workers == w}`` — with fewer workers
    than shards each worker serialises its own shards, which is exactly the
    serial-vs-2-vs-4-workers axis the scaling benchmark sweeps.  Workers are
    hydrated once (checkpoint page images + the coordinator's live counter
    values) and then serve command batches until detached; the coordinator's
    shard objects become mirrors, refreshed from the state envelope every
    reply carries.

    The coordinator's kernel backend is propagated two ways: via the
    ``REPRO_KERNEL_BACKEND`` environment variable (honoured at import by
    spawn-started children) and explicitly in the hydration payload (fork-
    started children imported the module long ago).
    """

    name = "process"
    remote = True

    def __init__(
        self,
        sharded,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.sharded = sharded
        num_shards = sharded.num_shards
        self.workers = max(1, min(workers or num_shards, num_shards))
        self.root_mbrs: List[Optional[Rect]] = [
            shard.tree.root_mbr() for shard in sharded.shards
        ]
        self.disk_pages: List[int] = [len(shard.disk) for shard in sharded.shards]

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)

        # Propagate the kernel backend and make the package importable for
        # spawn-started children (fork inherits both anyway).
        backend_name = kernels.get_backend()
        os.environ["REPRO_KERNEL_BACKEND"] = backend_name
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = os.environ.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )

        from repro.core.persistence import _index_document

        self._owner: List[int] = [
            shard_id % self.workers for shard_id in range(num_shards)
        ]
        self._connections = []
        self._processes = []
        for worker_id in range(self.workers):
            init: Dict[int, Dict[str, Any]] = {}
            for shard_id in range(num_shards):
                if self._owner[shard_id] != worker_id:
                    continue
                shard = sharded.shards[shard_id]
                init[shard_id] = {
                    "document": _index_document(shard),
                    "stats": shard.stats.snapshot(),
                    "buffer_capacity": shard.buffer.capacity,
                    "io_latency": getattr(shard.disk, "io_latency_s", 0.0),
                }
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, init, backend_name),
                daemon=True,
                name=f"repro-shard-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        for worker_id, conn in enumerate(self._connections):
            reply = conn.recv()
            if not reply.get("ok"):
                self.close()
                raise RuntimeError(
                    f"shard worker {worker_id} failed to start: "
                    f"{reply.get('error')}"
                )
        self._finalizer = weakref.finalize(
            self,
            _terminate_workers,
            list(self._processes),
            list(self._connections),
            os.getpid(),
        )

    def dispatch(
        self, per_shard: Dict[int, Sequence[Command]]
    ) -> Dict[int, List[Any]]:
        per_worker: Dict[int, Dict[int, List[Command]]] = {}
        for shard_id, commands in per_shard.items():
            per_worker.setdefault(self._owner[shard_id], {})[shard_id] = list(commands)
        # One message per involved worker — send everything first so workers
        # run concurrently, then collect.
        for worker_id, bundle in per_worker.items():
            self._connections[worker_id].send(("dispatch", bundle))
        payloads: Dict[int, List[Any]] = {}
        errors: List[str] = []
        for worker_id in per_worker:
            try:
                reply = self._connections[worker_id].recv()
            except EOFError:
                errors.append(f"shard worker {worker_id} died mid-dispatch")
                continue
            if not reply.get("ok"):
                errors.append(
                    f"shard worker {worker_id} failed: {reply.get('error')}"
                )
                continue
            payloads.update(reply["payloads"])
            for shard_id, state in reply["state"].items():
                assign_stats(self.sharded.shards[shard_id].stats, state["stats"])
                mbr = state["root_mbr"]
                self.root_mbrs[shard_id] = None if mbr is None else Rect(*mbr)
                self.disk_pages[shard_id] = state["pages"]
        if errors:
            raise RuntimeError("; ".join(errors))
        return payloads

    def close(self) -> None:
        for worker_id, conn in enumerate(self._connections):
            try:
                conn.send(("shutdown",))
            except (OSError, BrokenPipeError):
                continue
        for conn in self._connections:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
        for conn in self._connections:
            conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=2.0)
        if hasattr(self, "_finalizer"):
            self._finalizer.detach()

    def describe(self) -> str:
        return f"process[{self.workers}]"


BACKENDS = ("serial", "thread", "process")


def make_backend(
    sharded,
    backend: str,
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Optional[ShardBackend]:
    """Construct the named backend for *sharded* (``None`` for serial)."""
    if backend == "serial":
        return None
    if backend == "thread":
        return ThreadBackend(sharded, workers=workers)
    if backend == "process":
        return ProcessBackend(sharded, workers=workers, start_method=start_method)
    raise ValueError(
        f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
    )


__all__ = [
    "ApplyBatch",
    "BACKENDS",
    "Checkpoint",
    "ConfigureBuffer",
    "Delete",
    "ExportGroup",
    "ImportGroup",
    "Insert",
    "KNNProbe",
    "KernelBackendQuery",
    "LeafOf",
    "ProcessBackend",
    "Range",
    "RefreshSummary",
    "ResetStats",
    "SetIOLatency",
    "SetStrategy",
    "ShardBackend",
    "ThreadBackend",
    "Update",
    "Validate",
    "assign_stats",
    "execute_command",
    "make_backend",
]
