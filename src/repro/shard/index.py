"""The sharded moving-object index.

:class:`ShardedIndex` scales the paper's system horizontally: a spatial
:class:`~repro.shard.partitioner.Partitioner` routes every operation to one
of N independent :class:`~repro.core.index.MovingObjectIndex` shards, each
with its own disk, buffer pool, R-tree, hash index, summary structure and
I/O counters.  The facade satisfies the same
:class:`~repro.core.protocol.SpatialIndexFacade` protocol as a single index,
so benchmarks, examples, persistence and the concurrent operation engine
drive either interchangeably.

Routing and migration
---------------------
A shard-level **object directory** maps each object id to its owning shard;
the per-shard hash indexes stay authoritative for the object's leaf page
within that shard.  An update whose new position stays inside the owning
shard's region is executed by that shard's strategy exactly as before — the
common case, by the paper's locality argument.  An update that crosses a
partition boundary becomes a **migration**: delete from the old shard,
insert into the new one, directory updated
(:attr:`~repro.update.base.UpdateOutcome.MIGRATED`).

Queries
-------
``range_query`` fans out to only the shards whose boundary rectangles
intersect the window; ``knn`` runs best-first over shard boundaries with a
pruning radius — shards whose boundary lies farther than the current k-th
candidate distance are never visited.  Both return exactly what a single
index over the same objects returns (the equivalence test suite asserts
this for 1, 2 and 8 shards, including boundary-crossing migrations).

Concurrency
-----------
Under the online engine, every lock granule a shard operation names is
namespaced with the shard id (:func:`~repro.concurrency.dgl.namespace_pairs`),
so operations on different shards never conflict and a migration locks its
delete scope in the source shard *and* its insert scope in the target shard
atomically.  Batches partition into group-by-leaf buckets **per shard**;
buckets of different shards schedule concurrently, which is what the
``shard_scaling`` figure measures.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import repro.api.operations as api_ops
from repro.api.errors import DuplicateObjectError, UnknownObjectError
from repro.api.results import QueryCursor
from repro.concurrency.dgl import namespace_pairs
from repro.concurrency.engine import (
    GroupOperation,
    PreparedBatch,
    ReplayOperation,
)
from repro.concurrency.scheduler import VirtualOperation
from repro.core.config import IndexConfig
from repro.core.index import MovingObjectIndex
from repro.core.protocol import SpatialIndexFacade
from repro.durability.wal import (
    LogRecord,
    delete_record,
    insert_record,
    migrate_in_record,
    migrate_out_record,
    set_strategy_record,
    update_record,
)
from repro.geometry import Point, Rect
from repro.shard import parallel as shard_parallel
from repro.shard.adaptive import AdaptiveStrategyController
from repro.shard.partitioner import GridPartitioner, Partitioner
from repro.shard.rebalance import (
    RebalanceGroupMigration,
    RebalanceMigration,
    RebalancePlan,
    RebalanceReport,
    ShardRebalancer,
)
from repro.storage import IOStatistics
from repro.storage.buffer import ClientIOCounters
from repro.update import UpdateOutcome
from repro.update.base import BatchUpdate
from repro.update.batch import (
    BatchResult,
    DeleteOp,
    InsertOp,
    KNNOp,
    Operation,
    QueryOp,
    coalesce_updates,
    parse_operation_stream,
)


class MigrationOperation(VirtualOperation):
    """A batch member whose move crosses a shard boundary.

    Carries the typed :class:`repro.api.operations.Migrate` internal
    operation; its engine normal form is the update's, so the lock scope —
    delete scope in the source shard plus insert scope in the target shard,
    both namespaced, acquired all-or-nothing — comes from the same
    ``lock_requests_for`` dispatch every other operation uses.  A migration
    therefore serialises with exactly the operations it truly conflicts
    with in either shard and nothing else.
    """

    __slots__ = ("engine", "sharded", "migrate", "request", "result")
    kind = "migration"

    def __init__(self, engine, sharded: "ShardedIndex", request: BatchUpdate, result):
        self.engine = engine
        self.sharded = sharded
        self.migrate = api_ops.Migrate(request.oid, request.new_location)
        self.request = request
        self.result = result

    def lock_requests(self):
        return self.sharded.lock_requests_for(*self.migrate.normalise())

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client,
            lambda: self.sharded._execute_migration(self.request, self.result),
        )


class ShardedIndex(SpatialIndexFacade):
    """N independent moving-object indexes behind one spatial router.

    Parameters
    ----------
    config:
        The :class:`IndexConfig` every shard is built with (shards are
        homogeneous; the buffer percentage applies to each shard's own
        database, so the aggregate buffer tracks the aggregate data).
    partitioner:
        Spatial partitioner; defaults to a near-square uniform grid of
        *num_shards* cells.
    num_shards:
        Convenience when no explicit partitioner is given (default 4).
    shards:
        Pre-built shard indexes to adopt instead of constructing fresh ones
        (checkpoint restore); must match the partitioner's shard count.
    """

    def __init__(
        self,
        config: Optional[IndexConfig] = None,
        partitioner: Optional[Partitioner] = None,
        num_shards: Optional[int] = None,
        shards: Optional[List[MovingObjectIndex]] = None,
    ) -> None:
        if partitioner is None:
            partitioner = GridPartitioner.for_shards(
                4 if num_shards is None else num_shards
            )
        elif num_shards is not None and num_shards != partitioner.num_shards:
            raise ValueError(
                f"num_shards={num_shards} conflicts with the partitioner's "
                f"{partitioner.num_shards} shards"
            )
        if shards is not None and len(shards) != partitioner.num_shards:
            raise ValueError(
                f"partitioner expects {partitioner.num_shards} shards, "
                f"got {len(shards)}"
            )
        self.config = config if config is not None else IndexConfig()
        self.partitioner = partitioner
        self.shards: List[MovingObjectIndex] = (
            shards
            if shards is not None
            else [MovingObjectIndex(self.config) for _ in range(partitioner.num_shards)]
        )
        #: Object directory: oid -> owning shard id.  The per-shard hash
        #: indexes remain authoritative for the leaf page within the shard.
        self._shard_of: Dict[int, int] = {
            oid: shard_id
            for shard_id, shard in enumerate(self.shards)
            for oid in shard._positions
        }
        #: Cross-shard migrations executed since the last statistics reset.
        self.migrations = 0
        #: Optional online rebalancer (attached via :meth:`attach_rebalancer`
        #: or the declarative ``rebalance`` spec section).  When present,
        #: every routed operation is recorded into its load monitor and the
        #: batch/engine paths auto-trigger boundary adjustments.
        self.rebalancer: Optional[ShardRebalancer] = None
        #: Optional adaptive strategy controller (attached via
        #: :meth:`attach_adaptive` or the declarative ``adaptive`` spec
        #: section).  When present, every routed operation is recorded into
        #: its monitor and the batch/engine paths auto-trigger per-shard
        #: strategy switches.
        self.adaptive: Optional[AdaptiveStrategyController] = None
        #: True while a rebalance migration executes: the rebalancer's own
        #: traffic must not land in the load monitor's evidence window, or a
        #: re-cut displacing more than ``cooldown`` objects would re-satisfy
        #: the trigger gate by itself and storm.
        self._suppress_load_recording = False
        #: Attached parallel execution backend (``None`` = serial: the
        #: original in-process code paths run untouched).  See
        #: :mod:`repro.shard.parallel` and :meth:`set_parallel`.
        self._backend: Optional[shard_parallel.ShardBackend] = None
        #: Declarative ``parallel`` spec section of the attached backend
        #: (``{"backend": ..., "workers": ...}``), ``None`` when serial.
        self.parallel_spec: Optional[Dict[str, object]] = None

    @classmethod
    def from_restored_shards(
        cls, partitioner: Partitioner, shards: List[MovingObjectIndex]
    ) -> "ShardedIndex":
        """Assemble a sharded index from already-restored shard indexes.

        Used by checkpoint loading: the object directory is a derived
        structure and is rebuilt from the shards' own position tables.
        """
        return cls(config=shards[0].config, partitioner=partitioner, shards=shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    def shard_for(self, oid: int) -> Optional[int]:
        """The shard currently owning *oid* (``None`` if absent)."""
        return self._shard_of.get(oid)

    def shard_populations(self) -> List[int]:
        """Number of objects per shard (directory view)."""
        populations = [0] * self.num_shards
        for shard_id in self._shard_of.values():
            populations[shard_id] += 1
        return populations

    def population_imbalance(self) -> float:
        """Max/mean of the shard populations (1.0 = balanced, also when empty)."""
        populations = self.shard_populations()
        total = sum(populations)
        if total == 0:
            return 1.0
        return max(populations) * self.num_shards / total

    def object_directory(self) -> Iterable[int]:
        """The object ids currently routed (directory keys; do not mutate)."""
        return self._shard_of.keys()

    # ------------------------------------------------------------------
    # Parallel execution (repro.shard.parallel)
    # ------------------------------------------------------------------
    def set_parallel(
        self,
        backend: str = "process",
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        """Attach a shard-execution backend: ``"serial"``/``"thread"``/``"process"``.

        ``"serial"`` detaches any backend and restores the original
        in-process code paths.  ``"thread"`` fans per-shard work out over a
        thread pool while the shard objects stay authoritative in this
        process.  ``"process"`` spawns ``workers`` long-lived worker
        processes (default: one per shard), hydrates them from the current
        shard state, and routes every shard-local step through the batched
        command protocol; the local shard objects become metadata mirrors.
        All three produce identical answers, tie-breaks and I/O counters.
        """
        self.detach_parallel()
        if backend == "serial":
            return
        resolved = max(1, min(workers or self.num_shards, self.num_shards))
        self._backend = shard_parallel.make_backend(
            self, backend, workers=resolved, start_method=start_method
        )
        self.parallel_spec = {"backend": backend, "workers": resolved}

    def detach_parallel(self) -> None:
        """Detach the backend (syncing worker-owned state back when remote).

        After a process backend detaches, the local shards hold the
        authoritative tree/page state pulled from the workers, the exact
        I/O counters the mirrors tracked, and their previous buffer
        capacities — but the buffer *contents* come back cold (page images
        travel through the checkpoint codec, cached frames do not).
        """
        backend = self._backend
        if backend is None:
            self.parallel_spec = None
            return
        documents = None
        counters = None
        if backend.remote:
            # Detaching is maintenance, not workload: the worker-side buffer
            # flush the checkpoint performs must not leak into the counters,
            # so the pre-checkpoint mirror values are what detach restores.
            counters = [shard.stats.snapshot() for shard in self.shards]
            payloads = backend.dispatch(
                {sid: [shard_parallel.Checkpoint()] for sid in range(self.num_shards)}
            )
            documents = [payloads[sid][0] for sid in range(self.num_shards)]
        backend.close()
        self._backend = None
        self.parallel_spec = None
        if documents is not None:
            from repro.core.persistence import _restore_index

            for shard_id, document in enumerate(documents):
                mirror = self.shards[shard_id]
                restored = _restore_index(document)
                # _restore_index resets counters and re-sizes the buffer
                # against the lone shard; the mirror tracked the exact
                # counters and the aggregate buffer split — carry both over.
                shard_parallel.assign_stats(restored.stats, counters[shard_id])
                restored.buffer.clear()
                restored.buffer.capacity = mirror.buffer.capacity
                restored.disk.io_latency_s = mirror.disk.io_latency_s
                self.shards[shard_id] = restored

    def _dispatch(
        self, per_shard: Dict[int, List[object]]
    ) -> Dict[int, List[object]]:
        assert self._backend is not None
        return self._backend.dispatch(per_shard)

    def _dispatch_one(self, shard_id: int, command: object) -> object:
        return self._dispatch({shard_id: [command]})[shard_id][0]

    def _shard_insert(self, shard_id: int, oid: int, location: Point) -> None:
        """Backend-routed ``shard.insert`` keeping the position mirror exact."""
        if self._backend is None:
            self.shards[shard_id].insert(oid, location)
            return
        self._dispatch_one(shard_id, shard_parallel.Insert(oid, location))
        if self._backend.remote:
            self.shards[shard_id]._positions[oid] = location

    def _shard_update(
        self, shard_id: int, oid: int, new_location: Point
    ) -> UpdateOutcome:
        if self._backend is None:
            return self.shards[shard_id].update(oid, new_location)
        outcome = self._dispatch_one(
            shard_id, shard_parallel.Update(oid, new_location)
        )
        if self._backend.remote:
            self.shards[shard_id]._positions[oid] = new_location
        return outcome

    def _shard_delete(self, shard_id: int, oid: int) -> bool:
        if self._backend is None:
            return self.shards[shard_id].delete(oid)
        removed = self._dispatch_one(shard_id, shard_parallel.Delete(oid))
        if self._backend.remote:
            self.shards[shard_id]._positions.pop(oid, None)
        return bool(removed)

    def _shard_root_mbr(self, shard_id: int) -> Optional[Rect]:
        """A shard's content MBR — from the worker mirror when remote."""
        backend = self._backend
        if backend is not None and backend.remote:
            return backend.root_mbrs[shard_id]
        return self.shards[shard_id].tree.root_mbr()

    def _shard_disk_sizes(self) -> List[int]:
        backend = self._backend
        if backend is not None and backend.remote:
            return list(backend.disk_pages)
        return [len(shard.disk) for shard in self.shards]

    def leaf_pages_of(
        self, shard_id: int, oids: List[int]
    ) -> List[Optional[int]]:
        """Uncharged leaf-page lookups for *oids* in one shard (batched).

        The rebalance planner resolves every planned move's current leaf
        through this method — one round trip per shard under the process
        backend instead of one per object.
        """
        backend = self._backend
        if backend is not None and backend.remote:
            return self._dispatch_one(
                shard_id, shard_parallel.LeafOf(tuple(oids))
            )
        shard = self.shards[shard_id]
        return [shard.hash_index.peek(oid) for oid in oids]

    def set_io_latency(self, seconds: float) -> None:
        """Charge *seconds* of real wall time per physical page transfer.

        Applied to every shard's simulated disk — and, when a process
        backend is attached, to the authoritative worker-side disks too —
        so serial and parallel runs pay the identical per-transfer cost.
        """
        for shard in self.shards:
            shard.disk.io_latency_s = seconds
        backend = self._backend
        if backend is not None and backend.remote:
            self._dispatch(
                {
                    sid: [shard_parallel.SetIOLatency(seconds)]
                    for sid in range(self.num_shards)
                }
            )

    def worker_kernel_backends(self) -> List[str]:
        """The geometry-kernel backend each shard's executor resolved.

        Serial (and thread) execution reports this process's backend for
        every shard; the process backend queries each worker — the
        regression surface for kernel-backend propagation into workers.
        """
        from repro.geometry import kernels

        if self._backend is None or not self._backend.remote:
            return [kernels.get_backend()] * self.num_shards
        payloads = self._dispatch(
            {
                sid: [shard_parallel.KernelBackendQuery()]
                for sid in range(self.num_shards)
            }
        )
        return [payloads[sid][0] for sid in range(self.num_shards)]

    def shard_documents(self) -> List[Dict]:
        """Checkpoint document bodies of every shard (worker-side when remote)."""
        backend = self._backend
        if backend is not None and backend.remote:
            payloads = self._dispatch(
                {sid: [shard_parallel.Checkpoint()] for sid in range(self.num_shards)}
            )
            return [payloads[sid][0] for sid in range(self.num_shards)]
        from repro.core.persistence import _index_document

        return [_index_document(shard) for shard in self.shards]

    def engine(self, *args, **kwargs):
        if self._backend is not None and self._backend.remote:
            raise RuntimeError(
                "the concurrent operation engine drives shard state "
                "in-process; detach the process backend first "
                "(set_parallel('serial') or set_parallel('thread'))"
            )
        return super().engine(*args, **kwargs)

    # ------------------------------------------------------------------
    # Rebalancing (repro.shard.rebalance)
    # ------------------------------------------------------------------
    def attach_rebalancer(self, rebalancer: Optional[ShardRebalancer]) -> None:
        """Install (or remove, with ``None``) the online rebalancer.

        Once attached, every routed operation is recorded into the
        rebalancer's per-shard load monitor, and the auto-trigger hooks —
        the engine's maintenance interleave for live sessions, the batch
        epilogues for serial batches — consult its policy.
        """
        self.rebalancer = rebalancer
        if rebalancer is not None:
            rebalancer.monitor.reset(self.shards)

    def attach_adaptive(
        self, adaptive: Optional[AdaptiveStrategyController]
    ) -> None:
        """Install (or remove, with ``None``) the adaptive strategy controller.

        Once attached, every routed operation is recorded into the
        controller's per-shard monitor, and the auto-trigger hooks — the
        engine's maintenance interleave for live sessions, the batch
        epilogues for serial batches — execute its cost-model proposals as
        hot strategy swaps (:meth:`auto_adapt`).
        """
        self.adaptive = adaptive
        if adaptive is not None:
            adaptive.monitor.reset(self.shards)

    def _record_update(self, shard_id: int, count: int = 1) -> None:
        if self._suppress_load_recording:
            return
        if self.rebalancer is not None:
            self.rebalancer.monitor.record_update(shard_id, count)
        if self.adaptive is not None:
            self.adaptive.monitor.record_update(shard_id, count)

    def _record_query(self, shard_id: int, count: int = 1) -> None:
        if self._suppress_load_recording:
            return
        if self.rebalancer is not None:
            self.rebalancer.monitor.record_query(shard_id, count)
        if self.adaptive is not None:
            self.adaptive.monitor.record_query(shard_id, count)

    def _record_move(
        self, shard_id: int, old_location: Optional[Point], new_location: Point
    ) -> None:
        """Feed an observed movement distance to the adaptive controller."""
        if (
            self.adaptive is None
            or self._suppress_load_recording
            or old_location is None
        ):
            return
        self.adaptive.record_move(
            shard_id, old_location.distance_to(new_location)
        )

    def _record_batch_moves(
        self, shard_id: int, requests: List[BatchUpdate]
    ) -> None:
        """Feed a routed in-shard bucket's movement distances to the controller."""
        if self.adaptive is None or self._suppress_load_recording:
            return
        for request in requests:
            self._record_move(
                shard_id, request.old_location, request.new_location
            )

    def reroute(self, oid: int) -> bool:
        """Migrate *oid* to the shard its *current* position routes to.

        The primitive a :class:`~repro.shard.rebalance.RebalanceMigration`
        executes: re-reading the live position makes the operation safe
        against races with concurrent updates — an object that has already
        moved on (or away) since the plan was drawn is re-routed to where it
        now belongs, or not at all.  Returns ``True`` when a migration
        actually happened.
        """
        position = self.position_of(oid)
        if position is None:
            return False
        if self.partitioner.shard_of(position) == self._shard_of.get(oid):
            return False
        self._unrecorded_migration(
            lambda: self._execute_migration(BatchUpdate(oid, position, position))
        )
        return True

    def _unrecorded_migration(self, work):
        """Run rebalance-migration *work* without it reading as shard load.

        Both halves of the load signal are shielded: the update counters
        (via the suppression flag the ``_record_*`` hooks consult) and the
        physical I/O (by advancing the monitor's sampling marks past
        whatever the work transferred).  Only the outermost frame measures
        — a nested call (the per-object fallback inside a group) would
        otherwise exclude its I/O twice and eat real client load.
        """
        previous = self._suppress_load_recording
        self._suppress_load_recording = True
        rebalancer = self.rebalancer
        before = (
            [shard.total_physical_io() for shard in self.shards]
            if rebalancer is not None and not previous
            else None
        )
        try:
            return work()
        finally:
            self._suppress_load_recording = previous
            if before is not None:
                for shard_id, shard in enumerate(self.shards):
                    delta = shard.total_physical_io() - before[shard_id]
                    if delta > 0:
                        rebalancer.monitor.exclude_io(shard_id, delta)

    def migrate_leaf_group(
        self, source_id: int, leaf_page: int, oids: List[int]
    ) -> int:
        """Bulk re-route a planned source-leaf bucket; returns objects moved.

        The group primitive a
        :class:`~repro.shard.rebalance.RebalanceGroupMigration` executes:
        every member still owned by the source shard, still on the planned
        leaf and still routed elsewhere is migrated with **one** source-side
        removal pass (one CondenseTree for the whole bucket,
        :meth:`~repro.rtree.tree.RTree.remove_group`) and one bulk insert
        per destination shard
        (:meth:`~repro.rtree.tree.RTree.insert_group`) — instead of a full
        delete + insert per object.  Members that drifted since planning
        (concurrent update moved them, or their leaf dissolved) fall back to
        the per-object :meth:`reroute`, so the group races safely with live
        client traffic.

        None of the group's work — neither its operation counts nor its
        physical I/O — is recorded into the load monitor: the rebalancer's
        own traffic in the evidence window would re-satisfy the
        ``cooldown`` gate whenever a re-cut displaces more objects than the
        cooldown, storming into back-to-back rebalances.
        """
        return self._unrecorded_migration(
            lambda: self._migrate_leaf_group_unrecorded(source_id, leaf_page, oids)
        )

    def _migrate_leaf_group_unrecorded(
        self, source_id: int, leaf_page: int, oids: List[int]
    ) -> int:
        if self._backend is not None and self._backend.remote:
            return self._migrate_leaf_group_remote(source_id, leaf_page, oids)
        source = self.shards[source_id]
        confirmed: List[Tuple[int, int, Point]] = []
        drifted: List[int] = []
        for oid in oids:
            if self._shard_of.get(oid) != source_id:
                continue  # a concurrent update already migrated it
            position = source.position_of(oid)
            if position is None:
                continue
            target = self.partitioner.shard_of(position)
            if target == source_id:
                continue  # moved back inside the source region meanwhile
            if source.hash_index.peek(oid) != leaf_page:
                # Drifted to another leaf.  Deferred to the per-object path
                # AFTER the bulk pass: a reroute restructures the source
                # tree (underflow re-inserts, splits) and could move a
                # confirmed member off the planned leaf mid-group.
                drifted.append(oid)
                continue
            confirmed.append((oid, target, position))
        if not confirmed:
            return sum(1 for oid in drifted if self.reroute(oid))
        path = source.tree.find_path_to_leaf(
            leaf_page, Rect.from_point(confirmed[0][2])
        )
        if path is None:
            # The leaf dissolved between planning and dispatch: per-object.
            moved_count = sum(1 for oid, _t, _p in confirmed if self.reroute(oid))
            return moved_count + sum(1 for oid in drifted if self.reroute(oid))
        try:
            moved = source.tree.remove_group(
                path, [oid for oid, _t, _p in confirmed]
            )
        except LookupError:
            # A member left the (still existing) leaf after confirmation —
            # nothing was mutated; fall back to the per-object path.
            moved_count = sum(1 for oid, _t, _p in confirmed if self.reroute(oid))
            return moved_count + sum(1 for oid in drifted if self.reroute(oid))
        entry_of = {entry.child: entry for entry in moved}
        per_target: Dict[int, List[int]] = {}
        positions: Dict[int, Point] = {}
        for oid, target, position in confirmed:
            positions[oid] = position
            per_target.setdefault(target, []).append(oid)
        for oid, _target, _position in confirmed:
            source._positions.pop(oid, None)
        for target, group in per_target.items():
            target_shard = self.shards[target]
            target_shard.tree.insert_group([entry_of[oid] for oid in group])
            for oid in group:
                target_shard._positions[oid] = positions[oid]
                self._shard_of[oid] = target
        self._log_group_migration(source_id, per_target, positions)
        self.migrations += len(confirmed)
        return len(confirmed) + sum(1 for oid in drifted if self.reroute(oid))

    def _log_group_migration(
        self,
        source_id: int,
        per_target: Dict[int, List[int]],
        positions: Dict[int, Point],
    ) -> None:
        """Log a confirmed leaf-group handoff as one commit unit.

        Arrivals before the departures (same rationale as
        :meth:`_execute_migration`), one frame per destination log plus one
        on the source log, all under one LSN — so recovery can pair each
        departure with its arrival and skip any departure whose arrival was
        lost in a torn tail.  Logged only after the handoff has fully
        applied (apply first, log on success) — the fallback per-object
        reroutes log through :meth:`_execute_migration` instead, and
        replay's idempotence keeps any overlap harmless.
        """
        if self.durability is None or not per_target:
            return
        frames: Dict[int, List[LogRecord]] = {
            target: [migrate_in_record(oid, positions[oid]) for oid in group]
            for target, group in per_target.items()
        }
        frames[source_id] = [
            migrate_out_record(oid)
            for group in per_target.values()
            for oid in group
        ]
        self.durability.log_unit(frames, barrier=True)

    def _migrate_leaf_group_remote(
        self, source_id: int, leaf_page: int, oids: List[int]
    ) -> int:
        """The leaf-group handoff as a two-worker exchange via the coordinator.

        Same confirmation/fallback semantics as the serial path: membership
        and routing are confirmed against the (exact) coordinator mirrors, a
        batched uncharged leaf lookup separates drifted members, the source
        worker removes the confirmed bucket in one pass
        (:class:`~repro.shard.parallel.ExportGroup` — nothing is mutated
        when the leaf dissolved), and each destination worker bulk-inserts
        its share of the exported entries.
        """
        source = self.shards[source_id]
        candidates: List[Tuple[int, int, Point]] = []
        for oid in oids:
            if self._shard_of.get(oid) != source_id:
                continue  # a concurrent update already migrated it
            position = source._positions.get(oid)
            if position is None:
                continue
            target = self.partitioner.shard_of(position)
            if target == source_id:
                continue  # moved back inside the source region meanwhile
            candidates.append((oid, target, position))
        if not candidates:
            return 0
        leaf_pages = self.leaf_pages_of(source_id, [oid for oid, _t, _p in candidates])
        confirmed: List[Tuple[int, int, Point]] = []
        drifted: List[int] = []
        for (oid, target, position), page in zip(candidates, leaf_pages):
            if page != leaf_page:
                drifted.append(oid)
            else:
                confirmed.append((oid, target, position))
        if not confirmed:
            return sum(1 for oid in drifted if self.reroute(oid))
        export = self._dispatch_one(
            source_id,
            shard_parallel.ExportGroup(
                leaf_page,
                tuple(oid for oid, _t, _p in confirmed),
                confirmed[0][2],
            ),
        )
        if not export["ok"]:
            # Leaf dissolved or a member left it: nothing was mutated
            # worker-side; fall back to the per-object path.
            moved_count = sum(1 for oid, _t, _p in confirmed if self.reroute(oid))
            return moved_count + sum(1 for oid in drifted if self.reroute(oid))
        rect_of: Dict[int, Rect] = dict(export["entries"])
        per_target: Dict[int, List[int]] = {}
        positions: Dict[int, Point] = {}
        for oid, target, position in confirmed:
            positions[oid] = position
            per_target.setdefault(target, []).append(oid)
        for oid, _target, _position in confirmed:
            source._positions.pop(oid, None)
        self._dispatch(
            {
                target: [
                    shard_parallel.ImportGroup(
                        tuple((oid, rect_of[oid]) for oid in group),
                        tuple((oid, positions[oid]) for oid in group),
                    )
                ]
                for target, group in per_target.items()
            }
        )
        for target, group in per_target.items():
            target_shard = self.shards[target]
            for oid in group:
                target_shard._positions[oid] = positions[oid]
                self._shard_of[oid] = target
        self._log_group_migration(source_id, per_target, positions)
        self.migrations += len(confirmed)
        return len(confirmed) + sum(1 for oid in drifted if self.reroute(oid))

    def rebalance(
        self, force: bool = False, num_clients: Optional[int] = None
    ) -> RebalanceReport:
        """Adjust the partition boundaries to the observed load and migrate.

        Plans new boundaries from the rebalancer's load monitor (each object
        weighted by its owning shard's load share, so the new cut equalises
        *load*), installs the new partitioner, and executes the required
        migrations as one conflict-scheduled batch through the concurrent
        engine — each migration locks its source-shard delete scope and its
        destination-shard insert scope all-or-nothing, exactly like a
        boundary-crossing update.

        With ``force=True`` the policy trigger is bypassed and — when no
        load has been recorded (or no rebalancer is attached) — the plan
        falls back to equalising shard populations.
        """
        rebalancer = self.rebalancer
        if rebalancer is None:
            # One-shot controller: only meaningful with force=True, since an
            # unattached index has recorded no load evidence.
            rebalancer = ShardRebalancer(self.num_shards)
            rebalancer.monitor.reset(self.shards)
        imbalance_before = self.population_imbalance()
        if force:
            plan = rebalancer.plan(self, force=True)
            if plan is not None:
                self.partitioner = plan.partitioner
                self._log_repartition()
                rebalancer.committed(self)
        else:
            plan = self._triggered_plan(rebalancer)
        if plan is None:
            return RebalanceReport(
                triggered=False,
                imbalance_before=imbalance_before,
                imbalance_after=imbalance_before,
            )
        if self._backend is not None and self._backend.remote:
            # Worker-owned shards: the engine cannot schedule in-process
            # migrations, so the plan executes directly — bulk leaf-group
            # handoffs between workers, then the loose members.
            for shard_id, leaf_page, members in plan.buckets:
                self.migrate_leaf_group(shard_id, leaf_page, members)
            for oid in plan.loose:
                self.reroute(oid)
            return RebalanceReport(
                triggered=True,
                imbalance_before=imbalance_before,
                imbalance_after=self.population_imbalance(),
                moves=len(plan.moves),
                schedule=None,
            )
        # The migration schedule is a run of its own: reset the per-client
        # attribution so client_io_table() keeps meaning "the last run".
        self.reset_client_io()
        engine = self.engine(num_clients=num_clients).engine
        schedule = engine.scheduler.run(iter(self._migration_batch(engine, plan)))
        return RebalanceReport(
            triggered=True,
            imbalance_before=imbalance_before,
            imbalance_after=self.population_imbalance(),
            moves=len(plan.moves),
            schedule=schedule,
        )

    def _triggered_plan(self, rebalancer: ShardRebalancer) -> Optional[RebalancePlan]:
        """One step of the feedback loop: trigger, plan, install, commit.

        The shared control flow of :meth:`rebalance` and
        :meth:`maintenance_operations`: consult the policy, plan a boundary
        adjustment, install the new partitioner and commit the evidence
        window.  A trigger whose plan moves nothing resets the window
        instead, so the O(N) planning scan is not repeated on every poll
        while the (unactionable) trigger condition persists.
        """
        if not rebalancer.should_rebalance(self):
            return None
        plan = rebalancer.plan(self)
        if plan is None:
            rebalancer.monitor.reset(self.shards)
            return None
        self.partitioner = plan.partitioner
        self._log_repartition()
        rebalancer.committed(self)
        return plan

    def _log_repartition(self) -> None:
        """Log the just-installed partitioner to the coordinator meta log.

        Recovery applies the *last* such record, so routing after replay
        matches the boundaries the replayed migrations were routed with.
        """
        if self.durability is not None:
            self.durability.log_repartition(self.partitioner.to_spec())

    def auto_rebalance(self) -> Optional[RebalanceReport]:
        """Policy-gated :meth:`rebalance`, called by the serial batch epilogues."""
        if self.rebalancer is None:
            return None
        if not self.rebalancer.should_rebalance(self):
            return None
        return self.rebalance()

    # ------------------------------------------------------------------
    # Update strategies (hot swap + adaptive selection)
    # ------------------------------------------------------------------
    def active_strategies(self) -> List[str]:
        """The live update strategy of every shard (may be heterogeneous)."""
        return [shard.active_strategy for shard in self.shards]

    def set_strategy(self, name: str, shard_id: Optional[int] = None) -> str:
        """Hot-swap the update strategy of one shard (or, default, all).

        The swap happens where the authoritative tree lives: in-process on
        the serial path, through a :class:`~repro.shard.parallel.SetStrategy`
        command under a backend (the process backend's coordinator mirror
        tracks the active-strategy metadata; mirror trees stay untouched —
        they are replaced wholesale on detach).  With a durability manager
        attached, an actual change is logged to that shard's WAL as its own
        fsynced commit unit, so recovery replays the log tail into the
        strategy that was live.
        """
        key = name.upper()
        if shard_id is None:
            for sid in range(self.num_shards):
                self.set_strategy(key, sid)
            return key
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {self.num_shards} shards"
            )
        previous = self.shards[shard_id].active_strategy
        if self._backend is None:
            key = self.shards[shard_id].set_strategy(key)
        else:
            key = self._dispatch_one(
                shard_id, shard_parallel.SetStrategy(key)
            )
            if self._backend.remote:
                # Metadata mirror only: under the process backend the local
                # shard objects are not executing operations, but describe()
                # / active_strategies() / checkpoints must see the live
                # choice without a worker round trip.
                self.shards[shard_id].active_strategy = key
        if key != previous and self.durability is not None:
            self.durability.log_unit(
                {shard_id: (set_strategy_record(key),)}, barrier=True
            )
        return key

    def auto_adapt(self) -> int:
        """Policy-gated adaptive strategy switching; returns switches made.

        Called by the same hooks as :meth:`auto_rebalance`.  Skipped under
        the process backend: the controller ranks strategies against the
        authoritative trees, which live in the workers there (explicit
        :meth:`set_strategy` calls still propagate).
        """
        adaptive = self.adaptive
        if adaptive is None:
            return 0
        if self._backend is not None and self._backend.remote:
            return 0
        if not adaptive.should_adapt(self):
            return 0
        decisions = adaptive.decide(self)
        for decision in decisions:
            # The swap itself (an LBU entry sweeps leaf parent pointers) is
            # maintenance, not client load — shield the monitors the same
            # way rebalance migrations are shielded.
            self._unrecorded_migration(
                lambda d=decision: self.set_strategy(d.strategy, d.shard_id)
            )
            adaptive.committed(decision.shard_id)
        return len(decisions)

    def maintenance_operations(self, engine) -> List[VirtualOperation]:
        """Engine SPI: inject rebalance migrations into a live schedule.

        Called by the online engine between operation draws.  When the
        rebalancer's policy triggers (:meth:`_triggered_plan`), the new
        boundaries are installed immediately (queries stay correct
        mid-rebalance: shard selection also consults content MBRs) and the
        plan's migration operations — bulk leaf groups plus loose members —
        are handed to the scheduler, where they interleave with the live
        client operations under ordinary all-or-nothing granule locking.
        """
        if self._backend is not None and self._backend.remote:
            # Remote shards cannot participate in the engine's in-process
            # lock schedule; rebalancing under the process backend runs
            # through :meth:`rebalance` instead.
            return []
        # Strategy switches are coordinator-local and instantaneous in
        # virtual time — executed inline at the same maintenance point the
        # rebalancer uses (between operation draws; lock scopes are
        # recomputed from the live strategies on every dispatch attempt).
        self.auto_adapt()
        rebalancer = self.rebalancer
        if rebalancer is None:
            return []
        plan = self._triggered_plan(rebalancer)
        if plan is None:
            return []
        return self._migration_batch(engine, plan)

    def _migration_batch(self, engine, plan: RebalancePlan) -> List[VirtualOperation]:
        """A plan's moves as schedulable operations: leaf buckets + loose members."""
        operations: List[VirtualOperation] = [
            RebalanceGroupMigration(engine, self, shard_id, leaf_page, members)
            for shard_id, leaf_page, members in plan.buckets
        ]
        operations.extend(
            RebalanceMigration(engine, self, oid) for oid in plan.loose
        )
        return operations

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Partition the initial objects spatially and load every shard.

        Loading is bulk construction, not routed operation traffic: with a
        backend attached it detaches first (syncing any worker-owned state),
        loads locally, and re-attaches the same backend over the fresh
        contents.
        """
        parallel_spec = self.parallel_spec
        if self._backend is not None:
            self.detach_parallel()
        groups: List[List[Tuple[int, Point]]] = [[] for _ in range(self.num_shards)]
        for oid, location in objects:
            shard_id = self.partitioner.shard_of(location)
            groups[shard_id].append((oid, location))
            self._shard_of[oid] = shard_id
        for shard, group in zip(self.shards, groups):
            shard.load(group, bulk=bulk)
        # Re-split the aggregate buffer: per-shard loading sized each pool
        # against its own database; the facade contract sizes against the
        # aggregate and apportions by shard weight.
        self.configure_buffer()
        self.migrations = 0
        if parallel_spec is not None:
            self.set_parallel(**parallel_spec)
        if self.durability is not None:
            # Bulk construction has no cheap log representation; checkpoint
            # (rotating the logs) so the loaded state is the recovery base.
            self.checkpoint()

    def configure_buffer(self, percent: Optional[float] = None) -> None:
        """Size the aggregate buffer and split its capacity across the shards.

        The capacity is computed against the *aggregate* database size — the
        same contract as the single index, where ``percent`` is a fraction
        of everything stored — and divided across the shard pools in
        proportion to each shard's disk size (largest-remainder rounding, so
        the shares sum exactly to the aggregate capacity).  A skewed load
        therefore gives hot shards proportionally more buffer instead of
        every shard getting the buffer of an average one.
        """
        from repro.storage import BufferPool  # local: keep module imports light

        percent = self.config.buffer_percent if percent is None else percent
        disk_sizes = self._shard_disk_sizes()
        total_capacity = BufferPool.capacity_for_percentage(percent, sum(disk_sizes))
        self._split_buffer_capacity(total_capacity, disk_sizes)

    def _split_buffer_capacity(
        self, total_capacity: int, disk_sizes: List[int]
    ) -> None:
        """Distribute *total_capacity* frames proportionally to shard disk sizes.

        Largest-remainder rounding, with a **minimum-frame rule**: whenever
        ``total_capacity > 0``, every shard with a non-empty disk receives
        at least one frame — a nonzero configured buffer percentage must
        never silently run a shard at the paper's "0 % buffer"
        configuration.  The extra frames are taken from the largest shares
        first (ties broken towards the smaller disk, then the lower shard
        id — so a shard holding more pages never ends up with less buffer
        than a smaller one), keeping the aggregate exact whenever some
        share has a frame to spare; when the capacity is scarcer than the
        number of non-empty shards the minimum takes precedence and the
        aggregate runs over by the deficit.
        """
        total_pages = sum(disk_sizes)
        if total_pages == 0:
            shares = [0] * len(self.shards)
        else:
            exact = [total_capacity * size / total_pages for size in disk_sizes]
            shares = [int(value) for value in exact]
            remainders = sorted(
                range(len(shares)),
                key=lambda i: (exact[i] - shares[i], disk_sizes[i]),
                reverse=True,
            )
            for i in remainders[: total_capacity - sum(shares)]:
                shares[i] += 1
            if total_capacity > 0:
                for i in range(len(shares)):
                    if disk_sizes[i] > 0 and shares[i] == 0:
                        shares[i] = 1
                        donor = max(
                            (j for j in range(len(shares)) if shares[j] > 1),
                            key=lambda j: (shares[j], -disk_sizes[j], -j),
                            default=None,
                        )
                        if donor is not None:
                            shares[donor] -= 1
        for shard, share in zip(self.shards, shares):
            shard.buffer.clear()
            shard.buffer.capacity = share
        if self._backend is not None and self._backend.remote:
            # Push each share to the authoritative worker-side pools too.
            self._dispatch(
                {
                    shard_id: [shard_parallel.ConfigureBuffer(share)]
                    for shard_id, share in enumerate(shares)
                }
            )

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def insert(self, oid: int, location: Point) -> None:
        if oid in self._shard_of:
            raise DuplicateObjectError(oid)
        shard_id = self.partitioner.shard_of(location)
        # Apply first, log on success (see MovingObjectIndex.insert): a
        # shard that raises must leave the WAL silent, or recovery would
        # replay a mutation the live index never performed.
        self._record_update(shard_id)
        self._shard_insert(shard_id, oid, location)
        self._shard_of[oid] = shard_id
        if self.durability is not None:
            self.durability.log_record(shard_id, insert_record(oid, location))

    def update(self, oid: int, new_location: Point) -> UpdateOutcome:
        """Route the update; migrate across shards when a boundary is crossed."""
        source = self._shard_of.get(oid)
        if source is None:
            raise UnknownObjectError(oid)
        target = self.partitioner.shard_of(new_location)
        if target == source:
            self._record_update(source)
            if self.adaptive is not None:
                self._record_move(source, self.position_of(oid), new_location)
            outcome = self._shard_update(source, oid, new_location)
            if self.durability is not None:
                self.durability.log_record(
                    source, update_record(oid, new_location)
                )
            return outcome
        self._execute_migration(
            BatchUpdate(oid, self.position_of(oid), new_location)
        )
        return UpdateOutcome.MIGRATED

    def delete(self, oid: int, strict: bool = True) -> bool:
        shard_id = self._shard_of.get(oid)
        if shard_id is None:
            if strict:
                raise UnknownObjectError(oid)
            return False
        self._record_update(shard_id)
        removed = self._shard_delete(shard_id, oid)
        del self._shard_of[oid]
        if self.durability is not None:
            self.durability.log_record(shard_id, delete_record(oid))
        return removed

    def _query_shards(self, window: Rect) -> List[int]:
        """Shards a window query must visit.

        The partitioner's boundary rectangles are the primary fan-out
        filter; a shard whose *content* MBR reaches outside its boundary
        (positions are clamped into the unit square for routing, so an
        out-of-square object legally lives beyond its cell) is included
        through the uncharged root-MBR check, keeping sharded answers
        identical to a single index for every input.
        """
        selected = set(self.partitioner.shards_intersecting(window))
        for shard_id in range(self.num_shards):
            if shard_id in selected:
                continue
            content = self._shard_root_mbr(shard_id)
            if content is not None and content.intersects(window):
                selected.add(shard_id)
        return sorted(selected)

    def range_query(self, window: Rect) -> List[int]:
        """Fan the window out to the shards whose boundaries intersect it.

        With a backend attached, the per-shard traversals dispatch
        concurrently — the results still merge in shard-id order, so the
        answer (order included) is identical to the serial path.
        """
        shard_ids = self._query_shards(window)
        if self._backend is not None:
            for shard_id in shard_ids:
                self._record_query(shard_id)
            payloads = self._dispatch(
                {sid: [shard_parallel.Range(window)] for sid in shard_ids}
            )
            results: List[int] = []
            for shard_id in shard_ids:
                results.extend(payloads[shard_id][0])
            return results
        results = []
        for shard_id in shard_ids:
            self._record_query(shard_id)
            results.extend(self.shards[shard_id].range_query(window))
        return results

    def stream_query(self, window: Rect) -> QueryCursor:
        """Streaming fan-out: shard traversals advance only as the cursor is read.

        The qualifying shards are selected up front (an uncharged check of
        partition boundaries and root MBRs); each shard's own traversal then
        streams lazily, in the same shard order — and therefore the same
        result order — as :meth:`range_query`.  With a backend attached,
        laziness degrades to shard granularity: reaching into a shard
        fetches (and charges) that whole shard's hits at once.
        """

        def hits() -> Iterator[int]:
            for shard_id in self._query_shards(window):
                self._record_query(shard_id)
                if self._backend is not None:
                    yield from self._dispatch_one(
                        shard_id, shard_parallel.Range(window)
                    )
                else:
                    yield from self.shards[shard_id].strategy.iter_range_query(
                        window
                    )

        return QueryCursor(hits())

    def stream_knn(self, point: Point, k: int) -> QueryCursor:
        """Cursor over the merged k nearest neighbours across shards.

        Cross-shard kNN needs every contributing shard's candidates before
        the global order is known, so the merge itself is materialised (the
        per-shard searches prune against the running k-th distance, see
        :meth:`knn`); the cursor provides the uniform streaming interface
        over the merged result.
        """
        return QueryCursor(iter(self.knn(point, k)))

    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """Best-first kNN over shard bounds with a pruning radius.

        Shards are visited in order of the minimum distance from the query
        point to their bound — the shard boundary tightened to the shard's
        actual content MBR (an always-valid, usually tighter bound, and the
        correct one even for positions stored outside the unit square).
        Once *k* candidates are held, any shard whose bound lies strictly
        beyond the current k-th distance cannot contribute and is pruned.

        The running k-th distance is also threaded *into* each per-shard
        search: the shard's incremental best-first stream
        (:meth:`~repro.rtree.tree.RTree.iter_knn`) is consumed only while
        its candidates can still enter the merged top *k*, so a shard whose
        bound forces a visit but whose objects mostly lie beyond the
        current radius pays the I/O of the few candidates actually
        inspected, not of a full k-search.  Equal-distance candidates are
        still consumed (and merged in ``(distance, oid)`` order), keeping
        ties bit-identical to the single-index facade.
        """
        if k <= 0:
            return []
        bounds: List[Tuple[float, int]] = []
        for shard_id in range(self.num_shards):
            content = self._shard_root_mbr(shard_id)
            if content is None:
                continue  # empty shard: nothing to contribute
            bounds.append((content.min_distance_to_point(point), shard_id))
        bounds.sort()
        best: List[Tuple[float, int]] = []
        for bound, shard_id in bounds:
            if len(best) >= k and bound > best[-1][0]:
                break
            self._record_query(shard_id)
            if self._backend is not None:
                # The probe carries the running best list (the pruning
                # radius) and replays the exact serial consumption loop in
                # the shard's executor.  Probes stay sequential: each one's
                # radius depends on the previous shard's answer, and a
                # speculative parallel probe would charge I/O the serial
                # path never pays.
                best = self._dispatch_one(
                    shard_id, shard_parallel.KNNProbe(point, k, tuple(best))
                )
                continue
            for candidate in self.shards[shard_id].tree.iter_knn(point, k):
                if len(best) >= k and candidate[0] > best[-1][0]:
                    break  # stream is distance-ordered: nothing closer follows
                bisect.insort(best, candidate)
                del best[k:]
        return best

    def position_of(self, oid: int) -> Optional[Point]:
        shard_id = self._shard_of.get(oid)
        if shard_id is None:
            return None
        return self.shards[shard_id].position_of(oid)

    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._shard_of

    # ------------------------------------------------------------------
    # Batch operations (per-shard group-by-leaf buckets)
    # ------------------------------------------------------------------
    def update_many(self, updates: Iterable[Tuple[int, Point]]) -> BatchResult:
        """Move many objects in one batch, bucketed per shard.

        Updates are coalesced per object (first old position, latest new
        position — the same rule as the single-index batch), the coalesced
        requests are routed per shard, and each shard executes its group-by-
        leaf pipeline; boundary-crossing requests migrate through the
        per-operation path.  The returned result aggregates every shard's
        groups/residual counters and merges their I/O deltas.
        """
        return self._execute_batch(self.parse_updates(updates))

    def apply(self, operations: Iterable[Tuple]) -> BatchResult:
        """Execute a mixed operation stream with per-shard batched updates.

        Deprecated tuple adapter over the typed
        :meth:`~repro.core.protocol.SpatialIndexFacade.execute_many`.  The
        stream grammar and barrier semantics match
        :meth:`MovingObjectIndex.apply`: runs of updates are batched,
        inserts/deletes/queries flush pending updates first, and the whole
        stream is parsed (and validated) before anything executes.
        """
        return self._execute_operation_stream(operations, strict_deletes=False)

    def _execute_operation_stream(
        self, operations: Iterable, strict_deletes: bool
    ) -> BatchResult:
        parsed = self._parse_operations(operations, strict_deletes=strict_deletes)
        result = BatchResult()
        before = [shard.stats.snapshot() for shard in self.shards]
        run: List[BatchUpdate] = []
        for op in parsed:
            if isinstance(op, BatchUpdate):
                result.updates += 1
                run.append(op)
            elif isinstance(op, InsertOp):
                self._flush_updates(run, result)
                self.insert(op.oid, op.location)
                result.inserts += 1
            elif isinstance(op, DeleteOp):
                self._flush_updates(run, result)
                self.delete(op.oid)
                result.deletes += 1
            elif isinstance(op, QueryOp):
                self._flush_updates(run, result)
                result.queries.append(self.range_query(op.window))
            elif isinstance(op, KNNOp):
                self._flush_updates(run, result)
                result.neighbors.append(self.knn(op.point, op.k))
            else:  # pragma: no cover - the parser only emits the above
                raise TypeError(f"unsupported batch operation {op!r}")
        self._flush_updates(run, result)
        self._merge_io_delta(result, before)
        self.auto_rebalance()
        self.auto_adapt()
        return result

    def _execute_batch(self, ops: List[BatchUpdate]) -> BatchResult:
        result = BatchResult(updates=len(ops))
        before = [shard.stats.snapshot() for shard in self.shards]
        self._flush_updates(list(ops), result)
        self._merge_io_delta(result, before)
        self.auto_rebalance()
        self.auto_adapt()
        return result

    def _flush_updates(self, run: List[BatchUpdate], result: BatchResult) -> None:
        """Coalesce a run of updates and route it: per-shard batches + migrations."""
        if not run:
            return
        pending, _requested, coalesced = coalesce_updates(run)
        result.coalesced += coalesced
        run.clear()
        per_shard: Dict[int, List[BatchUpdate]] = {}
        for request in pending.values():
            source = self._shard_of.get(request.oid)
            target = self.partitioner.shard_of(request.new_location)
            if source is None or source != target:
                self._execute_migration(request, result)
            else:
                per_shard.setdefault(source, []).append(request)
        if self._backend is not None:
            # The parallel payoff path: every shard's bucket dispatches in
            # one go — the backend runs them concurrently (the process
            # backend sends one batched message per worker) and each
            # executes the identical pre-commit + group-by-leaf step.
            for shard_id, requests in per_shard.items():
                self._record_update(shard_id, len(requests))
                self._record_batch_moves(shard_id, requests)
            if self._backend.remote:
                for shard_id, requests in per_shard.items():
                    mirror = self.shards[shard_id]._positions
                    for request in requests:
                        mirror[request.oid] = request.new_location
            payloads = self._dispatch(
                {
                    shard_id: [shard_parallel.ApplyBatch(tuple(requests))]
                    for shard_id, requests in per_shard.items()
                }
            )
            for shard_id in per_shard:
                sub = payloads[shard_id][0]
                result.groups += sub["groups"]
                result.largest_group = max(
                    result.largest_group, sub["largest_group"]
                )
                result.residuals += sub["residuals"]
            self._log_update_buckets(per_shard)
            return
        for shard_id, requests in per_shard.items():
            shard = self.shards[shard_id]
            self._record_update(shard_id, len(requests))
            self._record_batch_moves(shard_id, requests)
            for request in requests:
                shard._positions[request.oid] = request.new_location
            sub = shard.batch.execute(requests)
            result.groups += sub.groups
            result.largest_group = max(result.largest_group, sub.largest_group)
            result.residuals += sub.residuals
        self._log_update_buckets(per_shard)

    def _log_update_buckets(
        self, per_shard: Dict[int, List[BatchUpdate]]
    ) -> None:
        """Log one executed batch dispatch's in-shard buckets as one commit unit.

        The whole dispatch is one appended+fsynced frame per touched shard
        log, all sharing one LSN — the group-commit shape; boundary-crossing
        members logged per migration are disjoint from these buckets (the
        pending set holds one request per object).  Called *after* the
        dispatch has executed (apply first, log on success), so a shard or
        worker that raises leaves the WAL silent instead of durably
        recording updates that never happened.
        """
        if self.durability is None or not per_shard:
            return
        self.durability.log_unit(
            {
                shard_id: [
                    update_record(request.oid, request.new_location)
                    for request in requests
                ]
                for shard_id, requests in per_shard.items()
            },
            barrier=True,
        )

    def _execute_migration(
        self, request: BatchUpdate, result: Optional[BatchResult] = None
    ) -> None:
        """Delete from the source shard, insert into the target, re-route."""
        source = self._shard_of.get(request.oid)
        target = self.partitioner.shard_of(request.new_location)
        # The log frames are computed against the pre-move routing but
        # appended only after both shards applied their halves (apply
        # first, log on success — a shard that raises leaves the WAL
        # silent).  One commit unit across both shard logs, arrival first:
        # a torn tail that keeps the arrival but loses the departure
        # replays as the whole migration (recovery's ownership map evicts
        # the stale source copy), and the reverse asymmetry — departure
        # durable, arrival lost — is detected by recovery as an orphaned
        # departure (both halves share the LSN) and skipped.
        frames: Optional[Dict[int, Tuple[LogRecord, ...]]] = None
        if self.durability is not None:
            if source is None:
                frames = {
                    target: (insert_record(request.oid, request.new_location),)
                }
            elif source == target:
                # Routed back into its own shard (the partitioner moved
                # between planning and execution): departure before arrival,
                # mirroring the delete+insert this method performs.
                frames = {
                    source: (
                        migrate_out_record(request.oid),
                        migrate_in_record(request.oid, request.new_location),
                    )
                }
            else:
                frames = {
                    target: (
                        migrate_in_record(request.oid, request.new_location),
                    ),
                    source: (migrate_out_record(request.oid),),
                }
        if source is not None:
            self._record_update(source)
            self._shard_delete(source, request.oid)
            self.migrations += 1
            if result is not None:
                result.migrations += 1
        elif result is not None:
            result.residuals += 1  # not indexed yet: plain insert
        self._record_update(target)
        self._shard_insert(target, request.oid, request.new_location)
        self._shard_of[request.oid] = target
        if self.durability is not None and frames is not None:
            self.durability.log_unit(frames, barrier=False)

    def parse_updates(self, updates: Iterable[Tuple[int, Point]]) -> List[BatchUpdate]:
        """Overlay-validate an ``(oid, new_position)`` stream into batch ops.

        Mirrors :meth:`MovingObjectIndex.parse_updates`: a bad operation
        mid-stream leaves nothing executed.  Unlike the single index,
        positions are NOT pre-committed here — shard position maps advance
        when their shard executes (migrations go through the shard facades,
        which need the old position to still be current).
        """
        moved: Dict[int, Point] = {}
        ops: List[BatchUpdate] = []
        for oid, new_location in updates:
            old_location = moved.get(oid, self.position_of(oid))
            if old_location is None:
                raise UnknownObjectError(oid)
            ops.append(BatchUpdate(oid, old_location, new_location))
            moved[oid] = new_location
        return ops

    def _parse_operations(
        self, operations: Iterable, strict_deletes: bool = False
    ) -> List[Operation]:
        # The shared stream grammar; unlike the single index the overlay is
        # discarded — shard position maps advance when operations execute.
        parsed, _overlay = parse_operation_stream(
            operations, self.position_of, strict_deletes=strict_deletes
        )
        return parsed

    def _merge_io_delta(
        self, result: BatchResult, before: List[IOStatistics]
    ) -> None:
        result.io = IOStatistics.sum(
            shard.stats.snapshot().delta_since(snapshot)
            for shard, snapshot in zip(self.shards, before)
        )

    # ------------------------------------------------------------------
    # Engine SPI (repro.core.protocol; sessions open via engine())
    # ------------------------------------------------------------------
    def lock_requests_for(self, kind: str, payload: Tuple):
        """Predict an operation's lock set across shards.

        Each shard's granules are namespaced with its shard id, so scopes
        from different shards are disjoint by construction: only operations
        that touch the same shard can ever conflict, and a cross-shard
        migration names granules from both its shards.
        """
        if kind == "update":
            oid, new_location = payload
            source = self._shard_of.get(oid)
            target = self.partitioner.shard_of(new_location)
            if source is None:
                return namespace_pairs(
                    self.shards[target].lock_requests_for(
                        "insert", (oid, new_location)
                    ),
                    target,
                )
            if source == target:
                return namespace_pairs(
                    self.shards[source].lock_requests_for(kind, payload), source
                )
            pairs = namespace_pairs(
                self.shards[source].lock_requests_for("delete", (oid,)), source
            )
            pairs.extend(
                namespace_pairs(
                    self.shards[target].lock_requests_for(
                        "insert", (oid, new_location)
                    ),
                    target,
                )
            )
            return pairs
        if kind == "insert":
            _oid, location = payload
            target = self.partitioner.shard_of(location)
            return namespace_pairs(
                self.shards[target].lock_requests_for(kind, payload), target
            )
        if kind == "delete":
            (oid,) = payload
            source = self._shard_of.get(oid)
            if source is None:
                return []
            return namespace_pairs(
                self.shards[source].lock_requests_for(kind, payload), source
            )
        if kind == "query":
            (window,) = payload
            pairs = []
            for shard_id in self._query_shards(window):
                pairs.extend(
                    namespace_pairs(
                        self.shards[shard_id].lock_requests_for(kind, payload),
                        shard_id,
                    )
                )
            return pairs
        if kind == "knn":
            # Conservative: a kNN may spill into any shard holding data, so
            # every non-empty shard contributes its own (conservative) scope.
            pairs = []
            for shard_id, shard in enumerate(self.shards):
                if len(shard) == 0:
                    continue
                pairs.extend(
                    namespace_pairs(shard.lock_requests_for(kind, payload), shard_id)
                )
            return pairs
        raise ValueError(f"unknown engine operation kind {kind!r}")

    def prepare_concurrent_batch(self, engine, updates: Iterable) -> PreparedBatch:
        """Plan one batch as per-shard group buckets plus migration ops.

        In-shard requests go through each shard's group-by-leaf planner and
        become :class:`~repro.concurrency.engine.GroupOperation`\\ s whose
        granules carry the shard namespace — buckets of different shards are
        disjoint by construction and schedule fully in parallel.  Boundary-
        crossing requests become :class:`MigrationOperation`\\ s locking both
        shards.  Shard position maps are pre-committed for in-shard members
        (their group/replay passes never consult them); migrations commit
        their own state when they execute.
        """
        pending, requested, coalesced = coalesce_updates(updates)
        result = BatchResult(updates=requested, coalesced=coalesced)
        operations: List[VirtualOperation] = []
        per_shard: Dict[int, List[BatchUpdate]] = {}
        for request in pending.values():
            source = self._shard_of.get(request.oid)
            target = self.partitioner.shard_of(request.new_location)
            if source is None or source != target:
                operations.append(MigrationOperation(engine, self, request, result))
            else:
                per_shard.setdefault(source, []).append(request)
        for shard_id, requests in per_shard.items():
            shard = self.shards[shard_id]
            self._record_update(shard_id, len(requests))
            self._record_batch_moves(shard_id, requests)
            plan = shard.batch.plan(requests)
            for bucket in plan.buckets.values():
                for request in bucket:
                    shard._positions[request.oid] = request.new_location
            for request in plan.unindexed:
                shard._positions[request.oid] = request.new_location
                operations.append(
                    ReplayOperation(
                        engine, shard.batch, request, result, namespace=shard_id
                    )
                )
            operations.extend(
                GroupOperation(
                    engine, shard.batch, leaf_page, bucket, result,
                    namespace=shard_id,
                )
                for leaf_page, bucket in plan.buckets.items()
            )
        before = [shard.stats.snapshot() for shard in self.shards]

        def finalize() -> None:
            self._merge_io_delta(result, before)
            # Apply first, log on success: finalize runs once the schedule
            # has drained, so the in-shard buckets log as one commit unit
            # (the group-commit frame) only after they actually executed;
            # migrations logged themselves as they ran.  An engine batch
            # abandoned mid-schedule is never durably recorded.
            self._log_update_buckets(per_shard)
            # Batch-path auto-trigger: the schedule has drained and every
            # pre-committed position is applied, so a boundary adjustment is
            # planned against consistent state.
            self.auto_rebalance()
            self.auto_adapt()

        return PreparedBatch(operations=operations, result=result, finalize=finalize)

    def set_active_client(self, client: Optional[Hashable]) -> None:
        for shard in self.shards:
            shard.set_active_client(client)

    def total_physical_io(self) -> int:
        return sum(shard.total_physical_io() for shard in self.shards)

    def reset_client_io(self) -> None:
        for shard in self.shards:
            shard.reset_client_io()

    def client_io_table(self) -> Dict[Hashable, ClientIOCounters]:
        """Per-client physical I/O merged across every shard's buffer pool."""
        merged: Dict[Hashable, ClientIOCounters] = {}
        for shard in self.shards:
            for client, counters in shard.client_io_table().items():
                into = merged.setdefault(client, ClientIOCounters())
                into.physical_reads += counters.physical_reads
                into.physical_writes += counters.physical_writes
        return merged

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        for shard in self.shards:
            shard.reset_statistics()
        if self._backend is not None and self._backend.remote:
            self._dispatch(
                {
                    sid: [shard_parallel.ResetStats()]
                    for sid in range(self.num_shards)
                }
            )
        self.migrations = 0
        if self.rebalancer is not None:
            self.rebalancer.monitor.reset(self.shards)
        if self.adaptive is not None:
            self.adaptive.monitor.reset(self.shards)

    def io_snapshot(self) -> IOStatistics:
        """The shards' I/O counters merged into one aggregate snapshot."""
        return IOStatistics.sum(shard.io_snapshot() for shard in self.shards)

    def refresh_summary(self) -> None:
        if self._backend is not None and self._backend.remote:
            self._dispatch(
                {
                    sid: [shard_parallel.RefreshSummary()]
                    for sid in range(self.num_shards)
                }
            )
            return
        for shard in self.shards:
            shard.refresh_summary()

    def validate(self, check_min_fill: bool = False) -> dict:
        """Validate every shard, the directory, and the spatial routing.

        Structural validation runs where the authoritative trees live —
        in-process normally, in the workers under the process backend; the
        directory and routing invariants are checked against the (exact)
        coordinator position mirrors either way.
        """
        if self._backend is not None and self._backend.remote:
            payloads = self._dispatch(
                {
                    sid: [shard_parallel.Validate(check_min_fill)]
                    for sid in range(self.num_shards)
                }
            )
            reports = [payloads[sid][0]["report"] for sid in range(self.num_shards)]
            heights = [payloads[sid][0]["height"] for sid in range(self.num_shards)]
        else:
            reports = [
                shard.validate(check_min_fill=check_min_fill)
                for shard in self.shards
            ]
            heights = [shard.tree.height for shard in self.shards]
        errors: List[str] = []
        for shard_id, shard in enumerate(self.shards):
            for oid in shard._positions:
                if self._shard_of.get(oid) != shard_id:
                    errors.append(
                        f"object {oid}: directory says shard "
                        f"{self._shard_of.get(oid)}, shard {shard_id} holds it"
                    )
                position = shard._positions.get(oid)
                # Routing consistency: the partitioner (which clamps into
                # the unit square) must still assign the stored position to
                # the shard holding it — the invariant update() maintains.
                if self.partitioner.shard_of(position) != shard_id:
                    errors.append(
                        f"object {oid}: position {position!r} routes to shard "
                        f"{self.partitioner.shard_of(position)}, stored in "
                        f"{shard_id}"
                    )
        if len(self._shard_of) != sum(len(shard) for shard in self.shards):
            errors.append(
                f"directory holds {len(self._shard_of)} objects, shards hold "
                f"{sum(len(shard) for shard in self.shards)}"
            )
        if errors:
            raise AssertionError("; ".join(errors))
        return {
            "shards": len(self.shards),
            "objects": len(self._shard_of),
            "heights": heights,
            "reports": reports,
        }

    def describe(self) -> str:
        populations = self.shard_populations()
        text = (
            f"sharded[{self.num_shards}x] {self.partitioner.describe()} | "
            f"{self.config.describe()} | objects={len(self._shard_of)} "
            f"populations={populations} migrations={self.migrations}"
        )
        if self.rebalancer is not None:
            text += f" rebalances={self.rebalancer.rebalances}"
        if self.adaptive is not None:
            text += (
                f" strategies={self.active_strategies()} "
                f"switches={self.adaptive.switches}"
            )
        if self._backend is not None:
            text += f" parallel={self._backend.describe()}"
        return text
