"""The sharded moving-object index.

:class:`ShardedIndex` scales the paper's system horizontally: a spatial
:class:`~repro.shard.partitioner.Partitioner` routes every operation to one
of N independent :class:`~repro.core.index.MovingObjectIndex` shards, each
with its own disk, buffer pool, R-tree, hash index, summary structure and
I/O counters.  The facade satisfies the same
:class:`~repro.core.protocol.SpatialIndexFacade` protocol as a single index,
so benchmarks, examples, persistence and the concurrent operation engine
drive either interchangeably.

Routing and migration
---------------------
A shard-level **object directory** maps each object id to its owning shard;
the per-shard hash indexes stay authoritative for the object's leaf page
within that shard.  An update whose new position stays inside the owning
shard's region is executed by that shard's strategy exactly as before — the
common case, by the paper's locality argument.  An update that crosses a
partition boundary becomes a **migration**: delete from the old shard,
insert into the new one, directory updated
(:attr:`~repro.update.base.UpdateOutcome.MIGRATED`).

Queries
-------
``range_query`` fans out to only the shards whose boundary rectangles
intersect the window; ``knn`` runs best-first over shard boundaries with a
pruning radius — shards whose boundary lies farther than the current k-th
candidate distance are never visited.  Both return exactly what a single
index over the same objects returns (the equivalence test suite asserts
this for 1, 2 and 8 shards, including boundary-crossing migrations).

Concurrency
-----------
Under the online engine, every lock granule a shard operation names is
namespaced with the shard id (:func:`~repro.concurrency.dgl.namespace_pairs`),
so operations on different shards never conflict and a migration locks its
delete scope in the source shard *and* its insert scope in the target shard
atomically.  Batches partition into group-by-leaf buckets **per shard**;
buckets of different shards schedule concurrently, which is what the
``shard_scaling`` figure measures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import repro.api.operations as api_ops
from repro.api.errors import DuplicateObjectError, UnknownObjectError
from repro.api.results import QueryCursor
from repro.concurrency.dgl import namespace_pairs
from repro.concurrency.engine import (
    GroupOperation,
    PreparedBatch,
    ReplayOperation,
)
from repro.concurrency.scheduler import VirtualOperation
from repro.core.config import IndexConfig
from repro.core.index import MovingObjectIndex
from repro.core.protocol import SpatialIndexFacade
from repro.geometry import Point, Rect
from repro.shard.partitioner import GridPartitioner, Partitioner
from repro.storage import IOStatistics
from repro.storage.buffer import ClientIOCounters
from repro.update import UpdateOutcome
from repro.update.base import BatchUpdate
from repro.update.batch import (
    BatchResult,
    DeleteOp,
    InsertOp,
    KNNOp,
    Operation,
    QueryOp,
    coalesce_updates,
    parse_operation_stream,
)


class MigrationOperation(VirtualOperation):
    """A batch member whose move crosses a shard boundary.

    Carries the typed :class:`repro.api.operations.Migrate` internal
    operation; its engine normal form is the update's, so the lock scope —
    delete scope in the source shard plus insert scope in the target shard,
    both namespaced, acquired all-or-nothing — comes from the same
    ``lock_requests_for`` dispatch every other operation uses.  A migration
    therefore serialises with exactly the operations it truly conflicts
    with in either shard and nothing else.
    """

    __slots__ = ("engine", "sharded", "migrate", "request", "result")
    kind = "migration"

    def __init__(self, engine, sharded: "ShardedIndex", request: BatchUpdate, result):
        self.engine = engine
        self.sharded = sharded
        self.migrate = api_ops.Migrate(request.oid, request.new_location)
        self.request = request
        self.result = result

    def lock_requests(self):
        return self.sharded.lock_requests_for(*self.migrate.normalise())

    def execute(self, client: int) -> int:
        return self.engine.measure(
            client,
            lambda: self.sharded._execute_migration(self.request, self.result),
        )


class ShardedIndex(SpatialIndexFacade):
    """N independent moving-object indexes behind one spatial router.

    Parameters
    ----------
    config:
        The :class:`IndexConfig` every shard is built with (shards are
        homogeneous; the buffer percentage applies to each shard's own
        database, so the aggregate buffer tracks the aggregate data).
    partitioner:
        Spatial partitioner; defaults to a near-square uniform grid of
        *num_shards* cells.
    num_shards:
        Convenience when no explicit partitioner is given (default 4).
    shards:
        Pre-built shard indexes to adopt instead of constructing fresh ones
        (checkpoint restore); must match the partitioner's shard count.
    """

    def __init__(
        self,
        config: Optional[IndexConfig] = None,
        partitioner: Optional[Partitioner] = None,
        num_shards: Optional[int] = None,
        shards: Optional[List[MovingObjectIndex]] = None,
    ) -> None:
        if partitioner is None:
            partitioner = GridPartitioner.for_shards(
                4 if num_shards is None else num_shards
            )
        elif num_shards is not None and num_shards != partitioner.num_shards:
            raise ValueError(
                f"num_shards={num_shards} conflicts with the partitioner's "
                f"{partitioner.num_shards} shards"
            )
        if shards is not None and len(shards) != partitioner.num_shards:
            raise ValueError(
                f"partitioner expects {partitioner.num_shards} shards, "
                f"got {len(shards)}"
            )
        self.config = config if config is not None else IndexConfig()
        self.partitioner = partitioner
        self.shards: List[MovingObjectIndex] = (
            shards
            if shards is not None
            else [MovingObjectIndex(self.config) for _ in range(partitioner.num_shards)]
        )
        #: Object directory: oid -> owning shard id.  The per-shard hash
        #: indexes remain authoritative for the leaf page within the shard.
        self._shard_of: Dict[int, int] = {
            oid: shard_id
            for shard_id, shard in enumerate(self.shards)
            for oid in shard._positions
        }
        #: Cross-shard migrations executed since the last statistics reset.
        self.migrations = 0

    @classmethod
    def from_restored_shards(
        cls, partitioner: Partitioner, shards: List[MovingObjectIndex]
    ) -> "ShardedIndex":
        """Assemble a sharded index from already-restored shard indexes.

        Used by checkpoint loading: the object directory is a derived
        structure and is rebuilt from the shards' own position tables.
        """
        return cls(config=shards[0].config, partitioner=partitioner, shards=shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    def shard_for(self, oid: int) -> Optional[int]:
        """The shard currently owning *oid* (``None`` if absent)."""
        return self._shard_of.get(oid)

    def shard_populations(self) -> List[int]:
        """Number of objects per shard (directory view)."""
        populations = [0] * self.num_shards
        for shard_id in self._shard_of.values():
            populations[shard_id] += 1
        return populations

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, objects: Iterable[Tuple[int, Point]], bulk: bool = True) -> None:
        """Partition the initial objects spatially and load every shard."""
        groups: List[List[Tuple[int, Point]]] = [[] for _ in range(self.num_shards)]
        for oid, location in objects:
            shard_id = self.partitioner.shard_of(location)
            groups[shard_id].append((oid, location))
            self._shard_of[oid] = shard_id
        for shard, group in zip(self.shards, groups):
            shard.load(group, bulk=bulk)
        # Re-split the aggregate buffer: per-shard loading sized each pool
        # against its own database; the facade contract sizes against the
        # aggregate and apportions by shard weight.
        self.configure_buffer()
        self.migrations = 0

    def configure_buffer(self, percent: Optional[float] = None) -> None:
        """Size the aggregate buffer and split its capacity across the shards.

        The capacity is computed against the *aggregate* database size — the
        same contract as the single index, where ``percent`` is a fraction
        of everything stored — and divided across the shard pools in
        proportion to each shard's disk size (largest-remainder rounding, so
        the shares sum exactly to the aggregate capacity).  A skewed load
        therefore gives hot shards proportionally more buffer instead of
        every shard getting the buffer of an average one.
        """
        from repro.storage import BufferPool  # local: keep module imports light

        percent = self.config.buffer_percent if percent is None else percent
        disk_sizes = [len(shard.disk) for shard in self.shards]
        total_capacity = BufferPool.capacity_for_percentage(percent, sum(disk_sizes))
        self._split_buffer_capacity(total_capacity, disk_sizes)

    def _split_buffer_capacity(
        self, total_capacity: int, disk_sizes: List[int]
    ) -> None:
        """Distribute *total_capacity* frames proportionally to shard disk sizes."""
        total_pages = sum(disk_sizes)
        if total_pages == 0:
            shares = [0] * len(self.shards)
        else:
            exact = [total_capacity * size / total_pages for size in disk_sizes]
            shares = [int(value) for value in exact]
            remainders = sorted(
                range(len(shares)),
                key=lambda i: (exact[i] - shares[i], disk_sizes[i]),
                reverse=True,
            )
            for i in remainders[: total_capacity - sum(shares)]:
                shares[i] += 1
        for shard, share in zip(self.shards, shares):
            shard.buffer.clear()
            shard.buffer.capacity = share

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def insert(self, oid: int, location: Point) -> None:
        if oid in self._shard_of:
            raise DuplicateObjectError(oid)
        shard_id = self.partitioner.shard_of(location)
        self.shards[shard_id].insert(oid, location)
        self._shard_of[oid] = shard_id

    def update(self, oid: int, new_location: Point) -> UpdateOutcome:
        """Route the update; migrate across shards when a boundary is crossed."""
        source = self._shard_of.get(oid)
        if source is None:
            raise UnknownObjectError(oid)
        target = self.partitioner.shard_of(new_location)
        if target == source:
            return self.shards[source].update(oid, new_location)
        self._execute_migration(
            BatchUpdate(oid, self.position_of(oid), new_location)
        )
        return UpdateOutcome.MIGRATED

    def delete(self, oid: int, strict: bool = True) -> bool:
        shard_id = self._shard_of.pop(oid, None)
        if shard_id is None:
            if strict:
                raise UnknownObjectError(oid)
            return False
        return self.shards[shard_id].delete(oid)

    def _query_shards(self, window: Rect) -> List[int]:
        """Shards a window query must visit.

        The partitioner's boundary rectangles are the primary fan-out
        filter; a shard whose *content* MBR reaches outside its boundary
        (positions are clamped into the unit square for routing, so an
        out-of-square object legally lives beyond its cell) is included
        through the uncharged root-MBR check, keeping sharded answers
        identical to a single index for every input.
        """
        selected = set(self.partitioner.shards_intersecting(window))
        for shard_id, shard in enumerate(self.shards):
            if shard_id in selected:
                continue
            content = shard.tree.root_mbr()
            if content is not None and content.intersects(window):
                selected.add(shard_id)
        return sorted(selected)

    def range_query(self, window: Rect) -> List[int]:
        """Fan the window out to the shards whose boundaries intersect it."""
        results: List[int] = []
        for shard_id in self._query_shards(window):
            results.extend(self.shards[shard_id].range_query(window))
        return results

    def stream_query(self, window: Rect) -> QueryCursor:
        """Streaming fan-out: shard traversals advance only as the cursor is read.

        The qualifying shards are selected up front (an uncharged check of
        partition boundaries and root MBRs); each shard's own traversal then
        streams lazily, in the same shard order — and therefore the same
        result order — as :meth:`range_query`.
        """

        def hits() -> Iterator[int]:
            for shard_id in self._query_shards(window):
                yield from self.shards[shard_id].strategy.iter_range_query(window)

        return QueryCursor(hits())

    def stream_knn(self, point: Point, k: int) -> QueryCursor:
        """Cursor over the merged k nearest neighbours across shards.

        Cross-shard kNN needs every contributing shard's candidates before
        the global order is known, so the merge itself is materialised (the
        per-shard searches still prune against each other's bounds); the
        cursor provides the uniform streaming interface over the merged
        result.
        """
        return QueryCursor(iter(self.knn(point, k)))

    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """Best-first kNN over shard bounds with a pruning radius.

        Shards are visited in order of the minimum distance from the query
        point to their bound — the shard boundary tightened to the shard's
        actual content MBR (an always-valid, usually tighter bound, and the
        correct one even for positions stored outside the unit square).
        Once *k* candidates are held, any shard whose bound lies strictly
        beyond the current k-th distance cannot contribute and is pruned.
        """
        if k <= 0:
            return []
        bounds: List[Tuple[float, int]] = []
        for shard_id, shard in enumerate(self.shards):
            content = shard.tree.root_mbr()
            if content is None:
                continue  # empty shard: nothing to contribute
            bounds.append((content.min_distance_to_point(point), shard_id))
        bounds.sort()
        best: List[Tuple[float, int]] = []
        for bound, shard_id in bounds:
            if len(best) >= k and bound > best[-1][0]:
                break
            best.extend(self.shards[shard_id].knn(point, k))
            best.sort()
            del best[k:]
        return best

    def position_of(self, oid: int) -> Optional[Point]:
        shard_id = self._shard_of.get(oid)
        if shard_id is None:
            return None
        return self.shards[shard_id].position_of(oid)

    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._shard_of

    # ------------------------------------------------------------------
    # Batch operations (per-shard group-by-leaf buckets)
    # ------------------------------------------------------------------
    def update_many(self, updates: Iterable[Tuple[int, Point]]) -> BatchResult:
        """Move many objects in one batch, bucketed per shard.

        Updates are coalesced per object (first old position, latest new
        position — the same rule as the single-index batch), the coalesced
        requests are routed per shard, and each shard executes its group-by-
        leaf pipeline; boundary-crossing requests migrate through the
        per-operation path.  The returned result aggregates every shard's
        groups/residual counters and merges their I/O deltas.
        """
        return self._execute_batch(self.parse_updates(updates))

    def apply(self, operations: Iterable[Tuple]) -> BatchResult:
        """Execute a mixed operation stream with per-shard batched updates.

        Deprecated tuple adapter over the typed
        :meth:`~repro.core.protocol.SpatialIndexFacade.execute_many`.  The
        stream grammar and barrier semantics match
        :meth:`MovingObjectIndex.apply`: runs of updates are batched,
        inserts/deletes/queries flush pending updates first, and the whole
        stream is parsed (and validated) before anything executes.
        """
        return self._execute_operation_stream(operations, strict_deletes=False)

    def _execute_operation_stream(
        self, operations: Iterable, strict_deletes: bool
    ) -> BatchResult:
        parsed = self._parse_operations(operations, strict_deletes=strict_deletes)
        result = BatchResult()
        before = [shard.stats.snapshot() for shard in self.shards]
        run: List[BatchUpdate] = []
        for op in parsed:
            if isinstance(op, BatchUpdate):
                result.updates += 1
                run.append(op)
            elif isinstance(op, InsertOp):
                self._flush_updates(run, result)
                self.insert(op.oid, op.location)
                result.inserts += 1
            elif isinstance(op, DeleteOp):
                self._flush_updates(run, result)
                self.delete(op.oid)
                result.deletes += 1
            elif isinstance(op, QueryOp):
                self._flush_updates(run, result)
                result.queries.append(self.range_query(op.window))
            elif isinstance(op, KNNOp):
                self._flush_updates(run, result)
                result.neighbors.append(self.knn(op.point, op.k))
            else:  # pragma: no cover - the parser only emits the above
                raise TypeError(f"unsupported batch operation {op!r}")
        self._flush_updates(run, result)
        self._merge_io_delta(result, before)
        return result

    def _execute_batch(self, ops: List[BatchUpdate]) -> BatchResult:
        result = BatchResult(updates=len(ops))
        before = [shard.stats.snapshot() for shard in self.shards]
        self._flush_updates(list(ops), result)
        self._merge_io_delta(result, before)
        return result

    def _flush_updates(self, run: List[BatchUpdate], result: BatchResult) -> None:
        """Coalesce a run of updates and route it: per-shard batches + migrations."""
        if not run:
            return
        pending, _requested, coalesced = coalesce_updates(run)
        result.coalesced += coalesced
        run.clear()
        per_shard: Dict[int, List[BatchUpdate]] = {}
        for request in pending.values():
            source = self._shard_of.get(request.oid)
            target = self.partitioner.shard_of(request.new_location)
            if source is None or source != target:
                self._execute_migration(request, result)
            else:
                per_shard.setdefault(source, []).append(request)
        for shard_id, requests in per_shard.items():
            shard = self.shards[shard_id]
            for request in requests:
                shard._positions[request.oid] = request.new_location
            sub = shard.batch.execute(requests)
            result.groups += sub.groups
            result.largest_group = max(result.largest_group, sub.largest_group)
            result.residuals += sub.residuals

    def _execute_migration(
        self, request: BatchUpdate, result: Optional[BatchResult] = None
    ) -> None:
        """Delete from the source shard, insert into the target, re-route."""
        source = self._shard_of.get(request.oid)
        target = self.partitioner.shard_of(request.new_location)
        if source is not None:
            self.shards[source].delete(request.oid)
            self.migrations += 1
            if result is not None:
                result.migrations += 1
        elif result is not None:
            result.residuals += 1  # not indexed yet: plain insert
        self.shards[target].insert(request.oid, request.new_location)
        self._shard_of[request.oid] = target

    def parse_updates(self, updates: Iterable[Tuple[int, Point]]) -> List[BatchUpdate]:
        """Overlay-validate an ``(oid, new_position)`` stream into batch ops.

        Mirrors :meth:`MovingObjectIndex.parse_updates`: a bad operation
        mid-stream leaves nothing executed.  Unlike the single index,
        positions are NOT pre-committed here — shard position maps advance
        when their shard executes (migrations go through the shard facades,
        which need the old position to still be current).
        """
        moved: Dict[int, Point] = {}
        ops: List[BatchUpdate] = []
        for oid, new_location in updates:
            old_location = moved.get(oid, self.position_of(oid))
            if old_location is None:
                raise UnknownObjectError(oid)
            ops.append(BatchUpdate(oid, old_location, new_location))
            moved[oid] = new_location
        return ops

    def _parse_operations(
        self, operations: Iterable, strict_deletes: bool = False
    ) -> List[Operation]:
        # The shared stream grammar; unlike the single index the overlay is
        # discarded — shard position maps advance when operations execute.
        parsed, _overlay = parse_operation_stream(
            operations, self.position_of, strict_deletes=strict_deletes
        )
        return parsed

    def _merge_io_delta(
        self, result: BatchResult, before: List[IOStatistics]
    ) -> None:
        result.io = IOStatistics.sum(
            shard.stats.snapshot().delta_since(snapshot)
            for shard, snapshot in zip(self.shards, before)
        )

    # ------------------------------------------------------------------
    # Engine SPI (repro.core.protocol; sessions open via engine())
    # ------------------------------------------------------------------
    def lock_requests_for(self, kind: str, payload: Tuple):
        """Predict an operation's lock set across shards.

        Each shard's granules are namespaced with its shard id, so scopes
        from different shards are disjoint by construction: only operations
        that touch the same shard can ever conflict, and a cross-shard
        migration names granules from both its shards.
        """
        if kind == "update":
            oid, new_location = payload
            source = self._shard_of.get(oid)
            target = self.partitioner.shard_of(new_location)
            if source is None:
                return namespace_pairs(
                    self.shards[target].lock_requests_for(
                        "insert", (oid, new_location)
                    ),
                    target,
                )
            if source == target:
                return namespace_pairs(
                    self.shards[source].lock_requests_for(kind, payload), source
                )
            pairs = namespace_pairs(
                self.shards[source].lock_requests_for("delete", (oid,)), source
            )
            pairs.extend(
                namespace_pairs(
                    self.shards[target].lock_requests_for(
                        "insert", (oid, new_location)
                    ),
                    target,
                )
            )
            return pairs
        if kind == "insert":
            _oid, location = payload
            target = self.partitioner.shard_of(location)
            return namespace_pairs(
                self.shards[target].lock_requests_for(kind, payload), target
            )
        if kind == "delete":
            (oid,) = payload
            source = self._shard_of.get(oid)
            if source is None:
                return []
            return namespace_pairs(
                self.shards[source].lock_requests_for(kind, payload), source
            )
        if kind == "query":
            (window,) = payload
            pairs = []
            for shard_id in self._query_shards(window):
                pairs.extend(
                    namespace_pairs(
                        self.shards[shard_id].lock_requests_for(kind, payload),
                        shard_id,
                    )
                )
            return pairs
        if kind == "knn":
            # Conservative: a kNN may spill into any shard holding data, so
            # every non-empty shard contributes its own (conservative) scope.
            pairs = []
            for shard_id, shard in enumerate(self.shards):
                if len(shard) == 0:
                    continue
                pairs.extend(
                    namespace_pairs(shard.lock_requests_for(kind, payload), shard_id)
                )
            return pairs
        raise ValueError(f"unknown engine operation kind {kind!r}")

    def prepare_concurrent_batch(self, engine, updates: Iterable) -> PreparedBatch:
        """Plan one batch as per-shard group buckets plus migration ops.

        In-shard requests go through each shard's group-by-leaf planner and
        become :class:`~repro.concurrency.engine.GroupOperation`\\ s whose
        granules carry the shard namespace — buckets of different shards are
        disjoint by construction and schedule fully in parallel.  Boundary-
        crossing requests become :class:`MigrationOperation`\\ s locking both
        shards.  Shard position maps are pre-committed for in-shard members
        (their group/replay passes never consult them); migrations commit
        their own state when they execute.
        """
        pending, requested, coalesced = coalesce_updates(updates)
        result = BatchResult(updates=requested, coalesced=coalesced)
        operations: List[VirtualOperation] = []
        per_shard: Dict[int, List[BatchUpdate]] = {}
        for request in pending.values():
            source = self._shard_of.get(request.oid)
            target = self.partitioner.shard_of(request.new_location)
            if source is None or source != target:
                operations.append(MigrationOperation(engine, self, request, result))
            else:
                per_shard.setdefault(source, []).append(request)
        for shard_id, requests in per_shard.items():
            shard = self.shards[shard_id]
            plan = shard.batch.plan(requests)
            for bucket in plan.buckets.values():
                for request in bucket:
                    shard._positions[request.oid] = request.new_location
            for request in plan.unindexed:
                shard._positions[request.oid] = request.new_location
                operations.append(
                    ReplayOperation(
                        engine, shard.batch, request, result, namespace=shard_id
                    )
                )
            operations.extend(
                GroupOperation(
                    engine, shard.batch, leaf_page, bucket, result,
                    namespace=shard_id,
                )
                for leaf_page, bucket in plan.buckets.items()
            )
        before = [shard.stats.snapshot() for shard in self.shards]

        def finalize() -> None:
            self._merge_io_delta(result, before)

        return PreparedBatch(operations=operations, result=result, finalize=finalize)

    def set_active_client(self, client: Optional[Hashable]) -> None:
        for shard in self.shards:
            shard.set_active_client(client)

    def total_physical_io(self) -> int:
        return sum(shard.total_physical_io() for shard in self.shards)

    def reset_client_io(self) -> None:
        for shard in self.shards:
            shard.reset_client_io()

    def client_io_table(self) -> Dict[Hashable, ClientIOCounters]:
        """Per-client physical I/O merged across every shard's buffer pool."""
        merged: Dict[Hashable, ClientIOCounters] = {}
        for shard in self.shards:
            for client, counters in shard.client_io_table().items():
                into = merged.setdefault(client, ClientIOCounters())
                into.physical_reads += counters.physical_reads
                into.physical_writes += counters.physical_writes
        return merged

    # ------------------------------------------------------------------
    # Statistics and integrity
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        for shard in self.shards:
            shard.reset_statistics()
        self.migrations = 0

    def io_snapshot(self) -> IOStatistics:
        """The shards' I/O counters merged into one aggregate snapshot."""
        return IOStatistics.sum(shard.io_snapshot() for shard in self.shards)

    def refresh_summary(self) -> None:
        for shard in self.shards:
            shard.refresh_summary()

    def validate(self, check_min_fill: bool = False) -> dict:
        """Validate every shard, the directory, and the spatial routing."""
        reports = []
        errors: List[str] = []
        for shard_id, shard in enumerate(self.shards):
            reports.append(shard.validate(check_min_fill=check_min_fill))
            for oid in shard._positions:
                if self._shard_of.get(oid) != shard_id:
                    errors.append(
                        f"object {oid}: directory says shard "
                        f"{self._shard_of.get(oid)}, shard {shard_id} holds it"
                    )
                position = shard.position_of(oid)
                # Routing consistency: the partitioner (which clamps into
                # the unit square) must still assign the stored position to
                # the shard holding it — the invariant update() maintains.
                if self.partitioner.shard_of(position) != shard_id:
                    errors.append(
                        f"object {oid}: position {position!r} routes to shard "
                        f"{self.partitioner.shard_of(position)}, stored in "
                        f"{shard_id}"
                    )
        if len(self._shard_of) != sum(len(shard) for shard in self.shards):
            errors.append(
                f"directory holds {len(self._shard_of)} objects, shards hold "
                f"{sum(len(shard) for shard in self.shards)}"
            )
        if errors:
            raise AssertionError("; ".join(errors))
        return {
            "shards": len(self.shards),
            "objects": len(self._shard_of),
            "heights": [shard.tree.height for shard in self.shards],
            "reports": reports,
        }

    def describe(self) -> str:
        populations = self.shard_populations()
        return (
            f"sharded[{self.num_shards}x] {self.partitioner.describe()} | "
            f"{self.config.describe()} | objects={len(self._shard_of)} "
            f"populations={populations} migrations={self.migrations}"
        )
