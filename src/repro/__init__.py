"""repro — reproduction of "Supporting Frequent Updates in R-Trees: A Bottom-Up
Approach" (Lee, Hsu, Jensen, Cui, Teo; VLDB 2003).

The package provides a complete, pure-Python implementation of the paper's
system stack:

* :mod:`repro.geometry` — points and MBRs;
* :mod:`repro.storage` — simulated paged disk, LRU buffer pool, I/O counters;
* :mod:`repro.rtree` — the disk-based R-tree (splits, reinsertion, queries,
  bulk loading, validation);
* :mod:`repro.secondary` — the secondary object-ID hash index;
* :mod:`repro.summary` — the main-memory summary structure (direct access
  table + leaf bit vector) and summary-assisted queries;
* :mod:`repro.update` — the update strategies: top-down (TD), naive
  bottom-up, localized bottom-up (LBU, Algorithm 1) and generalized
  bottom-up (GBU, Algorithm 2);
* :mod:`repro.workload` — GSTD-style moving-object workload generation;
* :mod:`repro.concurrency` — Dynamic Granular Locking and the online
  concurrent operation engine (deterministic multi-client scheduling);
* :mod:`repro.shard` — the sharded index layer: spatial partition routing
  over N independent shards, cross-shard migration, fan-out queries, and
  per-shard lock namespaces under the engine;
* :mod:`repro.cost` — the analytical cost model of Section 4;
* :mod:`repro.bench` — the experiment harness reproducing every figure;
* :mod:`repro.core` — the :class:`~repro.core.index.MovingObjectIndex`
  facade tying everything together;
* :mod:`repro.api` — the typed public surface (API v2): first-class
  :class:`~repro.api.operations.Operation` dataclasses, the structured
  error taxonomy, streaming :class:`~repro.api.results.QueryCursor`\\ s,
  and the declarative :func:`~repro.api.builder.open_index` /
  :class:`~repro.api.builder.IndexBuilder` entry points.

Quick start::

    import repro
    from repro import Point, Rect
    from repro.api import RangeQuery, Update

    index = repro.open_index({"config": {"strategy": "GBU"}})
    index.load([(0, Point(0.1, 0.1)), (1, Point(0.2, 0.8))])
    index.execute(Update(0, Point(0.12, 0.11)))
    print(index.execute(RangeQuery(Rect(0.0, 0.0, 0.5, 0.5))).cursor().all())
"""

from repro.api import IndexBuilder, index_spec, open_index
from repro.core import IndexConfig, MovingObjectIndex, SpatialIndexFacade
from repro.geometry import Point, Rect
from repro.shard import GridPartitioner, ShardedIndex
from repro.update import TuningParameters, UpdateOutcome

__version__ = "2.0.0"

__all__ = [
    "IndexConfig",
    "IndexBuilder",
    "MovingObjectIndex",
    "SpatialIndexFacade",
    "ShardedIndex",
    "GridPartitioner",
    "Point",
    "Rect",
    "TuningParameters",
    "UpdateOutcome",
    "open_index",
    "index_spec",
    "__version__",
]
