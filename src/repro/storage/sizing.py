"""Page-size driven node sizing.

The paper derives node fan-out from the page size (1 KB pages in the
experiments; the summary-structure sizing discussion uses a 4 KB page with a
fan-out of 204 and 66 % utilisation).  :class:`PageLayout` performs that
derivation so that changing the page size automatically changes the fan-out,
tree height, and summary-structure size in a consistent way.

Entry sizes follow the paper's node format:

* leaf entries  ``(oid, rect)``        — an object id plus a 2-D MBR,
* internal entries ``(ptr, rect)``     — a child pointer plus a 2-D MBR,

with 4-byte identifiers/pointers and 4-byte coordinates (four per MBR).
LBU additionally stores a parent pointer in every leaf node, which consumes
space that would otherwise hold entries; :meth:`PageLayout.leaf_capacity`
models that loss so LBU's reduced fan-out (Section 3.1) is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PageLayout:
    """Translates a page size into leaf / internal node capacities.

    Parameters
    ----------
    page_size:
        Page size in bytes (default 1024, as in the paper's experiments).
    coordinate_size:
        Bytes per MBR coordinate (4 coordinates per 2-D MBR).
    pointer_size:
        Bytes per object id or child pointer.
    header_size:
        Bytes reserved per node for level, entry count, parent pointer, flags
        and the optional ε-enlarged MBR — i.e. everything the binary node
        codec (:mod:`repro.storage.serialization`) stores besides the
        entries.
    min_fill_factor:
        Minimum node utilisation (fraction of capacity); Guttman suggests
        values between 0.3 and 0.5.  Underflow below this triggers the
        R-tree's condense/reinsert machinery.
    """

    page_size: int = 1024
    coordinate_size: int = 4
    pointer_size: int = 4
    header_size: int = 32
    min_fill_factor: float = 0.4

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.min_fill_factor <= 0 or self.min_fill_factor > 0.5:
            raise ValueError("min_fill_factor must be in (0, 0.5]")
        if self.entry_size <= 0:
            raise ValueError("page layout produces non-positive entry size")
        if self.leaf_capacity(with_parent_pointer=False) < 2:
            raise ValueError("page too small: leaf capacity must be at least 2")
        if self.internal_capacity < 2:
            raise ValueError("page too small: internal capacity must be at least 2")

    # -- entry geometry ------------------------------------------------------
    @property
    def mbr_size(self) -> int:
        """Bytes used by one 2-D MBR (four coordinates)."""
        return 4 * self.coordinate_size

    @property
    def entry_size(self) -> int:
        """Bytes used by one entry: an MBR plus an id/pointer."""
        return self.mbr_size + self.pointer_size

    # -- capacities ------------------------------------------------------------
    def leaf_capacity(self, with_parent_pointer: bool = False) -> int:
        """Maximum number of entries in a leaf node.

        ``with_parent_pointer=True`` models LBU's leaves, which dedicate one
        pointer-sized slot of the page to the parent pointer.
        """
        usable = self.page_size - self.header_size
        if with_parent_pointer:
            usable -= self.pointer_size
        return usable // self.entry_size

    @property
    def internal_capacity(self) -> int:
        """Maximum number of entries in an internal node."""
        usable = self.page_size - self.header_size
        return usable // self.entry_size

    def min_entries(self, capacity: int) -> int:
        """Minimum number of entries before a node underflows."""
        return max(1, int(capacity * self.min_fill_factor))

    # -- summary structure sizing ----------------------------------------------
    @property
    def direct_access_entry_size(self) -> int:
        """Bytes per direct-access-table entry.

        An entry stores the node's MBR, its level, and its child-pointer
        list's location (modelled as two pointers: node offset and first
        child offset).  The paper reports the average entry-to-node size
        ratio at roughly 20 %, which this layout reproduces for 1 KB pages.
        """
        return self.mbr_size + 2 * self.pointer_size + 4  # +4 for the level/flags

    def summary_size_bytes(self, internal_nodes: int, leaf_nodes: int) -> int:
        """Approximate main-memory footprint of the summary structure."""
        table = internal_nodes * self.direct_access_entry_size
        bit_vector = (leaf_nodes + 7) // 8
        return table + bit_vector

    def summary_to_tree_ratio(self, internal_nodes: int, leaf_nodes: int) -> float:
        """Summary-structure size as a fraction of the R-tree size on disk."""
        tree_bytes = (internal_nodes + leaf_nodes) * self.page_size
        if tree_bytes == 0:
            return 0.0
        return self.summary_size_bytes(internal_nodes, leaf_nodes) / tree_bytes
