"""LRU buffer pool.

The paper runs every experiment with a buffer whose capacity is a percentage
of the database size (1 % by default, varied from 0 % to 10 % in the
buffering experiment, Figures 6(g)-(h)).  :class:`BufferPool` implements that
layer: an LRU cache of pages in front of the :class:`~repro.storage.disk.DiskManager`,
with write-back semantics and full hit/miss accounting.

All R-tree node access in this repository goes through a buffer pool, so the
"Avg Disk I/O" metric of the benchmarks is the number of *physical* page
transfers after the buffer has absorbed whatever it can — exactly what the
paper measures.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.storage.disk import DiskManager
from repro.storage.stats import IOStatistics

#: One entry of an access trace: ``("read" | "write", page_id)``.
AccessRecord = Tuple[str, int]

#: Sentinel distinguishing "frame absent" from any real payload.
_MISSING = object()


@dataclass
class ClientIOCounters:
    """Physical page transfers attributed to one client of the pool."""

    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def total(self) -> int:
        return self.physical_reads + self.physical_writes


class BufferPool:
    """Write-back LRU buffer pool over a :class:`DiskManager`.

    Parameters
    ----------
    disk:
        The underlying simulated disk.
    capacity:
        Maximum number of pages held in the pool.  A capacity of ``0``
        disables buffering entirely (every access is physical), which is how
        the paper's "0 % buffer" configuration is modelled.
    stats:
        Shared I/O counters; defaults to the disk manager's counters so a
        single :class:`IOStatistics` describes the whole storage stack.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 0,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.capacity = capacity
        self.stats = stats if stats is not None else disk.stats
        # page_id -> payload; insertion order is LRU order (oldest first).
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self._dirty: set = set()
        # page_id -> pin count; pinned pages are exempt from eviction (the
        # batch executor pins a group's leaf so interleaved reads cannot push
        # it out of the pool mid-group).
        self._pins: dict = {}
        # Scoped access trace (see logged_accesses()); None in steady state.
        self._access_log: Optional[List[AccessRecord]] = None
        # Per-client physical-I/O attribution (see set_active_client()).
        self._active_client: Optional[Hashable] = None
        self._client_io: Dict[Hashable, ClientIOCounters] = {}

    # -- access tracing -------------------------------------------------------
    @contextmanager
    def logged_accesses(self) -> Iterator[List[AccessRecord]]:
        """Record every logical access made inside the ``with`` block.

        Yields the list the accesses are appended to, as
        ``("read" | "write", page_id)`` tuples.  Recording is strictly scoped:
        the log is detached when the block exits (normally or via an
        exception), so a trace can never keep growing into a steady-state
        run.  Blocks nest; each one sees only its own accesses.
        """
        log: List[AccessRecord] = []
        previous = self._access_log
        self._access_log = log
        try:
            yield log
        finally:
            self._access_log = previous

    @property
    def is_logging_accesses(self) -> bool:
        """``True`` while inside a :meth:`logged_accesses` block."""
        return self._access_log is not None

    # -- per-client accounting ------------------------------------------------
    def set_active_client(self, client: Optional[Hashable]) -> None:
        """Attribute subsequent physical transfers to *client*.

        The concurrent operation engine brackets each operation's execution
        with ``set_active_client(client_id)`` / ``set_active_client(None)``
        so every virtual client's share of the physical I/O is accounted.
        Write-backs caused by eviction are charged to the client whose
        admission triggered them (they would not have happened at that moment
        otherwise).  With no active client the accounting has no overhead.
        """
        self._active_client = client

    def client_io(self, client: Hashable) -> ClientIOCounters:
        """Counters attributed to *client* (zeros when it never ran)."""
        return self._client_io.get(client, ClientIOCounters())

    def client_io_table(self) -> Dict[Hashable, ClientIOCounters]:
        """Copy of the per-client attribution table."""
        return {client: ClientIOCounters(c.physical_reads, c.physical_writes)
                for client, c in self._client_io.items()}

    def reset_client_io(self) -> None:
        """Drop all per-client attribution (start of an engine run)."""
        self._client_io.clear()

    def _charge_client(self, reads: int = 0, writes: int = 0) -> None:
        if self._active_client is None:
            return
        counters = self._client_io.get(self._active_client)
        if counters is None:
            counters = self._client_io[self._active_client] = ClientIOCounters()
        counters.physical_reads += reads
        counters.physical_writes += writes

    # -- sizing helpers -----------------------------------------------------
    @classmethod
    def capacity_for_percentage(
        cls, percent_of_database: float, database_pages: int
    ) -> int:
        """Pool capacity (in pages) for a buffer of *percent_of_database* %.

        This is the paper's buffer sizing rule ("buffer that is 1 % of the
        database size") as a pure computation: the capacity is rounded down,
        and a non-zero percentage on a non-empty database always yields at
        least one page.
        """
        if percent_of_database < 0:
            raise ValueError("percent_of_database must be non-negative")
        capacity = int(database_pages * percent_of_database / 100.0)
        if percent_of_database > 0 and database_pages > 0:
            capacity = max(capacity, 1)
        return capacity

    @classmethod
    def for_percentage(
        cls,
        disk: DiskManager,
        percent_of_database: float,
        database_pages: int,
        stats: Optional[IOStatistics] = None,
    ) -> "BufferPool":
        """Create a pool sized as *percent_of_database* % of *database_pages*."""
        capacity = cls.capacity_for_percentage(percent_of_database, database_pages)
        return cls(disk, capacity=capacity, stats=stats)

    # -- core API -----------------------------------------------------------
    def read(self, page_id: int) -> Any:
        """Return the payload of *page_id*, reading from disk on a miss."""
        self.stats.logical_reads += 1
        if self._access_log is not None:
            self._access_log.append(("read", page_id))
        if self.capacity > 0:
            frames = self._frames
            payload = frames.get(page_id, _MISSING)
            if payload is not _MISSING:
                self.stats.buffer_hits += 1
                frames.move_to_end(page_id)
                return payload
        payload = self.disk.read_page(page_id)
        self._charge_client(reads=1)
        self._admit(page_id, payload)
        return payload

    def write(self, page_id: int, payload: Any) -> None:
        """Write *payload* to *page_id*.

        With buffering enabled the write is absorbed by the pool (write-back)
        and only reaches the disk when the frame is evicted or flushed.
        Without buffering it is an immediate physical write — the paper's
        algorithms phrase this as "write out leaf node".
        """
        self.stats.logical_writes += 1
        if self._access_log is not None:
            self._access_log.append(("write", page_id))
        if self.capacity == 0:
            self.disk.write_page(page_id, payload)
            self._charge_client(writes=1)
            return
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self._frames[page_id] = payload
        else:
            self._admit(page_id, payload)
        self._dirty.add(page_id)

    def peek(self, page_id: int) -> Any:
        """Uncharged read: the buffered frame when resident, else the disk copy.

        Under write-back caching the freshest version of a dirty page lives
        only in the pool, so planning and validation code that bypasses the
        I/O accounting must still look here first — peeking the disk alone
        would return a stale (or not-yet-materialised) payload.  Never
        counts I/O and never disturbs LRU order.
        """
        if page_id in self._frames:
            return self._frames[page_id]
        return self.disk.peek(page_id)

    def pin(self, page_id: int) -> None:
        """Exempt *page_id* from eviction until a matching :meth:`unpin`.

        Pins nest (a pin count is kept per page).  While pages are pinned the
        pool may temporarily exceed its capacity: when every frame is pinned,
        admission stops evicting rather than deadlock; the overrun is
        recorded in :attr:`IOStatistics.over_capacity_peak` and the excess
        frames are evicted as soon as :meth:`unpin` releases a pin.
        """
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin on *page_id* (no-op when the page is not pinned).

        Releasing a pin also shrinks an over-capacity pool back towards its
        configured capacity: frames admitted while every frame was pinned
        (see :meth:`pin`) are evicted here, LRU-first, rather than lingering
        until some later admission happens to reclaim them.
        """
        count = self._pins.get(page_id, 0)
        if count <= 1:
            self._pins.pop(page_id, None)
        else:
            self._pins[page_id] = count - 1
        while len(self._frames) > self.capacity:
            if not self._evict_one():
                break  # the remaining excess frames are all still pinned

    def is_pinned(self, page_id: int) -> bool:
        return page_id in self._pins

    def discard(self, page_id: int) -> None:
        """Drop *page_id* from the pool without writing it back.

        Used when a page is deallocated (e.g. a node merged away) so a stale
        dirty frame is not flushed to a freed page later.
        """
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def flush(self) -> int:
        """Write back every dirty frame; return the number of pages written."""
        written = 0
        for page_id in list(self._frames.keys()):
            if page_id in self._dirty:
                self.disk.write_page(page_id, self._frames[page_id])
                self._dirty.discard(page_id)
                written += 1
        return written

    def clear(self) -> None:
        """Flush and empty the pool (used between experiment phases)."""
        self.flush()
        self._frames.clear()
        self._dirty.clear()

    # -- internals ------------------------------------------------------------
    def _admit(self, page_id: int, payload: Any) -> None:
        if self.capacity == 0:
            return
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self._frames[page_id] = payload
            return
        while len(self._frames) >= self.capacity:
            if not self._evict_one():
                break  # every frame is pinned; run over capacity for now
        self._frames[page_id] = payload
        overflow = len(self._frames) - self.capacity
        if overflow > 0:
            # Pinned frames forced the pool over capacity: record the
            # high-water mark (unpin() shrinks the pool back).
            self.stats.over_capacity_peak = max(
                self.stats.over_capacity_peak, overflow
            )

    def _evict_one(self) -> bool:
        """Evict the least recently used unpinned frame; ``False`` if none."""
        if not self._pins:
            # Fast path: no pins, so the LRU head is always the victim.
            victim_id = next(iter(self._frames), None)
        else:
            victim_id = next(
                (page_id for page_id in self._frames if page_id not in self._pins),
                None,
            )
        if victim_id is None:
            return False
        payload = self._frames.pop(victim_id)
        if victim_id in self._dirty:
            self.disk.write_page(victim_id, payload)
            self._charge_client(writes=1)
            self._dirty.discard(victim_id)
            self.stats.dirty_evictions += 1
        return True

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def resident_pages(self) -> list:
        """Page ids currently buffered, oldest first (test helper)."""
        return list(self._frames.keys())
