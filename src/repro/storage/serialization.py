"""Binary node serialization and the live page-store codec.

Two encoders live here:

* :func:`serialize_node` / :func:`deserialize_node` — the **sizing-model
  codec**.  Its format mirrors the paper's node layout byte for byte
  (4-byte coordinates by default) so the fan-out claims of
  :class:`~repro.storage.sizing.PageLayout` can be checked: a node at its
  configured capacity must serialise to at most ``page_size`` bytes.

  **Quantization contract**: with the paper's 4-byte coordinates each value
  is stored as an IEEE-754 binary32.  A round trip therefore reproduces the
  input exactly *iff* every coordinate is f32-representable; otherwise the
  value is quantized to the nearest binary32 (about 7 significant decimal
  digits).  :func:`coordinate_quantum` exposes the per-value quantization so
  callers (and tests) can assert the contract instead of relying on loose
  approximate comparisons.  Building the layout with ``coordinate_size=8``
  switches the format to ``<4d`` (binary64) and makes every round trip
  lossless — at the cost of a larger entry and hence a smaller fan-out,
  which the sizing model accounts for automatically.

* :class:`NodeCodec` — the **page-store codec** used when the tree is
  configured with binary pages (``page_store="binary"``).  Every
  :meth:`~repro.rtree.tree.RTree.write_node` encodes the node into a page
  image and every read decodes it back, so the buffer pool holds ``bytes``
  instead of live node objects.  The format is columnar and always binary64
  (the live index must not quantize coordinates): a fixed header, then all
  entry MBRs as one contiguous f64 block, then all entry ids as one
  contiguous u32 block.  Decoding into the packed node layout is
  zero-parse — the two blocks are loaded with ``array.frombytes`` straight
  into the node's column buffers.

  The physical image of a full node (36 bytes per entry) exceeds the
  paper's logical 1 KB page budget, which assumes 4-byte coordinates.  That
  is deliberate: the logical sizing model — capacities, fan-out, tree
  height, and therefore every I/O count the paper figures report — is
  unchanged; only the bytes a simulated page holds differ.  The mapping
  between logical and physical accesses stays 1:1.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List, Optional

from repro.geometry import Rect
from repro.rtree.node import Entry, Node, PackedNode, make_node
from repro.storage.sizing import PageLayout

_NO_PARENT = 0xFFFFFFFF
_FLAG_HAS_STORED_MBR = 0x01

# Sizing-model codec: header (level, count, parent, flags, stored MBR) and
# row-major entries, with the coordinate width taken from the page layout.
_HEADER_F32 = struct.Struct("<HHIB4f")
_ENTRY_F32 = struct.Struct("<4fI")
_HEADER_F64 = struct.Struct("<HHIB4d")
_ENTRY_F64 = struct.Struct("<4dI")

# Page-store codec: same header fields, always binary64, columnar body.
_PAGE_HEADER = _HEADER_F64
_COORD_BYTES = 8  # one binary64 coordinate
_CHILD_BYTES = 4  # one unsigned 32-bit id

_LITTLE_ENDIAN = sys.byteorder == "little"
# array('d') is always IEEE-754 binary64; 'I' is at least — and on every
# supported platform exactly — 4 bytes.  The codec refuses to guess.
_ARRAY_U32_OK = array("I").itemsize == _CHILD_BYTES


class SerializationError(ValueError):
    """Raised when a node cannot be encoded within its page."""


def _structs_for(layout: PageLayout) -> tuple:
    if layout.coordinate_size == 4:
        return _HEADER_F32, _ENTRY_F32
    if layout.coordinate_size == 8:
        return _HEADER_F64, _ENTRY_F64
    raise SerializationError(
        f"unsupported coordinate_size {layout.coordinate_size} (expected 4 or 8)"
    )


def coordinate_quantum(value: float, coordinate_size: int = 4) -> float:
    """What *value* becomes after one trip through the codec.

    For 4-byte coordinates this is the nearest binary32; for 8-byte
    coordinates the value itself.  ``deserialize_node(serialize_node(n))``
    reproduces every coordinate as ``coordinate_quantum`` of the original —
    the codec's exact (and only) loss.
    """
    if coordinate_size == 8:
        return value
    return struct.unpack("<f", struct.pack("<f", value))[0]


def serialized_size(node: Node, layout: Optional[PageLayout] = None) -> int:
    """Number of bytes :func:`serialize_node` will produce for *node*."""
    layout = layout if layout is not None else PageLayout()
    header_struct, entry_struct = _structs_for(layout)
    header = max(header_struct.size, layout.header_size)
    return header + len(node.entries) * entry_struct.size


def serialize_node(node: Node, layout: Optional[PageLayout] = None) -> bytes:
    """Encode *node* into a page image.

    Raises :class:`SerializationError` when the encoding exceeds the layout's
    page size — which would mean the fan-out model over-promised.  See the
    module docstring for the coordinate quantization contract.
    """
    layout = layout if layout is not None else PageLayout()
    header_struct, entry_struct = _structs_for(layout)
    flags = 0
    stored = node.stored_mbr
    if stored is not None:
        flags |= _FLAG_HAS_STORED_MBR
        stored_tuple = stored.as_tuple()
    else:
        stored_tuple = (0.0, 0.0, 0.0, 0.0)

    parent = node.parent_page_id if node.parent_page_id is not None else _NO_PARENT
    header = header_struct.pack(
        node.level, len(node.entries), parent, flags, *stored_tuple
    )
    header = header.ljust(max(header_struct.size, layout.header_size), b"\x00")

    body = bytearray(header)
    for entry in node.entries:
        body += entry_struct.pack(*entry.rect.as_tuple(), entry.child)

    if len(body) > layout.page_size:
        raise SerializationError(
            f"node {node.page_id} with {len(node.entries)} entries needs "
            f"{len(body)} bytes, page size is {layout.page_size}"
        )
    return bytes(body)


def deserialize_node(page_id: int, data: bytes, layout: Optional[PageLayout] = None) -> Node:
    """Decode a page image produced by :func:`serialize_node`."""
    layout = layout if layout is not None else PageLayout()
    header_struct, entry_struct = _structs_for(layout)
    header_size = max(header_struct.size, layout.header_size)
    if len(data) < header_size:
        raise SerializationError("page image shorter than the node header")
    level, count, parent, flags, sx0, sy0, sx1, sy1 = header_struct.unpack(
        data[: header_struct.size]
    )

    entries = []
    offset = header_size
    for _ in range(count):
        chunk = data[offset : offset + entry_struct.size]
        if len(chunk) < entry_struct.size:
            raise SerializationError("truncated entry in page image")
        xmin, ymin, xmax, ymax, child = entry_struct.unpack(chunk)
        entries.append(Entry(Rect(xmin, ymin, xmax, ymax), child))
        offset += entry_struct.size

    node = Node(
        page_id=page_id,
        level=level,
        entries=entries,
        parent_page_id=None if parent == _NO_PARENT else parent,
    )
    if flags & _FLAG_HAS_STORED_MBR:
        node.stored_mbr = Rect(sx0, sy0, sx1, sy1)
    return node


class NodeCodec:
    """Lossless columnar page codec for the live binary page store.

    Parameters
    ----------
    node_layout:
        Which node class :meth:`decode` materialises: ``"object"`` builds
        :class:`~repro.rtree.node.Node` with an :class:`Entry` list,
        ``"packed"`` builds :class:`~repro.rtree.node.PackedNode` by loading
        the page's coordinate and id blocks directly into the node's column
        buffers (zero parsing).

    Page image format (little-endian)::

        header   <HHIB4d>  level, entry count, parent (0xFFFFFFFF = none),
                           flags, stored MBR (valid iff flag bit 0)
        coords   count * 4 binary64   all MBRs, stride 4
        children count * 1 uint32     all ids

    Coordinates are binary64 — a decode always reproduces exactly what was
    encoded, so the page store never perturbs the index geometry.
    """

    __slots__ = ("node_layout",)

    def __init__(self, node_layout: str = "object") -> None:
        if node_layout not in ("object", "packed"):
            raise ValueError(f"unknown node layout: {node_layout!r}")
        self.node_layout = node_layout

    # -- encode ----------------------------------------------------------------
    def encode(self, node: Node) -> bytes:
        count = len(node)
        flags = 0
        stored = node.stored_mbr
        if stored is not None:
            flags |= _FLAG_HAS_STORED_MBR
            stored_tuple = stored.as_tuple()
        else:
            stored_tuple = (0.0, 0.0, 0.0, 0.0)
        parent = node.parent_page_id if node.parent_page_id is not None else _NO_PARENT

        image = bytearray(
            _PAGE_HEADER.pack(node.level, count, parent, flags, *stored_tuple)
        )
        if isinstance(node, PackedNode) and _LITTLE_ENDIAN and _ARRAY_U32_OK:
            image += node.coords.tobytes()
            image += node.children.tobytes()
        else:
            coords: List[float] = []
            children: List[int] = []
            for entry in node.entries:
                coords.extend(entry.rect.as_tuple())
                children.append(entry.child)
            image += struct.pack(f"<{4 * count}d", *coords)
            image += struct.pack(f"<{count}I", *children)
        return bytes(image)

    # -- decode ----------------------------------------------------------------
    def decode(self, page_id: int, data: bytes) -> Node:
        if not isinstance(data, (bytes, bytearray)):
            raise SerializationError(
                f"page {page_id} holds {type(data).__name__}, not a binary image"
            )
        if len(data) < _PAGE_HEADER.size:
            raise SerializationError("page image shorter than the node header")
        level, count, parent, flags, sx0, sy0, sx1, sy1 = _PAGE_HEADER.unpack(
            data[: _PAGE_HEADER.size]
        )
        coords_start = _PAGE_HEADER.size
        coords_end = coords_start + count * 4 * _COORD_BYTES
        children_end = coords_end + count * _CHILD_BYTES
        if len(data) < children_end:
            raise SerializationError("truncated entry blocks in page image")
        parent_page = None if parent == _NO_PARENT else parent

        node: Node
        if self.node_layout == "packed":
            packed = PackedNode(page_id=page_id, level=level, parent_page_id=parent_page)
            packed.coords.frombytes(data[coords_start:coords_end])
            if _ARRAY_U32_OK:
                packed.children.frombytes(data[coords_end:children_end])
            else:
                packed.children.extend(
                    struct.unpack(f"<{count}I", data[coords_end:children_end])
                )
            if not _LITTLE_ENDIAN:
                packed.coords.byteswap()
                if _ARRAY_U32_OK:
                    packed.children.byteswap()
            node = packed
        else:
            values = struct.unpack(f"<{4 * count}d", data[coords_start:coords_end])
            children = struct.unpack(f"<{count}I", data[coords_end:children_end])
            entries = [
                Entry(
                    Rect._raw(
                        values[base], values[base + 1], values[base + 2], values[base + 3]
                    ),
                    child,
                )
                for base, child in zip(range(0, 4 * count, 4), children)
            ]
            node = make_node(
                "object",
                page_id=page_id,
                level=level,
                entries=entries,
                parent_page_id=parent_page,
            )
        if flags & _FLAG_HAS_STORED_MBR:
            node.stored_mbr = Rect._raw(sx0, sy0, sx1, sy1)
        return node
