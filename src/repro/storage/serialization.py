"""Binary node serialization.

The simulated disk stores node objects directly (serialising on the hot path
would only burn CPU without changing the I/O counts the paper measures), but
the page-size model in :class:`~repro.storage.sizing.PageLayout` makes claims
about how many entries fit in a page.  This module provides an actual binary
codec for nodes so those claims can be checked: a node at its configured
capacity must serialise to at most ``page_size`` bytes, and a round trip must
preserve the node exactly.

The format mirrors the paper's node layout:

* header: level (2 bytes), entry count (2 bytes), parent pointer (4 bytes,
  ``0xFFFFFFFF`` when absent), flags (4 bytes reserved), stored-MBR marker
  and rectangle (1 + 16 bytes) — rounded up into
  :attr:`~repro.storage.sizing.PageLayout.header_size` bytes when smaller;
* entries: four 32-bit float coordinates plus one 32-bit unsigned child id /
  object id per entry, matching ``PageLayout.entry_size``.

The codec is also what an on-disk deployment of this library would use, so it
lives in the storage package rather than in the tests.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.storage.sizing import PageLayout

_NO_PARENT = 0xFFFFFFFF
_HEADER_STRUCT = struct.Struct("<HHIB4f")  # level, count, parent, flags, stored mbr
_ENTRY_STRUCT = struct.Struct("<4fI")      # xmin, ymin, xmax, ymax, child

_FLAG_HAS_STORED_MBR = 0x01


class SerializationError(ValueError):
    """Raised when a node cannot be encoded within its page."""


def serialized_size(node: Node, layout: Optional[PageLayout] = None) -> int:
    """Number of bytes :func:`serialize_node` will produce for *node*."""
    layout = layout if layout is not None else PageLayout()
    header = max(_HEADER_STRUCT.size, layout.header_size)
    return header + len(node.entries) * _ENTRY_STRUCT.size


def serialize_node(node: Node, layout: Optional[PageLayout] = None) -> bytes:
    """Encode *node* into a page image.

    Raises :class:`SerializationError` when the encoding exceeds the layout's
    page size — which would mean the fan-out model over-promised.
    """
    layout = layout if layout is not None else PageLayout()
    flags = 0
    stored = node.stored_mbr
    if stored is not None:
        flags |= _FLAG_HAS_STORED_MBR
        stored_tuple = stored.as_tuple()
    else:
        stored_tuple = (0.0, 0.0, 0.0, 0.0)

    parent = node.parent_page_id if node.parent_page_id is not None else _NO_PARENT
    header = _HEADER_STRUCT.pack(
        node.level, len(node.entries), parent, flags, *stored_tuple
    )
    header = header.ljust(max(_HEADER_STRUCT.size, layout.header_size), b"\x00")

    body = bytearray(header)
    for entry in node.entries:
        body += _ENTRY_STRUCT.pack(*entry.rect.as_tuple(), entry.child)

    if len(body) > layout.page_size:
        raise SerializationError(
            f"node {node.page_id} with {len(node.entries)} entries needs "
            f"{len(body)} bytes, page size is {layout.page_size}"
        )
    return bytes(body)


def deserialize_node(page_id: int, data: bytes, layout: Optional[PageLayout] = None) -> Node:
    """Decode a page image produced by :func:`serialize_node`."""
    layout = layout if layout is not None else PageLayout()
    header_size = max(_HEADER_STRUCT.size, layout.header_size)
    if len(data) < header_size:
        raise SerializationError("page image shorter than the node header")
    level, count, parent, flags, sx0, sy0, sx1, sy1 = _HEADER_STRUCT.unpack(
        data[: _HEADER_STRUCT.size]
    )

    entries = []
    offset = header_size
    for _ in range(count):
        chunk = data[offset : offset + _ENTRY_STRUCT.size]
        if len(chunk) < _ENTRY_STRUCT.size:
            raise SerializationError("truncated entry in page image")
        xmin, ymin, xmax, ymax, child = _ENTRY_STRUCT.unpack(chunk)
        entries.append(Entry(Rect(xmin, ymin, xmax, ymax), child))
        offset += _ENTRY_STRUCT.size

    node = Node(
        page_id=page_id,
        level=level,
        entries=entries,
        parent_page_id=None if parent == _NO_PARENT else parent,
    )
    if flags & _FLAG_HAS_STORED_MBR:
        node.stored_mbr = Rect(sx0, sy0, sx1, sy1)
    return node
