"""Simulated paged disk.

The paper's implementation stores R-tree nodes on fixed-size disk pages
(1 KB in the experiments) and reports the number of pages read and written.
:class:`DiskManager` recreates that storage layer in memory: it allocates
page identifiers, stores one Python object per page, and counts every
physical access in a shared :class:`~repro.storage.stats.IOStatistics`.

The disk never caches — caching is the buffer pool's job — so "one call to
:meth:`DiskManager.read_page`" is exactly "one physical read" in the metrics.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

from repro.storage.stats import IOStatistics


class PageNotFoundError(KeyError):
    """Raised when a page identifier does not exist on the simulated disk."""


class DiskManager:
    """An in-memory page store with physical-I/O accounting.

    Parameters
    ----------
    page_size:
        Size of a page in bytes.  The disk manager does not serialise the
        stored objects; the page size is carried so that the
        :class:`~repro.storage.sizing.PageLayout` and the reporting layer can
        derive fan-outs and database sizes from it (the paper uses 1024-byte
        pages).
    stats:
        Shared I/O counters.  A fresh instance is created when omitted.
    """

    def __init__(self, page_size: int = 1024, stats: Optional[IOStatistics] = None) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        #: Real wall-clock seconds charged per physical page transfer
        #: (0.0 = pure counting, the default).  The parallel-scaling
        #: benchmark sets this to emulate an actual device: physical I/O
        #: then costs wall time, which independent shard workers overlap.
        self.io_latency_s: float = 0.0
        self._pages: Dict[int, Any] = {}
        self._next_page_id = 0
        self._free_list: List[int] = []

    # -- allocation -------------------------------------------------------
    def allocate_page(self) -> int:
        """Reserve and return a new page identifier.

        Identifiers from deallocated pages are recycled first, mirroring a
        free-space map, so long update runs do not grow the address space
        without bound.
        """
        if self._free_list:
            page_id = self._free_list.pop()
        else:
            page_id = self._next_page_id
            self._next_page_id += 1
        self._pages[page_id] = None
        return page_id

    def deallocate_page(self, page_id: int) -> None:
        """Release *page_id* back to the free list."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        del self._pages[page_id]
        self._free_list.append(page_id)

    # -- physical access ----------------------------------------------------
    def read_page(self, page_id: int) -> Any:
        """Read the object stored on *page_id* (counted as one physical read)."""
        try:
            payload = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        self.stats.physical_reads += 1
        if self.io_latency_s > 0.0:
            time.sleep(self.io_latency_s)
        return payload

    def write_page(self, page_id: int, payload: Any) -> None:
        """Write *payload* to *page_id* (counted as one physical write)."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        self.stats.physical_writes += 1
        if self.io_latency_s > 0.0:
            time.sleep(self.io_latency_s)
        self._pages[page_id] = payload

    # -- inspection (not counted as I/O) --------------------------------------
    def peek(self, page_id: int) -> Any:
        """Return the stored object without counting I/O.

        Only test code and structural validators use this; index algorithms
        must go through the buffer pool.
        """
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None

    def contains(self, page_id: int) -> bool:
        return page_id in self._pages

    def __contains__(self, page_id: int) -> bool:
        return self.contains(page_id)

    def __len__(self) -> int:
        """Number of allocated pages (the database size in pages)."""
        return len(self._pages)

    def page_ids(self) -> Iterator[int]:
        """Iterate over all allocated page identifiers (no I/O charged)."""
        return iter(list(self._pages.keys()))

    @property
    def database_size_bytes(self) -> int:
        """Total size of the allocated pages in bytes."""
        return len(self._pages) * self.page_size
