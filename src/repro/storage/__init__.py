"""Paged-storage substrate.

The paper measures update and query cost in **disk I/Os** on a paged store
with an LRU buffer pool sized as a percentage of the database size.  This
package recreates that substrate:

* :class:`~repro.storage.stats.IOStatistics` — counters for logical and
  physical reads/writes, buffer hits and dirty evictions.
* :class:`~repro.storage.disk.DiskManager` — an in-memory simulated disk of
  fixed-size pages.  Every physical access is counted.
* :class:`~repro.storage.buffer.BufferPool` — an LRU buffer pool in front of
  the disk manager.  All R-tree node accesses go through the pool so that the
  physical-I/O counters reflect exactly what the paper measures.
* :class:`~repro.storage.sizing.PageLayout` — translates a page size (the
  paper uses 1 KB pages) into node fan-out for leaf and internal nodes.
"""

from repro.storage.buffer import BufferPool, ClientIOCounters
from repro.storage.disk import DiskManager, PageNotFoundError
from repro.storage.sizing import PageLayout
from repro.storage.stats import IOStatistics

__all__ = [
    "BufferPool",
    "ClientIOCounters",
    "DiskManager",
    "PageNotFoundError",
    "PageLayout",
    "IOStatistics",
]
