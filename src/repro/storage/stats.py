"""I/O accounting.

The experiments in the paper report *average disk I/O per operation*; this
module provides the counters all other components write into.  A single
:class:`IOStatistics` instance is shared by the disk manager, the buffer
pool, and the secondary hash index so that one object tells the whole story
of an experiment run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable


@dataclass
class IOStatistics:
    """Mutable set of I/O counters.

    Attributes
    ----------
    physical_reads / physical_writes:
        Page transfers that actually hit the simulated disk.  These are the
        numbers the paper's "Avg Disk I/O" axes report.
    logical_reads / logical_writes:
        Page requests issued by the index code, regardless of whether the
        buffer pool absorbed them.
    buffer_hits:
        Logical reads satisfied from the buffer pool.
    dirty_evictions:
        Dirty pages written back to disk because they were evicted (these are
        also counted in ``physical_writes``).
    hash_index_reads:
        Probes of the secondary object-ID index that were charged as disk
        reads (the paper's cost model charges one I/O per probe).
    over_capacity_peak:
        High-water mark of frames a buffer pool has held *beyond* its
        configured capacity.  Nonzero only when every frame was pinned at
        admission time (the pool runs over rather than deadlock); the pool
        shrinks back as pins release.  Aggregations (:meth:`merge`) take
        the maximum — a peak is a level, not a flow.
    """

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    logical_writes: int = 0
    buffer_hits: int = 0
    dirty_evictions: int = 0
    hash_index_reads: int = 0
    over_capacity_peak: int = 0
    # Optional labelled counters for ad-hoc instrumentation (e.g. per update
    # kind).  Not part of the core metrics but handy in tests and ablations.
    extra: Dict[str, int] = field(default_factory=dict)

    # -- derived metrics ---------------------------------------------------
    @property
    def total_physical_io(self) -> int:
        """Physical reads + physical writes + charged hash-index probes."""
        return self.physical_reads + self.physical_writes + self.hash_index_reads

    @property
    def total_logical_io(self) -> int:
        return self.logical_reads + self.logical_writes

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio over logical reads (0.0 when nothing was read)."""
        if self.logical_reads == 0:
            return 0.0
        return self.buffer_hits / self.logical_reads

    def total(self) -> int:
        """Alias of :attr:`total_physical_io` as a callable convenience."""
        return self.total_physical_io

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "IOStatistics") -> "IOStatistics":
        """Add *other*'s counters into this instance in place; returns ``self``.

        This is how cross-shard and per-client counters aggregate: a sharded
        index merges its shards' snapshots into one set of counters instead
        of summing each field by hand.
        """
        self.physical_reads += other.physical_reads
        self.physical_writes += other.physical_writes
        self.logical_reads += other.logical_reads
        self.logical_writes += other.logical_writes
        self.buffer_hits += other.buffer_hits
        self.dirty_evictions += other.dirty_evictions
        self.hash_index_reads += other.hash_index_reads
        self.over_capacity_peak = max(self.over_capacity_peak, other.over_capacity_peak)
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
        return self

    def __add__(self, other: "IOStatistics") -> "IOStatistics":
        """A new instance holding the element-wise sum of two counter sets."""
        if not isinstance(other, IOStatistics):
            return NotImplemented
        return self.snapshot().merge(other)

    @classmethod
    def sum(cls, parts: "Iterable[IOStatistics]") -> "IOStatistics":
        """Merge an iterable of counter sets into one fresh instance."""
        combined = cls()
        for part in parts:
            combined.merge(part)
        return combined

    # -- bookkeeping ---------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment the labelled counter *name* in :attr:`extra`."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def snapshot(self) -> "IOStatistics":
        """Return an independent copy of the current counter values."""
        copy = IOStatistics(
            physical_reads=self.physical_reads,
            physical_writes=self.physical_writes,
            logical_reads=self.logical_reads,
            logical_writes=self.logical_writes,
            buffer_hits=self.buffer_hits,
            dirty_evictions=self.dirty_evictions,
            hash_index_reads=self.hash_index_reads,
            over_capacity_peak=self.over_capacity_peak,
        )
        copy.extra = dict(self.extra)
        return copy

    def delta_since(self, earlier: "IOStatistics") -> "IOStatistics":
        """Return the difference between this snapshot and an *earlier* one."""
        delta = IOStatistics(
            physical_reads=self.physical_reads - earlier.physical_reads,
            physical_writes=self.physical_writes - earlier.physical_writes,
            logical_reads=self.logical_reads - earlier.logical_reads,
            logical_writes=self.logical_writes - earlier.logical_writes,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
            dirty_evictions=self.dirty_evictions - earlier.dirty_evictions,
            hash_index_reads=self.hash_index_reads - earlier.hash_index_reads,
            # A peak is a level, not a flow: the delta reports how far the
            # high-water mark rose over the interval (never negative).
            over_capacity_peak=max(
                0, self.over_capacity_peak - earlier.over_capacity_peak
            ),
        )
        keys = set(self.extra) | set(earlier.extra)
        delta.extra = {
            key: self.extra.get(key, 0) - earlier.extra.get(key, 0) for key in keys
        }
        return delta

    def reset(self) -> None:
        """Zero every counter in place."""
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.logical_writes = 0
        self.buffer_hits = 0
        self.dirty_evictions = 0
        self.hash_index_reads = 0
        self.over_capacity_peak = 0
        self.extra.clear()

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view used by the benchmark reporting layer."""
        result = {
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "logical_reads": self.logical_reads,
            "logical_writes": self.logical_writes,
            "buffer_hits": self.buffer_hits,
            "dirty_evictions": self.dirty_evictions,
            "hash_index_reads": self.hash_index_reads,
            "over_capacity_peak": self.over_capacity_peak,
            "total_physical_io": self.total_physical_io,
        }
        result.update(self.extra)
        return result
