"""Structural validation of an R-tree.

The invariants checked here are the ones every R-tree variant must preserve
and — crucially for this reproduction — the ones the paper's bottom-up
strategies promise not to break ("the techniques presented can be easily
integrated into R-trees as they preserve the index structure"):

1. every entry of an internal node points to an existing node one level
   below,
2. the MBR stored in a parent entry covers the MBR of the child it points
   to,
3. every leaf is at level 0 and every root-to-leaf path has the same length,
4. no node exceeds its capacity,
5. non-root nodes satisfy the minimum fill (optional: bottom-up shifting and
   bulk loading keep it, but a tree configured without reinsertion may
   legitimately leave sparse nodes),
6. object ids are unique across leaves,
7. when parent pointers are stored, every leaf's pointer names its actual
   parent.

Validation uses :meth:`RTree.peek_node`, so it never perturbs I/O counters —
tests call it between measured phases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.rtree.node import Node
from repro.rtree.tree import RTree


class ValidationError(AssertionError):
    """Raised when an R-tree structural invariant is violated."""


def validate_tree(
    tree: RTree,
    check_min_fill: bool = False,
    expected_size: Optional[int] = None,
) -> Dict[str, int]:
    """Check structural invariants; return summary statistics.

    Parameters
    ----------
    tree:
        The tree to validate.
    check_min_fill:
        Also enforce the minimum-fill invariant on non-root nodes.
    expected_size:
        When given, also verify the number of indexed objects.

    Returns
    -------
    dict
        ``{"objects": ..., "leaves": ..., "internals": ..., "height": ...}``.

    Raises
    ------
    ValidationError
        If any invariant does not hold.
    """
    root = tree.peek_node(tree.root_page_id)
    seen_oids: Set[int] = set()
    seen_pages: Set[int] = set()
    stats = {"objects": 0, "leaves": 0, "internals": 0, "height": tree.height}

    leaf_levels: List[int] = []
    _validate_node(
        tree,
        node=root,
        expected_level=root.level,
        parent_page_id=None,
        is_root=True,
        check_min_fill=check_min_fill,
        seen_oids=seen_oids,
        seen_pages=seen_pages,
        stats=stats,
        depth=0,
        leaf_depths=leaf_levels,
    )

    if root.level != tree.height - 1:
        raise ValidationError(
            f"tree.height is {tree.height} but the root is at level {root.level}"
        )
    if leaf_levels and len(set(leaf_levels)) != 1:
        raise ValidationError(f"leaves found at different depths: {sorted(set(leaf_levels))}")
    if expected_size is not None and stats["objects"] != expected_size:
        raise ValidationError(
            f"tree contains {stats['objects']} objects, expected {expected_size}"
        )
    if tree.size != stats["objects"]:
        raise ValidationError(
            f"tree.size is {tree.size} but {stats['objects']} objects were found"
        )
    return stats


def _validate_node(
    tree: RTree,
    node: Node,
    expected_level: int,
    parent_page_id: Optional[int],
    is_root: bool,
    check_min_fill: bool,
    seen_oids: Set[int],
    seen_pages: Set[int],
    stats: Dict[str, int],
    depth: int,
    leaf_depths: List[int],
) -> None:
    if node.page_id in seen_pages:
        raise ValidationError(f"node {node.page_id} is reachable twice")
    seen_pages.add(node.page_id)

    if node.level != expected_level:
        raise ValidationError(
            f"node {node.page_id} has level {node.level}, expected {expected_level}"
        )

    capacity = tree.capacity_for_level(node.level)
    if len(node.entries) > capacity:
        raise ValidationError(
            f"node {node.page_id} holds {len(node.entries)} entries, capacity {capacity}"
        )
    if check_min_fill and not is_root:
        minimum = tree.min_entries_for_level(node.level)
        if len(node.entries) < minimum:
            raise ValidationError(
                f"node {node.page_id} holds {len(node.entries)} entries, minimum {minimum}"
            )

    if node.is_leaf:
        stats["leaves"] += 1
        leaf_depths.append(depth)
        if tree.store_parent_pointers and parent_page_id is not None:
            if node.parent_page_id != parent_page_id:
                raise ValidationError(
                    f"leaf {node.page_id} has parent pointer {node.parent_page_id}, "
                    f"actual parent {parent_page_id}"
                )
        for entry in node.entries:
            if entry.child in seen_oids:
                raise ValidationError(f"object id {entry.child} appears in two leaves")
            seen_oids.add(entry.child)
            stats["objects"] += 1
        return

    stats["internals"] += 1
    if not node.entries and not is_root:
        raise ValidationError(f"internal node {node.page_id} has no entries")
    node_mbr = node.mbr() if node.entries else None
    for entry in node.entries:
        child = tree.peek_node(entry.child)
        child_mbr = child.mbr() if child.entries else None
        if child_mbr is not None and not entry.rect.contains_rect(child_mbr):
            raise ValidationError(
                f"parent entry MBR {entry.rect} in node {node.page_id} does not cover "
                f"child {child.page_id} MBR {child_mbr}"
            )
        if node_mbr is not None and not node_mbr.contains_rect(entry.rect):
            raise ValidationError(
                f"node {node.page_id} MBR does not cover its own entry for child {entry.child}"
            )
        _validate_node(
            tree,
            node=child,
            expected_level=node.level - 1,
            parent_page_id=node.page_id,
            is_root=False,
            check_min_fill=check_min_fill,
            seen_oids=seen_oids,
            seen_pages=seen_pages,
            stats=stats,
            depth=depth + 1,
            leaf_depths=leaf_depths,
        )
