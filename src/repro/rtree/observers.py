"""Observer protocol for R-tree structural events.

The bottom-up update strategies rely on auxiliary structures that must track
the R-tree as it changes:

* the **secondary object-ID index** (hash table: object id -> leaf page id)
  used by LBU and GBU to reach a leaf directly, and
* the **main-memory summary structure** (direct access table over internal
  nodes + leaf-fullness bit vector) used by GBU.

Rather than scattering maintenance calls throughout the tree and the update
strategies, the tree emits events whenever a node is created, written, or
deleted, and whenever the root changes.  Auxiliary structures implement
:class:`TreeObserver` and register themselves with the tree; they then stay
consistent regardless of which code path (top-down insert, bottom-up shift,
bulk load, condense, ...) modified the index.

Observer callbacks are main-memory work: they never touch the buffer pool or
the disk and therefore never affect the I/O metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtree.node import Node


class TreeObserver:
    """Base class with no-op handlers for every tree event.

    Subclasses override only what they need.
    """

    def on_node_created(self, node: "Node") -> None:
        """A node was allocated (it may still be empty)."""

    def on_node_written(self, node: "Node") -> None:
        """A node was written to its page (entries and/or MBR may have changed)."""

    def on_node_deleted(self, node: "Node") -> None:
        """A node was removed from the tree and its page freed."""

    def on_root_changed(self, root_page_id: int, height: int) -> None:
        """The root page id and/or tree height changed."""

    def on_object_removed(self, oid: int) -> None:
        """An object was removed from the index entirely (not re-inserted)."""


class ObserverList:
    """A tiny multiplexer that forwards events to all registered observers."""

    def __init__(self) -> None:
        self._observers: List[TreeObserver] = []

    def register(self, observer: TreeObserver) -> None:
        if observer not in self._observers:
            self._observers.append(observer)

    def unregister(self, observer: TreeObserver) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def __iter__(self):
        return iter(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    # -- event fan-out ------------------------------------------------------
    def node_created(self, node: "Node") -> None:
        for observer in self._observers:
            observer.on_node_created(node)

    def node_written(self, node: "Node") -> None:
        for observer in self._observers:
            observer.on_node_written(node)

    def node_deleted(self, node: "Node") -> None:
        for observer in self._observers:
            observer.on_node_deleted(node)

    def root_changed(self, root_page_id: int, height: int) -> None:
        for observer in self._observers:
            observer.on_root_changed(root_page_id, height)

    def object_removed(self, oid: int) -> None:
        for observer in self._observers:
            observer.on_object_removed(oid)
