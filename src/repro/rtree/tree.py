"""The disk-based R-tree.

:class:`RTree` implements the index the paper's three update strategies
operate on.  Every node access goes through the buffer pool so that physical
I/O is counted exactly the way the paper measures it.

The public surface is intentionally close to the paper's description:

* :meth:`RTree.insert` / :meth:`RTree.delete` — the classic top-down
  operations (ChooseLeaf, AdjustTree, node splits, and Guttman's
  CondenseTree with re-insertion of orphaned entries).
* :meth:`RTree.range_query` — window queries, the paper's query workload.
* :meth:`RTree.knn` — a best-first nearest-neighbour extension (not used by
  the paper, provided for library completeness).
* :meth:`RTree.insert_at_subtree` — a standard insert that starts its descent
  at an arbitrary ancestor node instead of the root.  This is the primitive
  GBU's Algorithm 2 uses after ``FindParent`` located the lowest ancestor
  whose MBR covers the object's new position.
* low-level node accessors (:meth:`read_node`, :meth:`write_node`, ...) used
  by the bottom-up strategies, which by design manipulate leaves and their
  siblings directly.
* group primitives (:meth:`remove_entries`, :meth:`add_entries`,
  :meth:`adjust_upward`) used by the batch update engine
  (:mod:`repro.update.batch`) to mutate a leaf and its siblings in bulk and
  then fix every affected ancestor MBR in one deferred pass.

Levels are numbered from the leaves (leaf level = 0, root level =
``height - 1``), matching the way the paper's Algorithm 3 ascends the tree.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node, make_node
from repro.rtree.observers import ObserverList, TreeObserver
from repro.rtree.split import QuadraticSplit, SplitStrategy
from repro.storage.buffer import BufferPool
from repro.storage.serialization import NodeCodec
from repro.storage.sizing import PageLayout


class RTree:
    """A paged R-tree with pluggable split strategy and observer support.

    Parameters
    ----------
    buffer:
        Buffer pool through which every node read/write flows.
    layout:
        Page layout used to derive leaf/internal capacities.
    split_strategy:
        Node split algorithm; Guttman's quadratic split by default.
    store_parent_pointers:
        When ``True`` leaf nodes carry a parent pointer (the LBU
        configuration, Section 3.1).  This costs one entry slot of leaf
        capacity and forces extra leaf writes whenever leaves change parents.
    reinsert_on_underflow:
        When ``True`` (default) deletion uses Guttman's CondenseTree:
        underflowing nodes are dissolved and their entries re-inserted.
        When ``False`` underflowing nodes are simply left sparse.
    node_layout:
        Physical in-memory node representation: ``"object"`` (a list of
        :class:`Entry` objects, the default) or ``"packed"`` (flat columnar
        coordinate/id buffers swept by the batch kernels).  Both layouts
        produce identical answers and identical I/O counts.
    page_codec:
        When given, pages hold fixed-format binary images instead of node
        objects: every :meth:`write_node` encodes and every
        :meth:`read_node`/:meth:`peek_node` decodes through the codec.  The
        default (``None``) keeps the simulated-disk object store, whose I/O
        counts the paper figures are calibrated against (the mapping is 1:1
        either way — the codec changes what a page holds, never how many
        pages are touched).
    """

    def __init__(
        self,
        buffer: BufferPool,
        layout: Optional[PageLayout] = None,
        split_strategy: Optional[SplitStrategy] = None,
        store_parent_pointers: bool = False,
        reinsert_on_underflow: bool = True,
        node_layout: str = "object",
        page_codec: Optional[NodeCodec] = None,
    ) -> None:
        self.buffer = buffer
        self.disk = buffer.disk
        self.layout = layout if layout is not None else PageLayout()
        self.split_strategy = split_strategy if split_strategy is not None else QuadraticSplit()
        self.store_parent_pointers = store_parent_pointers
        self.reinsert_on_underflow = reinsert_on_underflow
        self.node_layout = node_layout
        self.page_codec = page_codec

        self.leaf_capacity = self.layout.leaf_capacity(
            with_parent_pointer=store_parent_pointers
        )
        self.internal_capacity = self.layout.internal_capacity
        self.min_leaf_entries = self.layout.min_entries(self.leaf_capacity)
        self.min_internal_entries = self.layout.min_entries(self.internal_capacity)

        self.observers = ObserverList()
        self.size = 0  # number of indexed objects
        self.height = 1

        root = make_node(self.node_layout, page_id=self.disk.allocate_page(), level=0)
        self.root_page_id = root.page_id
        self.observers.node_created(root)
        self.write_node(root)
        self.observers.root_changed(self.root_page_id, self.height)

    # ------------------------------------------------------------------
    # Observer management
    # ------------------------------------------------------------------
    def register_observer(self, observer: TreeObserver) -> None:
        """Attach *observer*; it will receive every subsequent tree event."""
        self.observers.register(observer)

    def unregister_observer(self, observer: TreeObserver) -> None:
        self.observers.unregister(observer)

    # ------------------------------------------------------------------
    # Node I/O
    # ------------------------------------------------------------------
    def read_node(self, page_id: int) -> Node:
        """Read the node stored on *page_id* through the buffer pool."""
        payload = self.buffer.read(page_id)
        if payload is None:
            raise LookupError(f"page {page_id} does not hold an R-tree node")
        if self.page_codec is not None:
            return self.page_codec.decode(page_id, payload)
        return payload

    def write_node(self, node: Node) -> None:
        """Write *node* back to its page and notify observers."""
        if self.page_codec is not None:
            self.buffer.write(node.page_id, self.page_codec.encode(node))
        else:
            self.buffer.write(node.page_id, node)
        self.observers.node_written(node)

    def peek_node(self, page_id: int) -> Node:
        """Read a node without charging I/O (planning, tests and validators).

        Reads through the buffer pool so write-back frames that have not
        reached the disk yet are seen — lock-scope prediction runs against
        the live tree, not the possibly stale on-disk image.
        """
        payload = self.buffer.peek(page_id)
        if self.page_codec is not None:
            return self.page_codec.decode(page_id, payload)
        return payload

    def encode_page_payload(self, node: Node) -> object:
        """What a page holds for *node*: a binary image or the node itself.

        Used by checkpoint restore, which writes pages directly to the disk
        manager and must match the store the tree is configured with.
        """
        if self.page_codec is not None:
            return self.page_codec.encode(node)
        return node

    def _allocate_node(self, level: int) -> Node:
        node = make_node(self.node_layout, page_id=self.disk.allocate_page(), level=level)
        self.observers.node_created(node)
        return node

    def _free_node(self, node: Node) -> None:
        self.buffer.discard(node.page_id)
        self.disk.deallocate_page(node.page_id)
        self.observers.node_deleted(node)

    # ------------------------------------------------------------------
    # Capacities
    # ------------------------------------------------------------------
    def capacity_for_level(self, level: int) -> int:
        return self.leaf_capacity if level == 0 else self.internal_capacity

    def min_entries_for_level(self, level: int) -> int:
        return self.min_leaf_entries if level == 0 else self.min_internal_entries

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, oid: int, location: Union[Point, Rect]) -> None:
        """Insert object *oid* at *location* using the standard top-down path."""
        rect = location if isinstance(location, Rect) else Rect.from_point(location)
        self._insert_entry(Entry(rect, oid), target_level=0)
        self.size += 1

    def insert_at_subtree(
        self,
        oid: int,
        location: Union[Point, Rect],
        anchor_page_id: int,
        ancestor_path: Sequence[int] = (),
    ) -> None:
        """Insert *oid* by descending from *anchor_page_id* instead of the root.

        *ancestor_path* lists the page ids strictly above the anchor, ordered
        root first; it is consulted (and the corresponding nodes are read,
        with I/O charged) only if a node split propagates above the anchor.
        GBU obtains both the anchor and the path from the in-memory summary
        structure, so the common case costs no extra I/O.
        """
        rect = location if isinstance(location, Rect) else Rect.from_point(location)
        self._insert_entry(
            Entry(rect, oid),
            target_level=0,
            anchor_page_id=anchor_page_id,
            ancestor_path=list(ancestor_path),
        )
        self.size += 1

    def _insert_entry(
        self,
        entry: Entry,
        target_level: int,
        anchor_page_id: Optional[int] = None,
        ancestor_path: Optional[List[int]] = None,
    ) -> None:
        """Insert *entry* at *target_level*, splitting and adjusting as needed."""
        start_page = anchor_page_id if anchor_page_id is not None else self.root_page_id
        upper_path = list(ancestor_path or [])

        path = self._choose_path(entry.rect, target_level, start_page)
        target = path[-1]
        target.add_entry(entry)

        # An entry inserted at level 1 re-parents the leaf it points to (this
        # happens when CondenseTree re-inserts the children of a dissolved
        # level-1 node); with the LBU configuration that leaf's parent pointer
        # must be rewritten — another instance of LBU's maintenance overhead.
        if self.store_parent_pointers and target.level == 1 and target_level == 1:
            child = self.read_node(entry.child)
            if child.parent_page_id != target.page_id:
                child.parent_page_id = target.page_id
                self.write_node(child)

        self._handle_overflow_and_adjust(path, upper_path, enlarged_rect=entry.rect)

    def _choose_path(
        self, rect: Rect, target_level: int, start_page_id: int
    ) -> List[Node]:
        """Descend from *start_page_id* to *target_level* choosing subtrees.

        Returns the nodes read along the way, topmost first.  Every node on
        the path is read through the buffer (and therefore charged).
        """
        node = self.read_node(start_page_id)
        if node.level < target_level:
            raise ValueError(
                f"cannot descend to level {target_level} from a node at level {node.level}"
            )
        path = [node]
        while node.level > target_level:
            node = self.read_node(node.choose_subtree_child(rect))
            path.append(node)
        return path

    def _handle_overflow_and_adjust(
        self,
        path: List[Node],
        upper_path: List[int],
        enlarged_rect: Optional[Rect] = None,
    ) -> None:
        """AdjustTree: propagate splits and MBR changes from ``path[-1]`` upwards.

        *path* holds the nodes read during the descent (topmost first);
        *upper_path* holds page ids above ``path[0]`` that are read lazily —
        and only when a split or MBR enlargement actually has to propagate
        that far.  Nodes are written back only when their content changed, so
        a purely local insert costs exactly the writes the paper's cost model
        charges.
        """
        modified = {path[-1].page_id}  # the target node always changed
        split_sibling: Optional[Node] = None
        index = len(path) - 1
        while index >= 0:
            node = path[index]
            capacity = self.capacity_for_level(node.level)

            if len(node) > capacity:
                split_sibling = self._split_node(node)
            else:
                if node.page_id in modified:
                    # The parent entry below is refreshed to the tight MBR,
                    # voiding any ε-slack; clear it *before* the write so the
                    # page image (binary page store) matches the object's
                    # final state.  Semantically a no-op when the parent entry
                    # already equals the tight bound (the slack was inside it).
                    if len(node) and (
                        index > 0 or upper_path or node.page_id != self.root_page_id
                    ):
                        node.stored_mbr = None
                    self.write_node(node)
                split_sibling = None

            node_changed = node.page_id in modified or split_sibling is not None
            if not node_changed:
                break  # nothing left to propagate

            parent = path[index - 1] if index > 0 else None
            if parent is None and upper_path:
                parent_page = upper_path.pop()
                parent = self.read_node(parent_page)
                path.insert(0, parent)
                index += 1  # keep `index - 1` pointing at the freshly added parent

            if parent is None:
                # `node` is the root of the whole tree.
                if split_sibling is not None:
                    self._grow_root(node, split_sibling)
                break

            parent_entry = parent.find_entry(node.page_id)
            if parent_entry is None:
                raise LookupError(
                    f"node {node.page_id} not found in parent {parent.page_id}"
                )
            new_mbr = node.mbr()
            if parent_entry.rect != new_mbr:
                parent_entry.rect = new_mbr
                modified.add(parent.page_id)
            if split_sibling is not None:
                parent.add_entry(Entry(split_sibling.mbr(), split_sibling.page_id))
                modified.add(parent.page_id)
                self._maintain_parent_pointers(parent, [split_sibling])
            index -= 1

    def _split_node(self, node: Node) -> Node:
        """Split an overflowing *node*; return the newly created sibling."""
        min_entries = self.min_entries_for_level(node.level)
        group_a, group_b = self.split_strategy.split(
            node.materialized_entries(), min_entries
        )
        sibling = self._allocate_node(node.level)
        node.entries = list(group_a)
        sibling.entries = list(group_b)
        sibling.parent_page_id = node.parent_page_id
        node.stored_mbr = None  # entries were redistributed: any ε-slack is void
        self.write_node(node)
        self.write_node(sibling)
        # When leaves carry parent pointers, the children that moved into the
        # sibling of a level-1 node must be rewritten to point at it.
        if self.store_parent_pointers and node.level == 1:
            self._rewrite_children_parent_pointers(sibling)
        return sibling

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        """Create a new root above *old_root* and *sibling*."""
        new_root = self._allocate_node(old_root.level + 1)
        new_root.entries = [
            Entry(old_root.mbr(), old_root.page_id),
            Entry(sibling.mbr(), sibling.page_id),
        ]
        self.write_node(new_root)
        self.root_page_id = new_root.page_id
        self.height = new_root.level + 1
        self._maintain_parent_pointers(new_root, [old_root, sibling])
        self.observers.root_changed(self.root_page_id, self.height)

    def _maintain_parent_pointers(self, parent: Node, children: Iterable[Node]) -> None:
        """Set the parent pointer of leaf *children* (LBU configuration only)."""
        if not self.store_parent_pointers or parent.level != 1:
            return
        for child in children:
            if child.parent_page_id != parent.page_id:
                child.parent_page_id = parent.page_id
                self.write_node(child)

    def _rewrite_children_parent_pointers(self, parent: Node) -> None:
        """Rewrite the parent pointer of every leaf child of *parent*.

        This models LBU's parent-pointer maintenance cost: after a level-1
        node splits, roughly half of its leaves now have a different parent
        and each of those leaves must be read and written back.
        """
        if not self.store_parent_pointers or parent.level != 1:
            return
        for child_page in parent.child_ids():
            child = self.read_node(child_page)
            if child.parent_page_id != parent.page_id:
                child.parent_page_id = parent.page_id
                self.write_node(child)

    # ------------------------------------------------------------------
    # Group primitives (batch update engine)
    # ------------------------------------------------------------------
    def remove_entries(self, node: Node, children: Iterable[int]) -> List[Entry]:
        """Remove several entries from an in-memory *node*; return them.

        This is a pure node mutation: no write is issued, no condensing
        happens, and :attr:`size` is untouched — the batch executor moves
        entries between leaves (size-neutral) and issues one deferred write
        per touched node.  The caller is responsible for keeping the node at
        or above its minimum fill.  Raises ``LookupError`` when any of
        *children* is absent or repeated, leaving the node unchanged in that
        case.
        """
        ids = list(children)
        if len(set(ids)) != len(ids):
            raise LookupError(f"duplicate entry ids in removal from node {node.page_id}")
        missing = [child for child in ids if node.find_entry(child) is None]
        if missing:
            raise LookupError(f"entries {missing} not found in node {node.page_id}")
        return [node.remove_entry(child) for child in ids]

    def add_entries(self, node: Node, entries: Sequence[Entry]) -> None:
        """Add several entries to an in-memory *node* (no write issued).

        Raises ``ValueError`` when the node would exceed its capacity; the
        node is left unchanged in that case.
        """
        capacity = self.capacity_for_level(node.level)
        if len(node.entries) + len(entries) > capacity:
            raise ValueError(
                f"adding {len(entries)} entries would overflow node "
                f"{node.page_id} (capacity {capacity}, has {len(node.entries)})"
            )
        for entry in entries:
            node.add_entry(entry)

    def find_path_to_leaf(self, leaf_page_id: int, hint: Rect) -> Optional[List[Node]]:
        """Root-to-leaf node path ending at *leaf_page_id* (reads charged).

        The descent follows entries intersecting *hint* — any rectangle
        known to lie inside the leaf's MBR, e.g. one member entry — exactly
        like the delete-side FindLeaf; level-1 nodes are matched by child
        page id, so no sibling leaf is ever read.  Returns ``None`` when
        the leaf is not reachable (it was dissolved since planning).  The
        returned path is what :meth:`_condense_tree`-style maintenance
        needs: root first, the leaf itself last.
        """

        def descend(node: Node, path: List[Node]) -> Optional[List[Node]]:
            path = path + [node]
            if node.is_leaf:
                return path if node.page_id == leaf_page_id else None
            if node.level == 1:
                if node.has_child(leaf_page_id):
                    return path + [self.read_node(leaf_page_id)]
                return None
            for child in node.intersecting_children(hint):
                result = descend(self.read_node(child), path)
                if result is not None:
                    return result
            return None

        return descend(self.read_node(self.root_page_id), [])

    def remove_group(self, path: List[Node], children: Iterable[int]) -> List[Entry]:
        """Remove several objects from the leaf at ``path[-1]`` and condense once.

        The bulk counterpart of repeated :meth:`delete_from_leaf` calls: the
        entries are taken out of the leaf in one pass, :attr:`size` and the
        object-removal observers are maintained per object, and a **single**
        CondenseTree pass handles the write-back, any underflow (surviving
        entries are re-inserted, the emptied node is dissolved) and the
        ancestor-MBR tightening — instead of one full condense per object.
        Returns the removed entries.  Used by the shard rebalancer, whose
        migrations drain whole leaves at a time.
        """
        leaf = path[-1]
        entries = self.remove_entries(leaf, children)
        self.size -= len(entries)
        for entry in entries:
            self.observers.object_removed(entry.child)
        self._condense_tree(path)
        return entries

    def insert_group(self, entries: Sequence[Entry]) -> None:
        """Bulk-insert co-located object entries (one descent per leaf-full).

        The group counterpart of repeated :meth:`insert` calls, used by the
        shard rebalancer to move whole leaf buckets between shards: one
        ChooseLeaf descent places as many entries as the chosen leaf has
        room for, the leaf is written once, and one AdjustTree pass
        propagates the enlargement — R-tree containment only requires the
        ancestors to cover the entries, so sharing the placement is legal
        and, for entries that travelled together from one source leaf,
        spatially reasonable.  A full leaf takes one entry anyway and lets
        the AdjustTree pass split it — the descent already paid for is
        reused instead of repeating ChooseLeaf from the root.
        """
        pending = list(entries)
        while pending:
            path = self._choose_path(pending[0].rect, 0, self.root_page_id)
            leaf = path[-1]
            room = self.leaf_capacity - len(leaf)
            if room <= 0:
                leaf.add_entry(pending.pop(0))
                self.size += 1
                self._handle_overflow_and_adjust(path, [])
                continue
            batch = pending[:room]
            del pending[:room]
            self.add_entries(leaf, batch)
            self.size += len(batch)
            self._handle_overflow_and_adjust(path, [])

    def adjust_upward(
        self,
        parent: Node,
        children: Sequence[Node],
        ancestor_path: Sequence[int] = (),
    ) -> bool:
        """One deferred ancestor-MBR adjustment pass for a batch group.

        Refreshes *parent*'s entry for every node in *children* to that
        child's :meth:`~repro.rtree.node.Node.effective_mbr` and writes the
        parent once if anything changed — instead of one parent read/write
        per update, the way the per-operation paths pay for it.

        When the refresh *enlarged* the parent's own MBR, the enlargement is
        propagated lazily along *ancestor_path* (page ids strictly above the
        parent, root first), reading each ancestor only while containment is
        actually violated.  Bottom-up strategies bound their extensions by
        the parent MBR, so in the common case the pass stops at the parent
        without touching — or charging — any ancestor page.

        Returns ``True`` when the parent was written.
        """
        before = parent.mbr() if len(parent) else None
        changed = False
        for child in children:
            entry = parent.find_entry(child.page_id)
            if entry is None:
                raise LookupError(
                    f"node {child.page_id} not found in parent {parent.page_id}"
                )
            target = child.effective_mbr()
            if entry.rect != target:
                entry.rect = target
                changed = True
        if not changed:
            return False
        self.write_node(parent)

        needed = parent.mbr()
        if before is not None and before.contains_rect(needed):
            return True  # the parent MBR did not grow: ancestors still cover it
        current = parent
        for page_id in reversed(list(ancestor_path)):
            ancestor = self.read_node(page_id)
            ancestor_entry = ancestor.find_entry(current.page_id)
            if ancestor_entry is None:
                raise LookupError(
                    f"node {current.page_id} not found in ancestor {page_id}"
                )
            if ancestor_entry.rect.contains_rect(needed):
                break
            ancestor_entry.rect = ancestor_entry.rect.union(needed)
            self.write_node(ancestor)
            current = ancestor
            needed = current.mbr()
        return True

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, oid: int, location: Union[Point, Rect]) -> bool:
        """Delete object *oid* whose entry MBR contains *location*.

        Performs the top-down FindLeaf search (which may follow several
        partial paths because sibling MBRs overlap), removes the entry, and
        condenses the tree.  Returns ``True`` when the object was found.
        """
        rect = location if isinstance(location, Rect) else Rect.from_point(location)
        found = self._find_leaf(self.root_page_id, oid, rect, path=[])
        if found is None:
            return False
        path, leaf = found
        leaf.discard_entry(oid)
        self.size -= 1
        self.observers.object_removed(oid)
        self._condense_tree(path + [leaf])
        return True

    def delete_from_leaf(self, oid: int, leaf: Node, parent_path: Sequence[Node]) -> None:
        """Remove *oid* from an already-located *leaf* and condense the tree.

        The bottom-up strategies locate the leaf via the secondary hash index
        and must still keep the tree consistent when the removal causes an
        underflow; they call this method with whatever parent path they have
        already paid to read.
        """
        if not leaf.discard_entry(oid):
            raise LookupError(f"object {oid} not found in leaf {leaf.page_id}")
        self.size -= 1
        self.observers.object_removed(oid)
        self._condense_tree(list(parent_path) + [leaf])

    def _find_leaf(
        self, page_id: int, oid: int, rect: Rect, path: List[Node]
    ) -> Optional[Tuple[List[Node], Node]]:
        """Locate the leaf containing *oid*; returns the root-to-parent path and leaf."""
        node = self.read_node(page_id)
        if node.is_leaf:
            if node.has_child(oid):
                return list(path), node
            return None
        # One shared path list, append/pop around the recursion: FindLeaf
        # visits many partial paths, and copying the prefix per visited node
        # dominated the search cost.  The snapshot happens only on a hit.
        path.append(node)
        for child in node.intersecting_children(rect):
            result = self._find_leaf(child, oid, rect, path)
            if result is not None:
                return result
        path.pop()
        return None

    def _condense_tree(self, path: List[Node]) -> None:
        """Guttman's CondenseTree.

        Walk from the modified leaf towards the root.  Underflowing nodes are
        removed and their entries collected for re-insertion; surviving nodes
        have their parent entry's MBR tightened.  Finally orphaned entries are
        re-inserted at their original level and a root with a single child is
        collapsed.
        """
        orphans: List[Tuple[int, Entry]] = []  # (level, entry)
        modified = {path[-1].page_id}  # the leaf the entry was removed from
        index = len(path) - 1
        while index > 0:
            node = path[index]
            parent = path[index - 1]
            min_entries = self.min_entries_for_level(node.level)
            if self.reinsert_on_underflow and node.underflows(min_entries):
                parent.discard_entry(node.page_id)
                modified.add(parent.page_id)
                orphans.extend((node.level, entry) for entry in node.entries)
                self._free_node(node)
            else:
                parent_entry = parent.find_entry(node.page_id)
                if parent_entry is None:
                    raise LookupError(
                        f"node {node.page_id} not found in parent {parent.page_id}"
                    )
                if node.page_id in modified:
                    # The parent entry is tightened below; clear the ε-slack
                    # before the write so the page image matches (no-op when
                    # the parent entry already equals the tight bound).
                    if len(node):
                        node.stored_mbr = None
                    self.write_node(node)
                if len(node):
                    new_mbr = node.mbr()
                    if parent_entry.rect != new_mbr:
                        parent_entry.rect = new_mbr
                        modified.add(parent.page_id)
            index -= 1

        root = path[0]
        if root.page_id in modified:
            self.write_node(root)

        # Re-insert orphaned entries at the level they came from; entries of a
        # dissolved leaf are data objects, entries of a dissolved internal
        # node are whole subtrees.
        for level, entry in orphans:
            self._insert_entry(entry.copy(), target_level=level)

        self._shrink_root_if_needed()

    def _shrink_root_if_needed(self) -> None:
        """Collapse the root while it is an internal node with a single child."""
        changed = False
        root = self.read_node(self.root_page_id)
        while not root.is_leaf and len(root) == 1:
            child_page = root.entry_at(0).child
            child = self.read_node(child_page)
            self._free_node(root)
            self.root_page_id = child.page_id
            self.height = child.level + 1
            if child.parent_page_id is not None:
                # The promoted child is the root now; a bottom-up strategy
                # following a stale pointer would read a freed page.
                child.parent_page_id = None
                self.write_node(child)
            root = child
            changed = True
        if changed:
            self.observers.root_changed(self.root_page_id, self.height)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, window: Rect) -> List[int]:
        """Return the object ids whose MBRs intersect *window* (top-down search)."""
        return list(self.iter_range_query(window))

    def iter_range_query(self, window: Rect) -> Iterator[int]:
        """Stream the object ids whose MBRs intersect *window*.

        The traversal advances lazily: each ``next()`` reads only as many
        nodes as needed to surface one hit, so a consumer that stops early
        pays only the I/O of what it consumed.  The yield order is exactly
        the order :meth:`range_query` materialises (same depth-first stack
        discipline) — streaming and list execution are byte-identical.
        """
        stack = [self.root_page_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield from node.intersecting_children(window)
            else:
                stack.extend(node.intersecting_children(window))

    def point_query(self, point: Point) -> List[int]:
        """Return the object ids whose MBRs contain *point*."""
        return self.range_query(Rect.from_point(point))

    def knn(self, point: Point, k: int) -> List[Tuple[float, int]]:
        """Best-first k-nearest-neighbour search.

        Returns up to *k* pairs ``(distance, oid)`` ordered by increasing
        distance.  This is an extension beyond the paper, included because a
        moving-object index without kNN support would be of limited practical
        use; it shares the same buffered node access as every other operation.
        """
        return list(self.iter_knn(point, k))

    def iter_knn(
        self, point: Point, k: Optional[int] = None
    ) -> Iterator[Tuple[float, int]]:
        """Stream ``(distance, oid)`` pairs in increasing-distance order.

        Incremental best-first search: the traversal expands only as far as
        needed to *prove* the next pair is globally next (no unexplored node
        can contain anything closer), so a consumer that stops after a few
        neighbours pays only those neighbours' I/O.  Ties are broken by oid,
        exactly like the materialised :meth:`knn` — consuming the stream to
        *k* pairs yields the identical answer.

        With ``k=None`` the stream is unbounded: it ranks every object in
        the tree by distance (distance-browsing semantics).
        """
        if k is not None and k <= 0:
            return
        if self.size == 0:
            return
        counter = 0
        #: Frontier of unexpanded nodes/objects ordered by (distance, arrival).
        frontier: List[Tuple[float, int, int, bool]] = []
        heapq.heappush(frontier, (0.0, counter, self.root_page_id, True))
        #: Objects already popped from the frontier, ordered by (distance, oid)
        #: so equal-distance results surface in oid order.
        ready: List[Tuple[float, int]] = []
        yielded = 0
        while frontier or ready:
            # Expand the frontier until its closest element lies strictly
            # beyond the closest ready object: only then is that object
            # provably the global next (an equal-distance node could still
            # contain an equal-distance object with a smaller oid).
            while frontier and (not ready or frontier[0][0] <= ready[0][0]):
                distance, _, identifier, is_node = heapq.heappop(frontier)
                if is_node:
                    node = self.read_node(identifier)
                    child_is_node = not node.is_leaf
                    for entry_distance, child in node.entry_distances(point):
                        counter += 1
                        heapq.heappush(
                            frontier,
                            (entry_distance, counter, child, child_is_node),
                        )
                else:
                    heapq.heappush(ready, (distance, identifier))
            if not ready:
                return
            yield heapq.heappop(ready)
            yielded += 1
            if k is not None and yielded >= k:
                return

    # ------------------------------------------------------------------
    # Traversal helpers (used by summary construction, validation, stats)
    # ------------------------------------------------------------------
    def iter_nodes(self, charge_io: bool = False):
        """Yield ``(node, parent_page_id)`` for every node in the tree.

        With ``charge_io=False`` (default) nodes are read via
        :meth:`peek_node`, so tests and summary bootstrapping do not disturb
        the I/O counters.
        """
        reader: Callable[[int], Node] = self.read_node if charge_io else self.peek_node
        stack: List[Tuple[int, Optional[int]]] = [(self.root_page_id, None)]
        while stack:
            page_id, parent_id = stack.pop()
            node = reader(page_id)
            yield node, parent_id
            if not node.is_leaf:
                for child in node.child_ids():
                    stack.append((child, page_id))

    def leaf_nodes(self, charge_io: bool = False):
        """Yield every leaf node."""
        for node, _ in self.iter_nodes(charge_io=charge_io):
            if node.is_leaf:
                yield node

    def internal_nodes(self, charge_io: bool = False):
        """Yield every internal node."""
        for node, _ in self.iter_nodes(charge_io=charge_io):
            if not node.is_leaf:
                yield node

    def node_count(self) -> Dict[str, int]:
        """Return ``{"leaf": ..., "internal": ...}`` node counts (no I/O charged)."""
        counts = {"leaf": 0, "internal": 0}
        for node, _ in self.iter_nodes():
            counts["leaf" if node.is_leaf else "internal"] += 1
        return counts

    def root_mbr(self) -> Optional[Rect]:
        """MBR of the whole tree, or ``None`` when the tree is empty (no I/O charged)."""
        root = self.peek_node(self.root_page_id)
        if not root.entries:
            return None
        return root.mbr()

    # ------------------------------------------------------------------
    # Lock-scope planning (used by the concurrent operation engine)
    # ------------------------------------------------------------------
    def predict_visited_leaves(self, rect: Rect) -> List[int]:
        """Leaf pages a top-down search for *rect* would visit (no I/O charged).

        Mirrors the descent criterion of both :meth:`range_query` and the
        delete-side FindLeaf: a child is entered when its entry rectangle
        intersects *rect*, so the returned pages are exactly the leaf
        granules such an operation must lock under DGL.  Planning uses
        uncharged peeks — granule prediction is main-memory work, like DGL's
        own granule table.
        """
        pages: List[int] = []
        stack = [self.root_page_id]
        while stack:
            node = self.peek_node(stack.pop())
            if node.is_leaf:
                pages.append(node.page_id)
            else:
                stack.extend(node.intersecting_children(rect))
        return sorted(pages)

    def predict_insert_leaf(
        self, rect: Rect, start_page_id: Optional[int] = None
    ) -> int:
        """Leaf page a top-down insert of *rect* would descend to (no I/O charged).

        Replays the ChooseLeaf criterion over uncharged peeks, starting at
        the root (or at *start_page_id*, for GBU's bounded ascent which
        re-inserts below an ancestor).  The prediction is exact at the moment
        it is made; a concurrent split can of course reroute the real insert,
        which is why engine lock scopes are recomputed on every dispatch
        attempt.
        """
        node = self.peek_node(
            self.root_page_id if start_page_id is None else start_page_id
        )
        while not node.is_leaf:
            node = self.peek_node(node.choose_subtree_child(rect))
        return node.page_id

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"RTree(size={self.size}, height={self.height}, "
            f"leaf_capacity={self.leaf_capacity}, internal_capacity={self.internal_capacity})"
        )
