"""R-tree nodes and entries.

The node format follows the paper's Section 2:

* **Leaf nodes** contain entries ``(oid, rect)`` where *oid* identifies the
  data object and *rect* is its MBR (a degenerate rectangle for the moving
  points used in the experiments).
* **Non-leaf nodes** contain entries ``(ptr, rect)`` where *ptr* is the page
  id of a child node and *rect* bounds all MBRs in that child.

A node occupies exactly one disk page.  Levels are counted from the leaves:
level 0 is the leaf level and the root has level ``height - 1``.

LBU (Section 3.1) additionally stores a parent pointer in every leaf node;
:attr:`Node.parent_page_id` holds it when the tree is configured with
``store_parent_pointers=True``.  GBU never uses parent pointers.

Two physical layouts implement the same node interface:

* :class:`Node` — the **object layout**: a Python list of :class:`Entry`
  objects.  This is the default and the layout all paper figures are
  produced with.
* :class:`PackedNode` — the **packed columnar layout**: entry MBRs live in
  one flat ``array('d')`` (stride 4: xmin, ymin, xmax, ymax) and entry ids
  in one ``array('I')``.  The geometric hot paths sweep those buffers with
  the batch kernels in :mod:`repro.geometry.kernels` instead of touching an
  ``Entry``/``Rect`` object per predicate, and the binary page codec encodes
  and decodes the buffers with ``tobytes``/``frombytes`` (zero-parse I/O).
  ``entries`` is materialised on demand as a sequence view and
  :meth:`find_entry` returns a write-through proxy, so callers written
  against the object layout work unchanged.

Both layouts produce bit-identical geometry: every scan method either runs
the very same scalar code (object layout) or a kernel whose arithmetic
mirrors it operation for operation (packed layout).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union, overload

from repro.geometry import Point, Rect, kernels, union_all

#: Valid values for the ``node_layout`` configuration switch.
NODE_LAYOUTS = ("object", "packed")


class Entry:
    """A single node entry: an MBR plus either an object id or a child page id."""

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: int) -> None:
        self.rect = rect
        self.child = child

    def __repr__(self) -> str:
        return f"Entry(child={self.child}, rect={self.rect!r})"

    def copy(self) -> "Entry":
        return Entry(self.rect, self.child)


class Node:
    """An R-tree node stored on one disk page (object layout).

    Parameters
    ----------
    page_id:
        Identifier of the page holding this node.
    level:
        Distance from the leaf level; ``0`` for leaves.
    entries:
        Node entries (see :class:`Entry`).
    parent_page_id:
        Page id of the parent node; only maintained for leaves when the tree
        stores parent pointers (the LBU configuration).
    stored_mbr:
        The leaf MBR as recorded in the parent's entry, when an update
        strategy has deliberately enlarged it beyond the tight bound of the
        entries (the ε-enlargement of Section 3.1/3.2).  ``None`` means the
        tight bound applies.  :meth:`effective_mbr` folds it in.
    """

    __slots__ = ("page_id", "level", "entries", "parent_page_id", "stored_mbr")

    #: Name of the physical layout this class implements.
    layout = "object"

    def __init__(
        self,
        page_id: int,
        level: int,
        entries: Optional[List[Entry]] = None,
        parent_page_id: Optional[int] = None,
    ) -> None:
        self.page_id = page_id
        self.level = level
        self.entries = entries if entries is not None else []
        self.parent_page_id = parent_page_id
        self.stored_mbr: Optional[Rect] = None

    # -- classification -----------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    # -- entry management -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def add_entry(self, entry: Entry) -> None:
        self.entries.append(entry)

    def find_entry(self, child: int) -> Optional[Entry]:
        """Return the entry whose object id / child pointer equals *child*."""
        for entry in self.entries:
            if entry.child == child:
                return entry
        return None

    def remove_entry(self, child: int) -> Optional[Entry]:
        """Remove and return the entry for *child*, or ``None`` if absent."""
        for index, entry in enumerate(self.entries):
            if entry.child == child:
                return self.entries.pop(index)
        return None

    def discard_entry(self, child: int) -> bool:
        """Remove the entry for *child*; ``True`` when one was present.

        Like :meth:`remove_entry` but without materialising the removed
        entry — the packed layout skips building an :class:`Entry` the
        caller would throw away.
        """
        return self.remove_entry(child) is not None

    def has_child(self, child: int) -> bool:
        """``True`` when an entry for *child* exists."""
        return self.find_entry(child) is not None

    def entry_at(self, index: int) -> Entry:
        """The entry at position *index* (entry order)."""
        return self.entries[index]

    def entry_bounds_at(self, index: int) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the entry at *index*.

        Bounds-only accessor for scans that never need an :class:`Entry`
        object; the packed layout serves it straight from the coordinate
        buffer.
        """
        return self.entries[index].rect.as_tuple()

    def pop_entry_at(self, index: int) -> Entry:
        """Remove and return the entry at position *index*."""
        return self.entries.pop(index)

    def materialized_entries(self) -> List[Entry]:
        """The entries as a plain list (safe to hold across node mutations).

        The object layout returns the live :class:`Entry` objects in a fresh
        list; the packed layout returns detached copies.
        """
        return list(self.entries)

    def child_ids(self) -> List[int]:
        """Object ids (leaf) or child page ids (internal) of all entries."""
        return [entry.child for entry in self.entries]

    def is_full(self, capacity: int) -> bool:
        return len(self.entries) >= capacity

    def underflows(self, min_entries: int) -> bool:
        return len(self.entries) < min_entries

    # -- geometry ----------------------------------------------------------
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries.

        Raises ``ValueError`` for an empty node; only a brand-new empty root
        has no MBR and callers never ask for it.
        """
        return union_all(entry.rect for entry in self.entries)

    def effective_mbr(self) -> Rect:
        """The node's MBR including any deliberate ε-enlargement.

        The bottom-up strategies may record an enlarged MBR in
        :attr:`stored_mbr` (mirroring the rectangle kept in the parent's
        entry); the effective MBR is the union of that slack and the tight
        bound of the current entries, so it is always a valid bound.
        """
        tight = self.mbr()
        if self.stored_mbr is None:
            return tight
        return self.stored_mbr.union(tight)

    # -- batch scans (layout-dispatched hot paths) ---------------------------
    def intersecting_children(self, window: Rect) -> List[int]:
        """Entry ids whose MBR intersects *window*, in entry order."""
        return [
            entry.child for entry in self.entries if entry.rect.intersects(window)
        ]

    def contains_point_children(self, point: Point) -> List[int]:
        """Entry ids whose MBR contains *point*, in entry order."""
        return [
            entry.child
            for entry in self.entries
            if entry.rect.contains_point(point)
        ]

    def contained_entry_indices(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[int]:
        """Positions of entries whose MBR lies entirely inside the window.

        Same predicate as :meth:`Rect.contains_rect` with the window as the
        container; the piggyback scan uses this to find movable objects.
        """
        out: List[int] = []
        append = out.append
        for index, entry in enumerate(self.entries):
            rect = entry.rect
            if (
                xmin <= rect.xmin
                and ymin <= rect.ymin
                and xmax >= rect.xmax
                and ymax >= rect.ymax
            ):
                append(index)
        return out

    def choose_subtree_child(self, rect: Rect) -> int:
        """Guttman's ChooseLeaf pick: least enlargement, ties by least area.

        First entry wins exact ties, like the sequential scan the R-tree has
        always used.  Raises ``LookupError`` on an empty node.
        """
        best_child: Optional[int] = None
        best_enlargement = float("inf")
        best_area = float("inf")
        for entry in self.entries:
            enlargement = entry.rect.enlargement_to_include(rect)
            area = entry.rect.area()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_child = entry.child
                best_enlargement = enlargement
                best_area = area
        if best_child is None:
            raise LookupError("cannot choose a subtree in an empty internal node")
        return best_child

    def entry_distances(self, point: Point) -> List[Tuple[float, int]]:
        """``(min_distance, child)`` per entry, in entry order (kNN batch)."""
        return [
            (entry.rect.min_distance_to_point(point), entry.child)
            for entry in self.entries
        ]

    # -- debugging ------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "Leaf" if self.is_leaf else "Internal"
        return (
            f"{kind}Node(page={self.page_id}, level={self.level}, "
            f"entries={len(self.entries)}, layout={self.layout})"
        )


class PackedEntryRef:
    """Write-through proxy for one entry of a :class:`PackedNode`.

    Mimics :class:`Entry`: reading ``.rect`` decodes the coordinates on the
    fly, assigning ``.rect`` writes straight into the node's packed buffer.
    The proxy is keyed by the entry id rather than a positional index, so it
    stays valid across removals of *other* entries.
    """

    __slots__ = ("_node", "child", "_index")

    def __init__(self, node: "PackedNode", child: int, index: int = -1) -> None:
        self._node = node
        self.child = child
        self._index = index

    def _position(self) -> int:
        # The cached position is only a hint: removals of other entries may
        # have shifted this entry, so verify before trusting it.
        node = self._node
        children = node.children
        index = self._index
        if 0 <= index < len(children) and children[index] == self.child:
            return index
        index = children.index(self.child)
        self._index = index
        return index

    @property
    def rect(self) -> Rect:
        base = 4 * self._position()
        coords = self._node.coords
        return Rect._raw(
            coords[base], coords[base + 1], coords[base + 2], coords[base + 3]
        )

    @rect.setter
    def rect(self, value: Rect) -> None:
        node = self._node
        base = 4 * self._position()
        coords = node.coords
        coords[base] = value.xmin
        coords[base + 1] = value.ymin
        coords[base + 2] = value.xmax
        coords[base + 3] = value.ymax
        node._mbr = None

    def copy(self) -> Entry:
        """A detached plain :class:`Entry` snapshot."""
        return Entry(self.rect, self.child)

    def __repr__(self) -> str:
        return f"PackedEntryRef(child={self.child}, rect={self.rect!r})"


class PackedEntriesView(Sequence[Entry]):
    """Read-only sequence view over a :class:`PackedNode`'s entries.

    Iteration and indexing yield **detached** :class:`Entry` snapshots —
    mutating a yielded entry does not write back into the node (use
    :meth:`PackedNode.find_entry` for write-through access).
    """

    __slots__ = ("_node",)

    def __init__(self, node: "PackedNode") -> None:
        self._node = node

    def __len__(self) -> int:
        return len(self._node.children)

    def __bool__(self) -> bool:
        return bool(self._node.children)

    @overload
    def __getitem__(self, index: int) -> Entry: ...

    @overload
    def __getitem__(self, index: slice) -> List[Entry]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[Entry, List[Entry]]:
        node = self._node
        if isinstance(index, slice):
            return [
                node.entry_at(position)
                for position in range(*index.indices(len(node.children)))
            ]
        if index < 0:
            index += len(node.children)
        return node.entry_at(index)

    def __iter__(self) -> Iterator[Entry]:
        node = self._node
        coords = node.coords
        base = 0
        for child in node.children:
            yield Entry(
                Rect._raw(
                    coords[base], coords[base + 1], coords[base + 2], coords[base + 3]
                ),
                child,
            )
            base += 4

    def __repr__(self) -> str:
        return f"PackedEntriesView({list(self)!r})"


class PackedNode(Node):
    """An R-tree node in the packed columnar layout.

    The primary store is a pair of flat buffers —

    * :attr:`coords`: ``array('d')`` holding ``[xmin, ymin, xmax, ymax]``
      per entry (stride 4),
    * :attr:`children`: ``array('I')`` holding the object id / child page id
      per entry —

    which the batch kernels (:mod:`repro.geometry.kernels`) sweep in one
    pass, and which the binary page codec moves to and from page images with
    ``tobytes``/``frombytes``.  Entry ids must fit an unsigned 32-bit slot,
    matching the paper's 4-byte pointers (:class:`~repro.storage.sizing.PageLayout`).

    The :class:`Node` interface is preserved: ``entries`` is a sequence view
    (detached snapshots), ``find_entry`` returns a write-through proxy, and
    mutators (``add_entry``, ``remove_entry``, assigning ``entries``) repack
    the buffers.
    """

    __slots__ = ("coords", "children", "_mbr")

    layout = "packed"

    def __init__(
        self,
        page_id: int,
        level: int,
        entries: Optional[Iterable[Entry]] = None,
        parent_page_id: Optional[int] = None,
    ) -> None:
        self.page_id = page_id
        self.level = level
        self.parent_page_id = parent_page_id
        self.stored_mbr = None
        self.coords = array("d")
        self.children = array("I")
        #: Memoised union of all entry MBRs.  Safe because every mutation of
        #: the packed buffers funnels through this class (``add_entry``,
        #: ``pop_entry_at``, the ``entries`` setter) or through
        #: :class:`PackedEntryRef` rect assignment, all of which reset it;
        #: the object layout cannot cache this way because callers mutate its
        #: entry list and Entry rects directly.
        self._mbr: Optional[Rect] = None
        if entries:
            for entry in entries:
                self.add_entry(entry)

    # -- entries facade ------------------------------------------------------
    @property  # type: ignore[override]
    def entries(self) -> PackedEntriesView:
        return PackedEntriesView(self)

    @entries.setter
    def entries(self, value: Iterable[Entry]) -> None:
        # Materialise first: `value` may be a view over this very node.
        items = [(entry.rect, entry.child) for entry in value]
        coords = array("d")
        children = array("I")
        for rect, child in items:
            coords.extend((rect.xmin, rect.ymin, rect.xmax, rect.ymax))
            children.append(child)
        self.coords = coords
        self.children = children
        self._mbr = None

    # -- entry management -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.children)

    def add_entry(self, entry: Entry) -> None:
        rect = entry.rect
        self.coords.extend((rect.xmin, rect.ymin, rect.xmax, rect.ymax))
        self.children.append(entry.child)
        self._mbr = None

    def find_entry(self, child: int) -> Optional[PackedEntryRef]:
        try:
            index = self.children.index(child)
        except ValueError:
            return None
        return PackedEntryRef(self, child, index)

    def remove_entry(self, child: int) -> Optional[Entry]:
        try:
            index = self.children.index(child)
        except ValueError:
            return None
        return self.pop_entry_at(index)

    def discard_entry(self, child: int) -> bool:
        try:
            index = self.children.index(child)
        except ValueError:
            return False
        base = 4 * index
        del self.children[index]
        del self.coords[base : base + 4]
        self._mbr = None
        return True

    def has_child(self, child: int) -> bool:
        return child in self.children

    def entry_at(self, index: int) -> Entry:
        base = 4 * index
        coords = self.coords
        return Entry(
            Rect._raw(
                coords[base], coords[base + 1], coords[base + 2], coords[base + 3]
            ),
            self.children[index],
        )

    def entry_bounds_at(self, index: int) -> Tuple[float, float, float, float]:
        base = 4 * index
        coords = self.coords
        return (coords[base], coords[base + 1], coords[base + 2], coords[base + 3])

    def pop_entry_at(self, index: int) -> Entry:
        entry = self.entry_at(index)
        base = 4 * index
        del self.children[index]
        del self.coords[base : base + 4]
        self._mbr = None
        return entry

    def materialized_entries(self) -> List[Entry]:
        return list(self.entries)

    def child_ids(self) -> List[int]:
        return list(self.children)

    def is_full(self, capacity: int) -> bool:
        return len(self.children) >= capacity

    def underflows(self, min_entries: int) -> bool:
        return len(self.children) < min_entries

    # -- geometry (kernel-backed) ---------------------------------------------
    def mbr(self) -> Rect:
        mbr = self._mbr
        if mbr is None:
            xmin, ymin, xmax, ymax = kernels.union_bounds(self.coords)
            mbr = self._mbr = Rect._raw(xmin, ymin, xmax, ymax)
        return mbr

    def intersecting_children(self, window: Rect) -> List[int]:
        return kernels.intersects_ids(
            self.coords,
            self.children,
            window.xmin,
            window.ymin,
            window.xmax,
            window.ymax,
        )

    def contains_point_children(self, point: Point) -> List[int]:
        return kernels.contains_point_ids(
            self.coords, self.children, point.x, point.y
        )

    def contained_entry_indices(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[int]:
        return kernels.contained_in_many(self.coords, xmin, ymin, xmax, ymax)

    def choose_subtree_child(self, rect: Rect) -> int:
        if not self.children:
            raise LookupError("cannot choose a subtree in an empty internal node")
        index = kernels.argmin_enlargement(
            self.coords, rect.xmin, rect.ymin, rect.xmax, rect.ymax
        )
        return self.children[index]

    def entry_distances(self, point: Point) -> List[Tuple[float, int]]:
        distances = kernels.min_distance_many(self.coords, point.x, point.y)
        return list(zip(distances, self.children))


def make_node(
    layout: str,
    page_id: int,
    level: int,
    entries: Optional[List[Entry]] = None,
    parent_page_id: Optional[int] = None,
) -> Node:
    """Construct a node in the requested physical *layout*."""
    if layout == "packed":
        return PackedNode(
            page_id=page_id,
            level=level,
            entries=entries,
            parent_page_id=parent_page_id,
        )
    if layout == "object":
        return Node(
            page_id=page_id,
            level=level,
            entries=entries,
            parent_page_id=parent_page_id,
        )
    raise ValueError(f"unknown node layout: {layout!r} (expected one of {NODE_LAYOUTS})")
