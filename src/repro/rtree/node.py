"""R-tree nodes and entries.

The node format follows the paper's Section 2:

* **Leaf nodes** contain entries ``(oid, rect)`` where *oid* identifies the
  data object and *rect* is its MBR (a degenerate rectangle for the moving
  points used in the experiments).
* **Non-leaf nodes** contain entries ``(ptr, rect)`` where *ptr* is the page
  id of a child node and *rect* bounds all MBRs in that child.

A node occupies exactly one disk page.  Levels are counted from the leaves:
level 0 is the leaf level and the root has level ``height - 1``.

LBU (Section 3.1) additionally stores a parent pointer in every leaf node;
:attr:`Node.parent_page_id` holds it when the tree is configured with
``store_parent_pointers=True``.  GBU never uses parent pointers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.geometry import Rect, union_all


class Entry:
    """A single node entry: an MBR plus either an object id or a child page id."""

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: int) -> None:
        self.rect = rect
        self.child = child

    def __repr__(self) -> str:
        return f"Entry(child={self.child}, rect={self.rect!r})"

    def copy(self) -> "Entry":
        return Entry(self.rect, self.child)


class Node:
    """An R-tree node stored on one disk page.

    Parameters
    ----------
    page_id:
        Identifier of the page holding this node.
    level:
        Distance from the leaf level; ``0`` for leaves.
    entries:
        Node entries (see :class:`Entry`).
    parent_page_id:
        Page id of the parent node; only maintained for leaves when the tree
        stores parent pointers (the LBU configuration).
    stored_mbr:
        The leaf MBR as recorded in the parent's entry, when an update
        strategy has deliberately enlarged it beyond the tight bound of the
        entries (the ε-enlargement of Section 3.1/3.2).  ``None`` means the
        tight bound applies.  :meth:`effective_mbr` folds it in.
    """

    __slots__ = ("page_id", "level", "entries", "parent_page_id", "stored_mbr")

    def __init__(
        self,
        page_id: int,
        level: int,
        entries: Optional[List[Entry]] = None,
        parent_page_id: Optional[int] = None,
    ) -> None:
        self.page_id = page_id
        self.level = level
        self.entries = entries if entries is not None else []
        self.parent_page_id = parent_page_id
        self.stored_mbr: Optional[Rect] = None

    # -- classification -----------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    # -- entry management -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def add_entry(self, entry: Entry) -> None:
        self.entries.append(entry)

    def find_entry(self, child: int) -> Optional[Entry]:
        """Return the entry whose object id / child pointer equals *child*."""
        for entry in self.entries:
            if entry.child == child:
                return entry
        return None

    def remove_entry(self, child: int) -> Optional[Entry]:
        """Remove and return the entry for *child*, or ``None`` if absent."""
        for index, entry in enumerate(self.entries):
            if entry.child == child:
                return self.entries.pop(index)
        return None

    def child_ids(self) -> List[int]:
        """Object ids (leaf) or child page ids (internal) of all entries."""
        return [entry.child for entry in self.entries]

    def is_full(self, capacity: int) -> bool:
        return len(self.entries) >= capacity

    def underflows(self, min_entries: int) -> bool:
        return len(self.entries) < min_entries

    # -- geometry ----------------------------------------------------------
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries.

        Raises ``ValueError`` for an empty node; only a brand-new empty root
        has no MBR and callers never ask for it.
        """
        return union_all(entry.rect for entry in self.entries)

    def effective_mbr(self) -> Rect:
        """The node's MBR including any deliberate ε-enlargement.

        The bottom-up strategies may record an enlarged MBR in
        :attr:`stored_mbr` (mirroring the rectangle kept in the parent's
        entry); the effective MBR is the union of that slack and the tight
        bound of the current entries, so it is always a valid bound.
        """
        tight = self.mbr()
        if self.stored_mbr is None:
            return tight
        return self.stored_mbr.union(tight)

    # -- debugging ------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "Leaf" if self.is_leaf else "Internal"
        return (
            f"{kind}Node(page={self.page_id}, level={self.level}, "
            f"entries={len(self.entries)})"
        )
