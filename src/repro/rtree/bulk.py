"""STR (Sort-Tile-Recursive) bulk loading.

The paper's experiments start from an index over 1-10 million uniformly /
Gaussian / skewed distributed points and then apply millions of updates.
Building that initial index by repeated top-down insertion is wasteful when
the interesting measurement only begins afterwards, so the benchmark harness
builds the initial tree with the classic STR packing algorithm
(Leutenegger et al.) and resets the I/O counters before the measured phase.

``bulk_load_str`` packs leaves to a configurable *fill factor* (the paper
quotes 66 % node utilisation in its sizing discussion), then packs the next
level on top of the leaf MBRs, and so on until a single root remains.  The
result is a structurally valid :class:`~repro.rtree.tree.RTree` that behaves
exactly like one built by insertion: all observers are notified, so the
secondary hash index and the summary structure can be bootstrapped from it.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple, Union

from repro.geometry import Point, Rect
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree


def _to_rect(location: Union[Point, Rect]) -> Rect:
    return location if isinstance(location, Rect) else Rect.from_point(location)


def bulk_load_str(
    tree: RTree,
    objects: Iterable[Tuple[int, Union[Point, Rect]]],
    fill_factor: float = 0.66,
) -> RTree:
    """Bulk load *objects* (pairs of ``(oid, location)``) into an empty *tree*.

    Parameters
    ----------
    tree:
        A freshly constructed, empty :class:`RTree`.  Loading into a
        non-empty tree is refused: mixing packed and inserted regions would
        violate the balance assumptions of the packing algorithm.
    objects:
        Iterable of ``(object id, Point or Rect)`` pairs.
    fill_factor:
        Target node utilisation in ``(0, 1]``.  The default 0.66 matches the
        utilisation the paper uses for its sizing arguments.
    """
    if tree.size != 0:
        raise ValueError("bulk_load_str requires an empty tree")
    if not 0.0 < fill_factor <= 1.0:
        raise ValueError("fill_factor must be in (0, 1]")

    items = [(oid, _to_rect(location)) for oid, location in objects]
    if not items:
        return tree

    leaf_fanout = max(2, int(tree.leaf_capacity * fill_factor))
    internal_fanout = max(2, int(tree.internal_capacity * fill_factor))

    # -- pack the leaf level -------------------------------------------------
    leaf_entries = [Entry(rect, oid) for oid, rect in items]
    leaves = _pack_level(tree, leaf_entries, level=0, fanout=leaf_fanout)
    tree.size = len(items)

    # -- pack upper levels until a single node remains -------------------------
    level = 1
    nodes = leaves
    while len(nodes) > 1:
        upper_entries = [Entry(node.mbr(), node.page_id) for node in nodes]
        nodes = _pack_level(tree, upper_entries, level=level, fanout=internal_fanout)
        if tree.store_parent_pointers and level == 1:
            for parent in nodes:
                for entry in parent.entries:
                    child = tree.peek_node(entry.child)
                    child.parent_page_id = parent.page_id
                    tree.write_node(child)
        level += 1

    # -- install the root -------------------------------------------------------
    old_root_id = tree.root_page_id
    root = nodes[0]
    if root.page_id != old_root_id:
        old_root = tree.peek_node(old_root_id)
        tree._free_node(old_root)
    tree.root_page_id = root.page_id
    tree.height = root.level + 1
    tree.observers.root_changed(tree.root_page_id, tree.height)
    return tree


def _pack_level(
    tree: RTree, entries: Sequence[Entry], level: int, fanout: int
) -> List[Node]:
    """Pack *entries* into nodes of at most *fanout* entries using STR tiling."""
    count = len(entries)
    node_count = math.ceil(count / fanout)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    slice_size = slice_count * fanout

    by_x = sorted(entries, key=lambda e: (e.rect.center().x, e.rect.center().y))
    nodes: List[Node] = []
    for slice_start in range(0, count, slice_size):
        vertical_slice = by_x[slice_start : slice_start + slice_size]
        by_y = sorted(vertical_slice, key=lambda e: (e.rect.center().y, e.rect.center().x))
        for node_start in range(0, len(by_y), fanout):
            group = by_y[node_start : node_start + fanout]
            node = tree._allocate_node(level)
            node.entries = [entry.copy() for entry in group]
            tree.write_node(node)
            nodes.append(node)
    return _rebalance_tail(tree, nodes, level)


def _rebalance_tail(tree: RTree, nodes: List[Node], level: int) -> List[Node]:
    """Ensure the last packed node satisfies the minimum fill requirement.

    STR tiling can leave a final node with very few entries; such a node
    would immediately violate the R-tree underflow invariant and distort the
    first few measured updates.  When that happens, entries are moved from
    the previous node so both satisfy the minimum.
    """
    if len(nodes) < 2:
        return nodes
    min_entries = tree.min_entries_for_level(level)
    last = nodes[-1]
    if len(last.entries) >= min_entries:
        return nodes
    donor = nodes[-2]
    needed = min_entries - len(last.entries)
    movable = max(0, len(donor.entries) - min_entries)
    to_move = min(needed, movable)
    if to_move > 0:
        moved = list(donor.entries[-to_move:])
        donor.entries = list(donor.entries[:-to_move])
        last.entries = moved + list(last.entries)
        tree.write_node(donor)
        tree.write_node(last)
    return nodes
