"""Disk-based R-tree.

This package implements the index structure the paper builds on: a Guttman
R-tree stored on the simulated paged disk, with

* leaf entries ``(oid, rect)`` and internal entries ``(ptr, rect)``
  (:mod:`repro.rtree.node`),
* quadratic, linear and R*-style node splits (:mod:`repro.rtree.split`),
* top-down insertion and deletion with Guttman's CondenseTree re-insertion
  (:mod:`repro.rtree.tree`),
* window (range) queries and a kNN extension (:mod:`repro.rtree.tree`),
* STR bulk loading used to build the initial index for experiments
  (:mod:`repro.rtree.bulk`),
* structural invariant checking used heavily by the test suite
  (:mod:`repro.rtree.validation`).

Observers (:mod:`repro.rtree.observers`) let the secondary object-ID index
and the main-memory summary structure track the tree without the tree
knowing about them.
"""

from repro.rtree.node import Entry, Node
from repro.rtree.observers import TreeObserver
from repro.rtree.split import LinearSplit, QuadraticSplit, RStarSplit, SplitStrategy
from repro.rtree.tree import RTree
from repro.rtree.bulk import bulk_load_str
from repro.rtree.validation import ValidationError, validate_tree

__all__ = [
    "Entry",
    "Node",
    "TreeObserver",
    "SplitStrategy",
    "QuadraticSplit",
    "LinearSplit",
    "RStarSplit",
    "RTree",
    "bulk_load_str",
    "validate_tree",
    "ValidationError",
]
