"""Node split algorithms.

When an R-tree node overflows its page it is split into two nodes.  The
paper's experiments use the original (Guttman) R-tree, whose standard split
is the **quadratic** algorithm; the **linear** variant and an **R\\*-style**
axis/overlap-minimising split are provided as well so ablations can study how
the update strategies interact with the split policy.

All strategies implement the same interface: given the overflowing entry
list and the minimum number of entries a node must hold, return two disjoint
groups that each satisfy the minimum.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Rect, union_all
from repro.rtree.node import Entry

SplitResult = Tuple[List[Entry], List[Entry]]


class SplitStrategy:
    """Interface for node split algorithms."""

    name = "abstract"

    def split(self, entries: Sequence[Entry], min_entries: int) -> SplitResult:
        """Partition *entries* into two groups of at least *min_entries* each."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    @staticmethod
    def _validate(entries: Sequence[Entry], min_entries: int) -> None:
        if len(entries) < 2:
            raise ValueError("cannot split fewer than two entries")
        if min_entries < 1:
            raise ValueError("min_entries must be at least 1")
        if len(entries) < 2 * min_entries:
            raise ValueError(
                f"cannot split {len(entries)} entries into two groups of "
                f"at least {min_entries}"
            )


class QuadraticSplit(SplitStrategy):
    """Guttman's quadratic split.

    Seeds are the pair of entries that would waste the most area if placed in
    the same node; remaining entries are assigned one at a time to the group
    whose MBR needs the least enlargement, with ties broken by smaller area
    and then smaller group size.  When one group must take all remaining
    entries to reach the minimum fill, they are assigned wholesale.
    """

    name = "quadratic"

    def split(self, entries: Sequence[Entry], min_entries: int) -> SplitResult:
        # The whole algorithm runs on flat float tuples: the O(n^2) seed scan
        # and the per-entry assignment loop dominate split cost, and unpacked
        # coordinates avoid a Rect allocation per considered pair.  Every
        # formula mirrors the Rect methods operation for operation, so the
        # resulting groups are identical to the object-based implementation.
        self._validate(entries, min_entries)
        remaining = list(entries)
        bounds = [entry.rect.as_tuple() for entry in remaining]
        areas = [(b[2] - b[0]) * (b[3] - b[1]) for b in bounds]
        seed_a, seed_b = self._pick_seeds_from_bounds(bounds, areas)
        axmin, aymin, axmax, aymax = bounds[seed_a]
        bxmin, bymin, bxmax, bymax = bounds[seed_b]
        area_a = areas[seed_a]
        area_b = areas[seed_b]
        # Remove the later index first so the earlier index stays valid.
        for index in sorted((seed_a, seed_b), reverse=True):
            remaining.pop(index)
            bounds.pop(index)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]

        while remaining:
            # Force-assign when one group needs every remaining entry.
            if len(group_a) + len(remaining) == min_entries:
                group_a.extend(remaining)
                remaining.clear()
                break
            if len(group_b) + len(remaining) == min_entries:
                group_b.extend(remaining)
                remaining.clear()
                break

            # PickNext: the entry with the greatest |d1 - d2| preference.
            best_index = 0
            best_difference = -1.0
            best_d1 = best_d2 = 0.0
            for index, (exmin, eymin, exmax, eymax) in enumerate(bounds):
                uw = (axmax if axmax > exmax else exmax) - (
                    axmin if axmin < exmin else exmin
                )
                uh = (aymax if aymax > eymax else eymax) - (
                    aymin if aymin < eymin else eymin
                )
                d1 = uw * uh - area_a
                uw = (bxmax if bxmax > exmax else exmax) - (
                    bxmin if bxmin < exmin else exmin
                )
                uh = (bymax if bymax > eymax else eymax) - (
                    bymin if bymin < eymin else eymin
                )
                d2 = uw * uh - area_b
                difference = abs(d1 - d2)
                if difference > best_difference:
                    best_difference = difference
                    best_index = index
                    best_d1 = d1
                    best_d2 = d2

            entry = remaining.pop(best_index)
            exmin, eymin, exmax, eymax = bounds.pop(best_index)
            if best_d1 < best_d2:
                choose_a = True
            elif best_d2 < best_d1:
                choose_a = False
            elif area_a != area_b:
                choose_a = area_a < area_b
            else:
                choose_a = len(group_a) <= len(group_b)
            if choose_a:
                group_a.append(entry)
                if exmin < axmin:
                    axmin = exmin
                if eymin < aymin:
                    aymin = eymin
                if exmax > axmax:
                    axmax = exmax
                if eymax > aymax:
                    aymax = eymax
                area_a = (axmax - axmin) * (aymax - aymin)
            else:
                group_b.append(entry)
                if exmin < bxmin:
                    bxmin = exmin
                if eymin < bymin:
                    bymin = eymin
                if exmax > bxmax:
                    bxmax = exmax
                if eymax > bymax:
                    bymax = eymax
                area_b = (bxmax - bxmin) * (bymax - bymin)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
        bounds = [entry.rect.as_tuple() for entry in entries]
        areas = [(b[2] - b[0]) * (b[3] - b[1]) for b in bounds]
        return QuadraticSplit._pick_seeds_from_bounds(bounds, areas)

    @staticmethod
    def _pick_seeds_from_bounds(
        bounds: Sequence[Tuple[float, float, float, float]],
        areas: Sequence[float],
    ) -> Tuple[int, int]:
        worst_waste = -1.0
        seeds = (0, 1)
        for i in range(len(bounds)):
            ixmin, iymin, ixmax, iymax = bounds[i]
            area_i = areas[i]
            for j in range(i + 1, len(bounds)):
                jxmin, jymin, jxmax, jymax = bounds[j]
                uw = (ixmax if ixmax > jxmax else jxmax) - (
                    ixmin if ixmin < jxmin else jxmin
                )
                uh = (iymax if iymax > jymax else jymax) - (
                    iymin if iymin < jymin else jymin
                )
                waste = uw * uh - area_i - areas[j]
                if waste > worst_waste:
                    worst_waste = waste
                    seeds = (i, j)
        return seeds

    @staticmethod
    def _pick_next(remaining: Sequence[Entry], mbr_a: Rect, mbr_b: Rect) -> int:
        best_index = 0
        best_difference = -1.0
        for index, entry in enumerate(remaining):
            d1 = mbr_a.enlargement_to_include(entry.rect)
            d2 = mbr_b.enlargement_to_include(entry.rect)
            difference = abs(d1 - d2)
            if difference > best_difference:
                best_difference = difference
                best_index = index
        return best_index


class LinearSplit(SplitStrategy):
    """Guttman's linear split.

    Seeds are chosen by the greatest normalised separation along either axis;
    remaining entries are assigned by least enlargement in arbitrary order.
    """

    name = "linear"

    def split(self, entries: Sequence[Entry], min_entries: int) -> SplitResult:
        self._validate(entries, min_entries)
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        for index in sorted((seed_a, seed_b), reverse=True):
            remaining.pop(index)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = group_a[0].rect
        mbr_b = group_b[0].rect

        for position, entry in enumerate(remaining):
            left = len(remaining) - position
            if len(group_a) + left == min_entries:
                group_a.extend(remaining[position:])
                break
            if len(group_b) + left == min_entries:
                group_b.extend(remaining[position:])
                break
            if mbr_a.enlargement_to_include(entry.rect) <= mbr_b.enlargement_to_include(entry.rect):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.rect)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
        overall = union_all(entry.rect for entry in entries)
        width = overall.width or 1.0
        height = overall.height or 1.0

        # Along each axis: the entry with the highest low side and the entry
        # with the lowest high side give the greatest separation.
        highest_low_x = max(range(len(entries)), key=lambda i: entries[i].rect.xmin)
        lowest_high_x = min(range(len(entries)), key=lambda i: entries[i].rect.xmax)
        highest_low_y = max(range(len(entries)), key=lambda i: entries[i].rect.ymin)
        lowest_high_y = min(range(len(entries)), key=lambda i: entries[i].rect.ymax)

        separation_x = (
            entries[highest_low_x].rect.xmin - entries[lowest_high_x].rect.xmax
        ) / width
        separation_y = (
            entries[highest_low_y].rect.ymin - entries[lowest_high_y].rect.ymax
        ) / height

        if separation_x >= separation_y:
            seeds = (lowest_high_x, highest_low_x)
        else:
            seeds = (lowest_high_y, highest_low_y)
        if seeds[0] == seeds[1]:
            # Degenerate data (e.g. identical rectangles): fall back to the
            # first two entries.
            return (0, 1)
        return seeds


class RStarSplit(SplitStrategy):
    """R*-tree style split (Beckmann et al.).

    Chooses the split axis by minimising the sum of MBR margins over all
    legal distributions, then picks the distribution with the least overlap
    (ties broken by least total area).
    """

    name = "rstar"

    def split(self, entries: Sequence[Entry], min_entries: int) -> SplitResult:
        self._validate(entries, min_entries)
        best: Tuple[float, float, SplitResult] = None  # type: ignore[assignment]
        best_axis_margin = float("inf")
        chosen_axis_distributions: List[SplitResult] = []

        for axis in ("x", "y"):
            distributions = self._distributions(list(entries), min_entries, axis)
            margin_sum = 0.0
            for group_a, group_b in distributions:
                margin_sum += union_all(e.rect for e in group_a).margin()
                margin_sum += union_all(e.rect for e in group_b).margin()
            if margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                chosen_axis_distributions = distributions

        for group_a, group_b in chosen_axis_distributions:
            mbr_a = union_all(e.rect for e in group_a)
            mbr_b = union_all(e.rect for e in group_b)
            overlap = mbr_a.overlap_area(mbr_b)
            total_area = mbr_a.area() + mbr_b.area()
            if best is None or (overlap, total_area) < (best[0], best[1]):
                best = (overlap, total_area, (list(group_a), list(group_b)))
        assert best is not None  # _validate guarantees at least one distribution
        return best[2]

    @staticmethod
    def _distributions(
        entries: List[Entry], min_entries: int, axis: str
    ) -> List[SplitResult]:
        if axis == "x":
            by_low = sorted(entries, key=lambda e: (e.rect.xmin, e.rect.xmax))
            by_high = sorted(entries, key=lambda e: (e.rect.xmax, e.rect.xmin))
        else:
            by_low = sorted(entries, key=lambda e: (e.rect.ymin, e.rect.ymax))
            by_high = sorted(entries, key=lambda e: (e.rect.ymax, e.rect.ymin))

        distributions: List[SplitResult] = []
        total = len(entries)
        for ordering in (by_low, by_high):
            for k in range(min_entries, total - min_entries + 1):
                distributions.append((ordering[:k], ordering[k:]))
        return distributions


def make_split_strategy(name: str) -> SplitStrategy:
    """Factory used by experiment configuration files ("quadratic", "linear", "rstar")."""
    strategies = {
        QuadraticSplit.name: QuadraticSplit,
        LinearSplit.name: LinearSplit,
        RStarSplit.name: RStarSplit,
    }
    try:
        return strategies[name]()
    except KeyError:
        raise ValueError(
            f"unknown split strategy {name!r}; expected one of {sorted(strategies)}"
        ) from None
