"""First-class operation model of the public API.

One frozen dataclass per operation the index surface supports — these are
the *single* schema every layer speaks: the facades execute them, the batch
engine groups them, the concurrent engine schedules them, and the workload
generator produces them.  The legacy tuple conventions (``("update", oid,
new)`` and friends) survive only as adapters: :meth:`Operation.from_tuple`
parses them and :meth:`Operation.to_tuple` emits them, so the pre-v2 surface
is a thin shim over this module.

Two canonical encodings exist per operation:

* :meth:`Operation.normalise` — the engine normal form ``(kind, payload)``
  that lock-scope prediction (:meth:`SpatialIndexFacade.lock_requests_for`)
  dispatches on;
* :meth:`Operation.to_tuple` — the legacy facade tuple, kept for the
  deprecated compatibility surface.

>>> from repro.api import Delete, Insert, Operation, RangeQuery, Update
>>> from repro.geometry import Point, Rect
>>> op = Operation.from_tuple(("update", 42, Point(0.3, 0.4)))
>>> op
Update(oid=42, new_location=Point(0.3, 0.4))
>>> op.normalise()
('update', (42, Point(0.3, 0.4)))
>>> op.to_tuple()
('update', 42, Point(0.3, 0.4))
>>> Operation.from_tuple(("range_query", Rect(0.0, 0.0, 0.5, 0.5))).kind
'query'
>>> Operation.from_any(Delete(7)) is Operation.from_any(Delete(7))
False
>>> Operation.from_tuple(("compact",))
Traceback (most recent call last):
    ...
repro.api.errors.InvalidOperationError: unknown operation kind 'compact'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple, Union

from repro.api.errors import (
    InvalidNeighborCountError,
    InvalidOperationError,
    InvalidWindowError,
    OperationError,
)
from repro.geometry import Point, Rect

#: Anything the compatibility surface accepts: a typed operation or a
#: legacy tuple in either the facade or the workload-generator shape.
OperationLike = Union["Operation", Tuple[Any, ...]]


@dataclass(frozen=True)
class Operation:
    """Base class of every typed index operation.

    Concrete operations are frozen dataclasses; equality, hashing and repr
    come for free, which is what makes them safe to carry across layer
    boundaries (scheduler queues, batch plans, checkpoints of pending work).
    """

    #: Stable kind label, shared with the engine normal form and the
    #: scheduler's per-kind reporting.
    kind = "operation"

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        """The engine normal form ``(kind, payload)`` of this operation."""
        raise NotImplementedError

    def to_tuple(self) -> Tuple[Any, ...]:
        """The legacy facade tuple (deprecated surface) for this operation."""
        raise NotImplementedError

    @staticmethod
    def from_tuple(op: Sequence[Any]) -> "Operation":
        """Parse one legacy operation tuple into a typed operation.

        Accepts both the facade shapes — ``("update", oid, new_location)``,
        ``("insert", oid, location)``, ``("delete", oid)``,
        ``("range_query" | "query", window)``, ``("knn", point, k)`` — and
        the workload generator's ``("update", (oid, old, new))`` item (the
        old position is implicit index state and is dropped).
        """
        if not op:
            raise InvalidOperationError("empty operation tuple")
        kind = op[0]
        try:
            if kind == "update":
                if len(op) == 2:  # generator item: ("update", (oid, old, new))
                    oid, _old, new_location = op[1]
                elif len(op) == 3:
                    _, oid, new_location = op
                else:
                    raise InvalidOperationError(
                        f"update tuple must have 2 or 3 elements, got {len(op)}"
                    )
                return Update(oid, new_location)
            if kind == "insert":
                _, oid, location = op
                return Insert(oid, location)
            if kind == "delete":
                _, oid = op
                return Delete(oid)
            if kind in ("query", "range_query"):
                _, window = op
                return RangeQuery(window)
            if kind == "knn":
                _, point, k = op
                return KNN(point, k)
        except (TypeError, ValueError) as error:
            if isinstance(error, OperationError):
                # The taxonomy's own validation errors (InvalidWindowError,
                # InvalidNeighborCountError, ...) pass through untouched so
                # legacy handlers for their builtin bases keep working.
                raise
            raise InvalidOperationError(
                f"malformed {kind!r} operation tuple {tuple(op)!r}"
            ) from error
        raise InvalidOperationError(f"unknown operation kind {kind!r}")

    @staticmethod
    def from_any(op: OperationLike) -> "Operation":
        """Coerce a typed operation or a legacy tuple into a typed operation."""
        if isinstance(op, Operation):
            return op
        if isinstance(op, tuple):
            return Operation.from_tuple(op)
        raise InvalidOperationError(
            f"expected an Operation or an operation tuple, got {op!r}"
        )


@dataclass(frozen=True)
class Insert(Operation):
    """Insert a brand-new object at *location*."""

    oid: int
    location: Point
    kind = "insert"

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("insert", (self.oid, self.location))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("insert", self.oid, self.location)


@dataclass(frozen=True)
class Update(Operation):
    """Move an existing object to *new_location*.

    The operation carries only the new (absolute) position; the object's old
    position is index state, looked up at execution time — which is exactly
    the online semantics: a deferred update sees the position its
    predecessors committed.
    """

    oid: int
    new_location: Point
    kind = "update"

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("update", (self.oid, self.new_location))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("update", self.oid, self.new_location)


@dataclass(frozen=True)
class Delete(Operation):
    """Remove an object from the index."""

    oid: int
    kind = "delete"

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("delete", (self.oid,))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("delete", self.oid)


@dataclass(frozen=True)
class RangeQuery(Operation):
    """Report the objects whose positions fall inside *window*."""

    window: Rect
    kind = "query"

    def __post_init__(self) -> None:
        if not isinstance(self.window, Rect):
            raise InvalidWindowError(self.window)

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("query", (self.window,))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("range_query", self.window)


@dataclass(frozen=True)
class KNN(Operation):
    """Report the *k* objects nearest to *point* as ``(distance, oid)`` pairs."""

    point: Point
    k: int
    kind = "knn"

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 0:
            raise InvalidNeighborCountError(self.k)

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("knn", (self.point, self.k))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("knn", self.point, self.k)


@dataclass(frozen=True)
class Migrate(Operation):
    """Internal: a position update that crosses a shard boundary.

    Never parsed from the public tuple surface — the sharded router derives
    it from an :class:`Update` whose target shard differs from its source.
    Its engine normal form is the update's (a migration *is* an update whose
    lock scope happens to span two shards), so lock-scope prediction and
    per-kind scheduler reporting stay shard-aware without a parallel code
    path.
    """

    oid: int
    new_location: Point
    kind = "migration"

    def normalise(self) -> Tuple[str, Tuple[Any, ...]]:
        return ("update", (self.oid, self.new_location))

    def to_tuple(self) -> Tuple[Any, ...]:
        return ("update", self.oid, self.new_location)


__all__ = [
    "Operation",
    "OperationLike",
    "Insert",
    "Update",
    "Delete",
    "RangeQuery",
    "KNN",
    "Migrate",
]
