"""Typed results of the operation API: cursors, per-operation results, batch reports.

The pre-v2 surface answered queries with fully materialised lists and
signalled failure with bare ``KeyError``/``bool`` returns.  This module is
the replacement contract:

* :class:`QueryCursor` — an iterator over query results that *streams*:
  the underlying tree traversal advances only as the cursor is consumed, so
  a caller that stops after ten hits pays the I/O of ten hits, not of the
  whole result set;
* :class:`OperationResult` — the uniform outcome envelope of one executed
  operation (value, update outcome, or structured error);
* :class:`BatchReport` — what one typed batch did: the per-kind counts and
  I/O delta of the underlying group-by-leaf execution plus every query's
  answer, in stream order.

>>> from repro.api.results import QueryCursor
>>> cursor = QueryCursor(iter([3, 1, 2]))
>>> cursor.fetch(2)
[3, 1]
>>> cursor.exhausted
False
>>> list(cursor)
[2]
>>> cursor.exhausted
True
>>> cursor.consumed
3
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    TypeVar,
)

from repro.api.errors import OperationError
from repro.api.operations import Operation

if TYPE_CHECKING:  # typing only; avoids runtime import cycles
    from repro.storage.stats import IOStatistics
    from repro.update.base import UpdateOutcome
    from repro.update.batch import BatchResult

T = TypeVar("T")


class QueryCursor(Generic[T], Iterator[T]):
    """A streaming iterator over query results.

    Wraps a lazy result source (a generator walking the R-tree).  Results
    are produced on demand: each ``next()`` advances the traversal just far
    enough to surface one hit, and the I/O it causes is charged when — and
    only if — the caller actually consumes it.  The cursor tracks how many
    results it handed out and whether the source ran dry, which the
    conformance suite uses to assert exhaustion behaviour.
    """

    def __init__(self, source: Iterable[T]) -> None:
        self._source: Iterator[T] = iter(source)
        self._consumed = 0
        self._exhausted = False

    def __iter__(self) -> "QueryCursor[T]":
        return self

    def __next__(self) -> T:
        try:
            item = next(self._source)
        except StopIteration:
            self._exhausted = True
            raise
        self._consumed += 1
        return item

    def fetch(self, count: int) -> List[T]:
        """Up to *count* further results (fewer when the source runs dry)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        results: List[T] = []
        for _ in range(count):
            try:
                results.append(next(self))
            except StopIteration:
                break
        return results

    def all(self) -> List[T]:
        """Every remaining result, materialised."""
        return list(self)

    @property
    def consumed(self) -> int:
        """How many results this cursor has handed out so far."""
        return self._consumed

    @property
    def exhausted(self) -> bool:
        """Whether the underlying traversal has run dry."""
        return self._exhausted


@dataclass
class OperationResult:
    """The outcome envelope of one executed :class:`~repro.api.operations.Operation`.

    Exactly one of the payload fields is meaningful, by operation kind:

    * ``Update`` / ``Migrate`` — ``outcome`` (how the strategy carried the
      move out);
    * ``Insert`` — nothing (success is the absence of ``error``);
    * ``Delete`` — ``value`` is ``True`` (``False`` only under the
      non-strict compatibility mode, where a missing object is not an error);
    * ``RangeQuery`` / ``KNN`` — ``value`` is a :class:`QueryCursor`.

    Under ``strict`` execution (the default) errors raise; under
    ``strict=False`` they are captured in ``error`` and ``ok`` is False.
    """

    operation: Operation
    value: Any = None
    outcome: Optional["UpdateOutcome"] = None
    error: Optional[OperationError] = None

    @property
    def ok(self) -> bool:
        """Whether the operation executed without error."""
        return self.error is None

    def cursor(self) -> "QueryCursor[Any]":
        """The result cursor of a query operation (raises otherwise)."""
        if not isinstance(self.value, QueryCursor):
            raise TypeError(
                f"{self.operation.kind!r} result carries no cursor"
            )
        return self.value

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.operation.kind}: error={self.error}"
        if self.outcome is not None:
            return f"{self.operation.kind}: {self.outcome.value}"
        return f"{self.operation.kind}: ok"


@dataclass
class BatchReport:
    """What one typed batch execution did, and what it cost.

    The typed counterpart of the batch layer's internal
    :class:`~repro.update.batch.BatchResult`: per-kind operation counts,
    group/coalescing/residual/migration statistics of the group-by-leaf
    pipeline, every window query's answer and every kNN's answer in stream
    order, and the batch's :class:`~repro.storage.stats.IOStatistics` delta.
    """

    #: Updates submitted (before coalescing).
    updates: int = 0
    inserts: int = 0
    deletes: int = 0
    #: Window-query answers, in stream order.
    queries: List[List[int]] = field(default_factory=list)
    #: kNN answers (``(distance, oid)`` pairs), in stream order.
    neighbors: List[List[Any]] = field(default_factory=list)
    #: Updates superseded by a later update of the same object.
    coalesced: int = 0
    #: Leaf groups executed through ``apply_group``.
    groups: int = 0
    #: Size of the largest single group.
    largest_group: int = 0
    #: Updates replayed through the per-operation path.
    residuals: int = 0
    #: Updates that crossed a shard boundary (sharded index only).
    migrations: int = 0
    #: Per-batch I/O delta (``None`` until execution finishes).
    io: Optional["IOStatistics"] = None

    @classmethod
    def from_batch_result(cls, result: "BatchResult") -> "BatchReport":
        """Lift the batch layer's internal result into the public report."""
        return cls(
            updates=result.updates,
            inserts=result.inserts,
            deletes=result.deletes,
            queries=result.queries,
            neighbors=result.neighbors,
            coalesced=result.coalesced,
            groups=result.groups,
            largest_group=result.largest_group,
            residuals=result.residuals,
            migrations=result.migrations,
            io=result.io,
        )

    @property
    def operations(self) -> int:
        """Total operations the batch carried out."""
        return (
            self.updates
            + self.inserts
            + self.deletes
            + len(self.queries)
            + len(self.neighbors)
        )

    def describe(self) -> str:
        migrated = f", migrations={self.migrations}" if self.migrations else ""
        io = ""
        if self.io is not None:
            io = (
                f" | physical_reads={self.io.physical_reads} "
                f"physical_writes={self.io.physical_writes}"
            )
        return (
            f"updates={self.updates} (coalesced={self.coalesced}, "
            f"groups={self.groups}, residual={self.residuals}{migrated}) "
            f"inserts={self.inserts} deletes={self.deletes} "
            f"queries={len(self.queries)} knn={len(self.neighbors)}{io}"
        )


__all__ = ["QueryCursor", "OperationResult", "BatchReport"]
