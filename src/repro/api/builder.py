"""Declarative index construction: one JSON-round-trippable spec, two facades.

The pre-v2 surface required callers to know which facade class to
instantiate and how to wire a partitioner.  The v2 entry points are
declarative:

* :func:`open_index` — build a :class:`~repro.core.index.MovingObjectIndex`
  or a :class:`~repro.shard.index.ShardedIndex` from one plain-dict spec;
* :class:`IndexBuilder` — the fluent equivalent, for callers that prefer
  chained configuration over a dict;
* :func:`index_spec` — recover the canonical spec of a live index, such that
  ``open_index(index_spec(index))`` builds an equivalent empty index.

The same config codec (:func:`config_to_spec` / :func:`config_from_spec`)
is used by the persistence checkpoints, so a checkpoint's embedded
configuration *is* a spec fragment: spec → index → checkpoint → load
round-trips to the identical spec.

>>> from repro.api import IndexBuilder, index_spec, open_index
>>> index = open_index({"kind": "single", "config": {"strategy": "LBU"}})
>>> index.config.strategy
'LBU'
>>> sharded = (
...     IndexBuilder()
...     .strategy("GBU")
...     .buffer_percent(2.0)
...     .shards(4)
...     .engine(num_clients=16)
...     .rebalance(threshold=2.0, cooldown=300)
...     .build()
... )
>>> sharded.num_shards
4
>>> spec = index_spec(sharded)
>>> (spec["kind"], spec["partitioner"], spec["engine"]["num_clients"])
('sharded', {'kind': 'grid', 'columns': 2, 'rows': 2}, 16)
>>> spec["rebalance"]["threshold"]
2.0
>>> index_spec(open_index(spec)) == spec
True
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.core.config import IndexConfig
from repro.update.params import TuningParameters

if TYPE_CHECKING:
    from repro.core.protocol import SpatialIndexFacade
    from repro.shard.partitioner import Partitioner


def config_to_spec(config: IndexConfig) -> Dict[str, Any]:
    """The plain-dict form of an :class:`IndexConfig` (JSON-safe).

    This is the exact shape persistence checkpoints embed, so a checkpoint's
    ``config`` section round-trips through :func:`config_from_spec`.
    """
    return {
        "page_size": config.page_size,
        "buffer_percent": config.buffer_percent,
        "strategy": config.strategy,
        "split": config.split,
        "reinsert_on_underflow": config.reinsert_on_underflow,
        "use_summary_for_queries": config.use_summary_for_queries,
        "charge_hash_io": config.charge_hash_io,
        "bulk_load_fill": config.bulk_load_fill,
        "min_fill_factor": config.min_fill_factor,
        "node_layout": config.node_layout,
        "page_store": config.page_store,
        "params": {
            "epsilon": config.params.epsilon,
            "distance_threshold": config.params.distance_threshold,
            "level_threshold": config.params.level_threshold,
            "piggyback": config.params.piggyback,
            "max_piggyback_objects": config.params.max_piggyback_objects,
        },
    }


def config_from_spec(spec: Dict[str, Any]) -> IndexConfig:
    """Rebuild an :class:`IndexConfig` from its (possibly partial) spec dict."""
    data = dict(spec)
    params_data = data.pop("params", None)
    params = (
        TuningParameters(**params_data)
        if params_data is not None
        else TuningParameters.paper_defaults()
    )
    return IndexConfig(params=params, **data)


def index_spec(index: "SpatialIndexFacade") -> Dict[str, Any]:
    """The canonical declarative spec of a live index.

    ``open_index(index_spec(index))`` constructs an equivalent *empty* index
    (specs describe configuration, not contents; contents travel through
    :mod:`repro.core.persistence` checkpoints, which embed this same spec).
    """
    from repro.shard.index import ShardedIndex  # local: avoids import cycle

    spec: Dict[str, Any]
    if isinstance(index, ShardedIndex):
        spec = {
            "kind": "sharded",
            "config": config_to_spec(index.config),
            "partitioner": index.partitioner.to_spec(),
        }
        if index.rebalancer is not None:
            spec["rebalance"] = index.rebalancer.to_spec()
        if index.adaptive is not None:
            spec["adaptive"] = index.adaptive.to_spec()
        if index.parallel_spec is not None:
            spec["parallel"] = dict(index.parallel_spec)
    else:
        spec = {"kind": "single", "config": config_to_spec(index.config)}
    if index.engine_defaults:
        spec["engine"] = dict(index.engine_defaults)
    if index.durability is not None:
        spec["durability"] = index.durability.to_spec()
    return spec


def open_index(
    spec: Optional[Dict[str, Any]] = None, **overrides: Any
) -> "SpatialIndexFacade":
    """Build an index facade from one declarative spec dict.

    Spec schema (every key optional)::

        {
            "kind": "single" | "sharded",        # default "single"
            "config": {...IndexConfig fields..., "params": {...}},
            "shards": N,                         # sharded: uniform grid of N
            "partitioner": {...partitioner spec...},
            "engine": {"num_clients": ..., "time_per_io": ...,
                       "cpu_time_per_op": ...},  # session defaults
            "rebalance": {"threshold": ..., "cooldown": ...,
                          "min_ops": ...},       # sharded: online rebalancer
            "adaptive": {"enabled": ..., "cooldown": ...,
                         "min_ops": ...},        # sharded: strategy selection
            "parallel": {"backend": "thread" | "process",
                         "workers": N},          # sharded: execution backend
            "durability": {"dir": "...", "sync": "always"|"group"|"none",
                           "group_size": N},     # write-ahead logging
        }

    Keyword *overrides* are merged over the spec's top level, so
    ``open_index(spec, shards=8)`` re-shards a saved spec.  The returned
    facade is a :class:`~repro.core.index.MovingObjectIndex` or a
    :class:`~repro.shard.index.ShardedIndex`; both speak the same
    :class:`~repro.core.protocol.SpatialIndexFacade` surface.
    """
    merged: Dict[str, Any] = dict(spec) if spec is not None else {}
    merged.update(overrides)
    builder = IndexBuilder.from_spec(merged)
    return builder.build()


class IndexBuilder:
    """Fluent construction of single or sharded indexes.

    Every method returns the builder, so configuration chains; ``build()``
    constructs the facade and ``spec()`` emits the equivalent declarative
    dict (JSON-serialisable, accepted by :func:`open_index`).
    """

    def __init__(self) -> None:
        self._config: Dict[str, Any] = {}
        self._params: Dict[str, Any] = {}
        self._kind: str = "single"
        self._shards: Optional[int] = None
        self._partitioner_spec: Optional[Dict[str, Any]] = None
        self._engine: Dict[str, Any] = {}
        self._rebalance: Optional[Dict[str, Any]] = None
        self._adaptive: Optional[Dict[str, Any]] = None
        self._parallel: Optional[Dict[str, Any]] = None
        self._durability: Optional[Dict[str, Any]] = None

    # -- index configuration -------------------------------------------
    def strategy(self, name: str) -> "IndexBuilder":
        """Update strategy: ``"TD"``, ``"NAIVE"``, ``"LBU"`` or ``"GBU"``."""
        self._config["strategy"] = name
        return self

    def page_size(self, size: int) -> "IndexBuilder":
        self._config["page_size"] = size
        return self

    def buffer_percent(self, percent: float) -> "IndexBuilder":
        """Buffer pool size as a percentage of the database size."""
        self._config["buffer_percent"] = percent
        return self

    def split(self, algorithm: str) -> "IndexBuilder":
        """Node split algorithm: ``"quadratic"``, ``"linear"`` or ``"rstar"``."""
        self._config["split"] = algorithm
        return self

    def config_field(self, name: str, value: Any) -> "IndexBuilder":
        """Set any other :class:`IndexConfig` field by name."""
        self._config[name] = value
        return self

    def params(self, **tuning: Any) -> "IndexBuilder":
        """Override bottom-up tuning parameters (``epsilon``, ``distance_threshold``, ...)."""
        self._params.update(tuning)
        return self

    # -- topology -------------------------------------------------------
    def shards(self, count: int) -> "IndexBuilder":
        """Shard over a near-square uniform grid of *count* cells.

        ``shards(1)`` still builds a (single-shard) sharded topology — the
        baseline the shard-scaling experiments compare against; omit the
        call entirely for a plain single index.
        """
        if count < 1:
            raise ValueError("shard count must be positive")
        self._kind = "sharded"
        self._shards = count
        return self

    def partitioner(
        self, partitioner: Union["Partitioner", Dict[str, Any]]
    ) -> "IndexBuilder":
        """Shard behind an explicit partitioner (instance or spec dict)."""
        spec = (
            partitioner
            if isinstance(partitioner, dict)
            else partitioner.to_spec()
        )
        self._kind = "sharded"
        self._partitioner_spec = spec
        return self

    def rebalance(
        self,
        threshold: Optional[float] = None,
        cooldown: Optional[int] = None,
        min_ops: Optional[int] = None,
    ) -> "IndexBuilder":
        """Attach the online shard rebalancer (implies a sharded topology).

        The built :class:`~repro.shard.index.ShardedIndex` monitors per-shard
        load and — when the max/mean load exceeds *threshold* after at least
        *min_ops* observed operations, re-checked every *cooldown* operations
        — re-cuts the partition boundaries and migrates the displaced
        objects through conflict-scheduled engine batches.  Unset parameters
        keep the :class:`~repro.shard.rebalance.RebalancePolicy` defaults.
        """
        section: Dict[str, Any] = {}
        if threshold is not None:
            section["threshold"] = threshold
        if cooldown is not None:
            section["cooldown"] = cooldown
        if min_ops is not None:
            section["min_ops"] = min_ops
        self._kind = "sharded"
        self._rebalance = section
        return self

    def adaptive(
        self,
        enabled: bool = True,
        cooldown: Optional[int] = None,
        min_ops: Optional[int] = None,
    ) -> "IndexBuilder":
        """Attach the adaptive strategy controller (implies a sharded topology).

        The built :class:`~repro.shard.index.ShardedIndex` observes each
        shard's update/query mix, movement distances and buffer hit ratio,
        ranks the four update strategies with the paper's Section 4 cost
        models (:mod:`repro.cost.model`), and hot-swaps any shard whose
        observed workload favours a different strategy — after at least
        *min_ops* observed operations (first switch) and every *cooldown*
        operations thereafter.  See :mod:`repro.shard.adaptive`.
        """
        section: Dict[str, Any] = {"enabled": bool(enabled)}
        if cooldown is not None:
            section["cooldown"] = cooldown
        if min_ops is not None:
            section["min_ops"] = min_ops
        self._kind = "sharded"
        self._adaptive = section
        return self

    def parallel(
        self, backend: str = "process", workers: Optional[int] = None
    ) -> "IndexBuilder":
        """Attach a shard-execution backend (implies a sharded topology).

        ``backend`` is ``"serial"`` (the default in-process execution —
        clears any previous setting), ``"thread"`` (concurrent fan-out over
        the in-process shards) or ``"process"`` (one long-lived worker
        process per shard group; see :mod:`repro.shard.parallel`).
        *workers* caps the worker/pool count and defaults to one per shard.
        """
        from repro.shard.parallel import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(f"unknown parallel backend {backend!r}")
        self._kind = "sharded"
        if backend == "serial":
            self._parallel = None
            return self
        section: Dict[str, Any] = {"backend": backend}
        if workers is not None:
            section["workers"] = int(workers)
        self._parallel = section
        return self

    def durability(
        self,
        directory: Union[str, Path],
        sync: str = "group",
        group_size: int = 64,
    ) -> "IndexBuilder":
        """Attach write-ahead logging under *directory* (single or sharded).

        Every mutation is logged before it is applied — one log per shard
        plus a coordinator meta log, framed as CRC-checked commit units with
        monotonic LSNs (see :mod:`repro.durability`).  *sync* picks the
        fsync policy: ``"always"`` syncs every commit unit, ``"group"``
        (default) syncs batch dispatches immediately and single operations
        every *group_size* ops, ``"none"`` leaves syncing to the OS.
        ``load()`` and ``checkpoint()`` write ``<directory>/checkpoint.json``
        and rotate the logs; after a crash,
        :func:`repro.durability.recover_index` replays the intact log tail
        on top of that checkpoint.
        """
        from repro.durability.commit import normalise_spec

        self._durability = normalise_spec(
            {"dir": str(directory), "sync": sync, "group_size": group_size}
        )
        return self

    # -- engine session defaults ---------------------------------------
    def engine(
        self,
        num_clients: Optional[int] = None,
        time_per_io: Optional[float] = None,
        cpu_time_per_op: Optional[float] = None,
    ) -> "IndexBuilder":
        """Default parameters for sessions opened via ``index.engine()``."""
        if num_clients is not None:
            self._engine["num_clients"] = num_clients
        if time_per_io is not None:
            self._engine["time_per_io"] = time_per_io
        if cpu_time_per_op is not None:
            self._engine["cpu_time_per_op"] = cpu_time_per_op
        return self

    # -- spec round-trip ------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "IndexBuilder":
        """A builder pre-loaded from a declarative spec dict."""
        known = {
            "kind",
            "config",
            "shards",
            "partitioner",
            "engine",
            "rebalance",
            "adaptive",
            "parallel",
            "durability",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown spec keys {sorted(unknown)!r}")
        builder = cls()
        config = dict(spec.get("config", {}))
        params = config.pop("params", None)
        builder._config = config
        builder._params = dict(params) if params is not None else {}
        if spec.get("shards") is not None:
            builder.shards(int(spec["shards"]))
        if spec.get("partitioner") is not None:
            builder.partitioner(dict(spec["partitioner"]))
        if spec.get("rebalance") is not None:
            builder._kind = "sharded"
            builder._rebalance = dict(spec["rebalance"])
        if spec.get("adaptive") is not None:
            builder._kind = "sharded"
            builder._adaptive = dict(spec["adaptive"])
        if spec.get("parallel") is not None:
            section = dict(spec["parallel"])
            builder.parallel(
                backend=section.get("backend", "process"),
                workers=section.get("workers"),
            )
        if spec.get("durability") is not None:
            from repro.durability.commit import normalise_spec

            builder._durability = normalise_spec(dict(spec["durability"]))
        kind = spec.get("kind")
        if kind is not None:
            if kind not in ("single", "sharded"):
                raise ValueError(f"unknown index kind {kind!r}")
            if kind == "single" and builder._kind == "sharded":
                raise ValueError(
                    "kind 'single' conflicts with a shards/partitioner/"
                    "rebalance/adaptive/parallel entry"
                )
            builder._kind = kind
        builder._engine = dict(spec.get("engine", {}))
        return builder

    def spec(self) -> Dict[str, Any]:
        """The canonical declarative spec this builder would build from.

        Derived from the builder's own state (no index is constructed):
        the config is normalised through the shared codec and an implicit
        shard count becomes its explicit grid partitioner, so the result
        matches :func:`index_spec` of the built facade exactly.
        """
        config_spec = dict(self._config)
        if self._params:
            config_spec["params"] = dict(self._params)
        spec: Dict[str, Any] = {
            "kind": self._kind,
            "config": config_to_spec(config_from_spec(config_spec)),
        }
        if self._kind == "sharded":
            spec["partitioner"] = self._grid_partitioner_spec()
        if self._rebalance is not None:
            # Normalise through the policy codec (defaults made explicit;
            # a checkpoint's runtime counters are not part of the spec).
            from repro.shard.rebalance import RebalancePolicy

            policy_data = dict(self._rebalance)
            policy_data.pop("rebalances", None)
            spec["rebalance"] = RebalancePolicy.from_spec(policy_data).to_spec()
        if self._adaptive is not None:
            # Same normalisation: explicit defaults, runtime counters dropped.
            from repro.shard.adaptive import AdaptiveStrategyPolicy

            adaptive_data = dict(self._adaptive)
            adaptive_data.pop("switches", None)
            spec["adaptive"] = AdaptiveStrategyPolicy.from_spec(
                adaptive_data
            ).to_spec()
        if self._parallel is not None:
            # Normalise the worker count to the concrete value the built
            # index would resolve (one per shard unless capped lower), so
            # builder.spec() matches index_spec(builder.build()).
            from repro.shard.partitioner import partitioner_from_spec

            num_shards = partitioner_from_spec(spec["partitioner"]).num_shards
            workers = self._parallel.get("workers")
            resolved = max(
                1, min(workers if workers is not None else num_shards, num_shards)
            )
            spec["parallel"] = {
                "backend": self._parallel["backend"],
                "workers": resolved,
            }
        if self._engine:
            spec["engine"] = dict(self._engine)
        if self._durability is not None:
            from repro.durability.commit import normalise_spec

            spec["durability"] = normalise_spec(self._durability)
        return spec

    def _grid_partitioner_spec(self) -> Dict[str, Any]:
        from repro.shard.partitioner import GridPartitioner, partitioner_from_spec

        if self._partitioner_spec is not None:
            # Normalise through the partitioner codec (canonical key order).
            return partitioner_from_spec(self._partitioner_spec).to_spec()
        return GridPartitioner.for_shards(
            self._shards if self._shards is not None else 4
        ).to_spec()

    # -- construction ---------------------------------------------------
    def build(self) -> "SpatialIndexFacade":
        """Construct the configured facade (single or sharded)."""
        from repro.core.index import MovingObjectIndex
        from repro.shard.index import ShardedIndex
        from repro.shard.partitioner import (
            GridPartitioner,
            partitioner_from_spec,
        )

        config_spec = dict(self._config)
        if self._params:
            config_spec["params"] = dict(self._params)
        config = config_from_spec(config_spec)

        index: "SpatialIndexFacade"
        if self._kind == "sharded":
            if self._partitioner_spec is not None:
                partitioner = partitioner_from_spec(self._partitioner_spec)
            else:
                partitioner = GridPartitioner.for_shards(
                    self._shards if self._shards is not None else 4
                )
            index = ShardedIndex(config, partitioner=partitioner)
            if self._rebalance is not None:
                from repro.shard.rebalance import ShardRebalancer

                index.attach_rebalancer(
                    ShardRebalancer.from_spec(self._rebalance, index.num_shards)
                )
            if self._adaptive is not None:
                from repro.shard.adaptive import AdaptiveStrategyController

                index.attach_adaptive(
                    AdaptiveStrategyController.from_spec(
                        self._adaptive, index.num_shards
                    )
                )
        else:
            index = MovingObjectIndex(config)
        if self._engine:
            index.engine_defaults = dict(self._engine)
        if self._durability is not None:
            from repro.durability.commit import DurabilityManager

            index.attach_durability(DurabilityManager.from_spec(self._durability))
        if self._parallel is not None:
            index.set_parallel(
                backend=self._parallel["backend"],
                workers=self._parallel.get("workers"),
            )
        return index

    def to_json(self) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.spec(), sort_keys=True)


__all__ = [
    "IndexBuilder",
    "config_from_spec",
    "config_to_spec",
    "index_spec",
    "open_index",
]
