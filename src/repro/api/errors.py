"""Structured error taxonomy of the typed operation API.

Every failure the public surface can signal is an :class:`OperationError`
subclass, so callers catch one base class instead of fishing ``KeyError`` /
``ValueError`` / ``TypeError`` out of deep call stacks.  Each concrete error
*also* inherits the builtin exception the pre-v2 tuple API raised for the
same condition (``UnknownObjectError`` is a ``KeyError``, and so on), which
is what lets the legacy surface keep its exact observable behaviour while
the typed surface documents one coherent taxonomy.

>>> from repro.api.errors import OperationError, UnknownObjectError
>>> issubclass(UnknownObjectError, OperationError)
True
>>> issubclass(UnknownObjectError, KeyError)  # legacy-compatible
True
>>> raise UnknownObjectError(42)
Traceback (most recent call last):
    ...
repro.api.errors.UnknownObjectError: object 42 is not in the index
"""

from __future__ import annotations

from typing import Any


class OperationError(Exception):
    """Base class of every error the typed operation API raises."""


class UnknownObjectError(OperationError, KeyError):
    """An ``Update`` or strict ``Delete`` named an object id that is not indexed."""

    def __init__(self, oid: int) -> None:
        super().__init__(oid)
        self.oid = oid

    def __str__(self) -> str:
        return f"object {self.oid} is not in the index"


class DuplicateObjectError(OperationError, ValueError):
    """An ``Insert`` named an object id that is already indexed."""

    def __init__(self, oid: int) -> None:
        super().__init__(f"object {oid} already exists; use update()")
        self.oid = oid


class InvalidWindowError(OperationError, TypeError):
    """A ``RangeQuery`` carried something that is not a query window."""

    def __init__(self, window: Any) -> None:
        super().__init__(f"query operand must be a Rect, got {window!r}")
        self.window = window


class InvalidNeighborCountError(OperationError, ValueError):
    """A ``KNN`` asked for a negative or non-integer number of neighbours."""

    def __init__(self, k: Any) -> None:
        super().__init__(f"k must be a non-negative integer, got {k!r}")
        self.k = k


class InvalidOperationError(OperationError, ValueError):
    """An operation could not be parsed (unknown kind, wrong arity, bad operand)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)


class CheckpointError(OperationError, ValueError):
    """A checkpoint file could not be written or restored.

    Raised by :func:`repro.core.persistence.load_index` for unsupported
    format versions and truncated/garbled checkpoint documents.  Inherits
    ``ValueError`` because that is what ``load_index`` raised pre-durability,
    so legacy ``except ValueError`` handlers keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


class CorruptLogError(OperationError, ValueError):
    """A write-ahead-log frame is structurally corrupt.

    Distinct from a *torn* frame (an incomplete tail write, which recovery
    silently truncates at): a corrupt frame passes the length/CRC checks yet
    decodes to nonsense — an unknown record kind, a record overrunning its
    frame, or a log sequence number running backwards.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


__all__ = [
    "OperationError",
    "UnknownObjectError",
    "DuplicateObjectError",
    "InvalidWindowError",
    "InvalidNeighborCountError",
    "InvalidOperationError",
    "CheckpointError",
    "CorruptLogError",
]
