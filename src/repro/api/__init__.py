"""repro.api — the typed public operation surface (API v2).

This package is the single schema through which the index stack is driven:

* :mod:`repro.api.operations` — frozen :class:`Operation` dataclasses
  (:class:`Insert`, :class:`Update`, :class:`Delete`, :class:`RangeQuery`,
  :class:`KNN`, plus the shard-internal :class:`Migrate`) with
  ``from_tuple``/``normalise`` adapters bridging the legacy tuple surface
  and the engine normal form;
* :mod:`repro.api.errors` — the structured error taxonomy
  (:class:`UnknownObjectError`, :class:`DuplicateObjectError`,
  :class:`InvalidWindowError`, ...), each error also inheriting the builtin
  exception the legacy surface raised for the same condition;
* :mod:`repro.api.results` — :class:`OperationResult`,
  :class:`BatchReport`, and the streaming :class:`QueryCursor`;
* :mod:`repro.api.builder` — the declarative entry point
  :func:`open_index` and the fluent :class:`IndexBuilder`, both speaking
  one JSON-round-trippable spec shared with persistence checkpoints.

Typical usage::

    import repro
    from repro.api import KNN, RangeQuery, Update

    index = repro.open_index({"kind": "sharded", "shards": 4,
                              "config": {"strategy": "GBU"}})
    index.load(initial_objects)

    index.execute(Update(42, Point(0.30, 0.41)))
    cursor = index.execute(RangeQuery(Rect(0.2, 0.2, 0.4, 0.5))).cursor()
    first_ten = cursor.fetch(10)          # streaming: pays only what it reads

    report = index.execute_many([Update(7, p1), Update(9, p2), KNN(p3, 5)])
    print(report.describe())

>>> from repro.api import Operation, Update
>>> from repro.geometry import Point
>>> Operation.from_tuple(("update", 1, Point(0.5, 0.5))) == Update(1, Point(0.5, 0.5))
True
"""

from repro.api.builder import (
    IndexBuilder,
    config_from_spec,
    config_to_spec,
    index_spec,
    open_index,
)
from repro.api.errors import (
    CheckpointError,
    CorruptLogError,
    DuplicateObjectError,
    InvalidNeighborCountError,
    InvalidOperationError,
    InvalidWindowError,
    OperationError,
    UnknownObjectError,
)
from repro.api.operations import (
    KNN,
    Delete,
    Insert,
    Migrate,
    Operation,
    OperationLike,
    RangeQuery,
    Update,
)
from repro.api.results import BatchReport, OperationResult, QueryCursor

__all__ = [
    # operations
    "Operation",
    "OperationLike",
    "Insert",
    "Update",
    "Delete",
    "RangeQuery",
    "KNN",
    "Migrate",
    # errors
    "OperationError",
    "UnknownObjectError",
    "DuplicateObjectError",
    "InvalidWindowError",
    "InvalidNeighborCountError",
    "InvalidOperationError",
    "CheckpointError",
    "CorruptLogError",
    # results
    "OperationResult",
    "BatchReport",
    "QueryCursor",
    # construction
    "IndexBuilder",
    "open_index",
    "index_spec",
    "config_to_spec",
    "config_from_spec",
]
