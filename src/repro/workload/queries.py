"""Query workload.

The paper issues window (range) queries whose centres are uniformly
distributed over the data space and whose side lengths are uniform in
``[0, 0.1]`` (Section 5: "Query rectangles are uniformly distributed with
dimensions in the range of [0, 0.1]").  The throughput experiment uses a
smaller range, ``[0, 0.01]``.

:class:`QueryWorkload` generates such windows reproducibly and clips them to
the unit square.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Union

from repro.geometry import Rect


class QueryWorkload:
    """Generator of uniformly distributed query windows.

    Parameters
    ----------
    max_side:
        Upper bound of the uniformly drawn window side length.
    min_side:
        Lower bound of the window side length (0 produces point-like
        windows occasionally, exactly as the paper's range ``[0, 0.1]``
        allows).
    seed:
        Seed or :class:`random.Random` for reproducibility.
    """

    def __init__(
        self,
        max_side: float = 0.1,
        min_side: float = 0.0,
        seed: Union[int, random.Random, None] = 0,
    ) -> None:
        if max_side < 0 or min_side < 0 or min_side > max_side:
            raise ValueError("require 0 <= min_side <= max_side")
        self.max_side = max_side
        self.min_side = min_side
        self.rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    def next_window(self) -> Rect:
        """One query window, clipped to the unit square."""
        width = self.rng.uniform(self.min_side, self.max_side)
        height = self.rng.uniform(self.min_side, self.max_side)
        cx = self.rng.random()
        cy = self.rng.random()
        xmin = max(0.0, cx - width / 2.0)
        ymin = max(0.0, cy - height / 2.0)
        xmax = min(1.0, cx + width / 2.0)
        ymax = min(1.0, cy + height / 2.0)
        return Rect(xmin, ymin, xmax, ymax)

    def windows(self, count: int) -> List[Rect]:
        """A list of *count* query windows."""
        return [self.next_window() for _ in range(count)]

    def iter_windows(self, count: int) -> Iterator[Rect]:
        """Iterate over *count* query windows without materialising the list."""
        for _ in range(count):
            yield self.next_window()
