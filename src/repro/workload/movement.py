"""Object movement model.

Between consecutive updates an object moves a random distance bounded by the
workload's *maximum distance moved* parameter (Table 1: 0.003 to 0.15, with a
default of 0.03).  The movement model draws, per update, a displacement
vector whose components are uniform in ``[-max_distance, +max_distance]``,
and keeps objects inside the unit square by clamping — the same behaviour the
GSTD-style generator of the paper exhibits with its "adjustment" option.

Optionally, a fraction of objects can be given a persistent drift direction
("trend"), which produces the directional movement GBU's directional MBR
extension was designed for; the sensitivity benchmarks use pure random
movement to match the paper, while one ablation exercises the trend mode.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Union

from repro.geometry import Point


class MovementModel:
    """Generates successive positions for moving objects.

    Parameters
    ----------
    max_distance:
        Upper bound on the per-axis displacement between consecutive updates
        of the same object.
    seed:
        Seed or :class:`random.Random` instance for reproducibility.
    trend_fraction:
        Fraction of objects (chosen by object id hash) that move with a
        persistent drift direction instead of a fresh random direction each
        update.
    trend_strength:
        How much of a trending object's displacement follows its drift
        direction (the remainder stays random).
    """

    def __init__(
        self,
        max_distance: float = 0.03,
        seed: Union[int, random.Random, None] = 0,
        trend_fraction: float = 0.0,
        trend_strength: float = 0.8,
    ) -> None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if not 0.0 <= trend_fraction <= 1.0:
            raise ValueError("trend_fraction must be in [0, 1]")
        if not 0.0 <= trend_strength <= 1.0:
            raise ValueError("trend_strength must be in [0, 1]")
        self.max_distance = max_distance
        self.rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        self.trend_fraction = trend_fraction
        self.trend_strength = trend_strength
        self._trend_direction: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def next_position(self, oid: int, current: Point) -> Point:
        """The object's next position after one movement step."""
        dx = self.rng.uniform(-self.max_distance, self.max_distance)
        dy = self.rng.uniform(-self.max_distance, self.max_distance)
        if self.trend_fraction > 0.0 and self._is_trending(oid):
            angle = self._direction_of(oid)
            drift = self.max_distance * self.trend_strength
            dx = (1.0 - self.trend_strength) * dx + drift * math.cos(angle)
            dy = (1.0 - self.trend_strength) * dy + drift * math.sin(angle)
        return current.translated(dx, dy).clamped()

    # ------------------------------------------------------------------
    def _is_trending(self, oid: int) -> bool:
        # Deterministic per-object choice so re-running a workload gives the
        # same trending set regardless of the order updates are generated in.
        return (hash(oid) % 1000) / 1000.0 < self.trend_fraction

    def _direction_of(self, oid: int) -> float:
        direction = self._trend_direction.get(oid)
        if direction is None:
            direction = self.rng.uniform(0.0, 2.0 * math.pi)
            self._trend_direction[oid] = direction
        return direction

    def with_max_distance(self, max_distance: float) -> "MovementModel":
        """A copy of this model with a different maximum distance (fresh RNG state)."""
        return MovementModel(
            max_distance=max_distance,
            seed=random.Random(self.rng.random()),
            trend_fraction=self.trend_fraction,
            trend_strength=self.trend_strength,
        )
