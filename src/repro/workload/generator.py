"""GSTD-style workload generator.

:class:`WorkloadGenerator` realises a :class:`~repro.workload.spec.WorkloadSpec`:
it produces the initial object placement, a reproducible stream of update
requests (object id, old position, new position), and the query windows.
Every stream is driven by the spec's seed, so two generators built from the
same spec produce identical workloads — the property that lets the benchmark
harness run TD, LBU and GBU on byte-identical inputs, as the paper does.

The generator keeps track of each object's current position: updates are
"move object *o* from where it is to a new nearby position", which is exactly
the semantics of the paper's monitoring applications (the new position
depends on the previous one through the movement model).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Tuple

import repro.api.operations as api_ops
from repro.geometry import Point, Rect
from repro.workload.distributions import initial_positions
from repro.workload.movement import MovementModel
from repro.workload.queries import QueryWorkload
from repro.workload.spec import WorkloadSpec

UpdateRequest = Tuple[int, Point, Point]  # (oid, old_position, new_position)


def _chunks(items: Iterable, batch_size: int) -> Iterator[List]:
    """Yield *items* in lists of *batch_size* (the last one may be shorter)."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: List = []
    for item in items:
        batch.append(item)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class WorkloadGenerator:
    """Produces the initial data, update stream and query stream of a spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._movement = MovementModel(
            max_distance=spec.max_distance, seed=random.Random(spec.seed + 1)
        )
        self._queries = QueryWorkload(
            max_side=spec.query_max_side,
            min_side=spec.query_min_side,
            seed=random.Random(spec.seed + 2),
        )
        distribution_kwargs = {}
        if spec.distribution.lower() == "hotspot":
            distribution_kwargs = {
                "cells": spec.hotspot_cells,
                "exponent": spec.hotspot_exponent,
            }
        self._positions: List[Point] = initial_positions(
            spec.distribution,
            spec.num_objects,
            seed=random.Random(spec.seed),
            **distribution_kwargs,
        )

    # ------------------------------------------------------------------
    # Initial data
    # ------------------------------------------------------------------
    def initial_objects(self) -> List[Tuple[int, Point]]:
        """``(oid, position)`` pairs for the initial index load."""
        return list(enumerate(self._positions))

    def current_position(self, oid: int) -> Point:
        """The generator's view of where *oid* currently is."""
        return self._positions[oid]

    # ------------------------------------------------------------------
    # Update stream
    # ------------------------------------------------------------------
    def updates(self, count: int = None) -> Iterator[UpdateRequest]:
        """Yield *count* update requests (default: the spec's ``num_updates``).

        Objects are picked uniformly at random; each request moves the picked
        object one movement-model step from its current position.  The
        generator's own position table advances as requests are produced, so
        consuming the stream twice requires two generators (by design — a
        workload is a single reproducible sequence).
        """
        if count is None:
            count = self.spec.num_updates
        for _ in range(count):
            oid = self._rng.randrange(self.spec.num_objects)
            old = self._positions[oid]
            new = self._movement.next_position(oid, old)
            self._positions[oid] = new
            yield oid, old, new

    # ------------------------------------------------------------------
    # Batched update stream (batch execution engine)
    # ------------------------------------------------------------------
    def update_batches(
        self, batch_size: int, count: int = None
    ) -> Iterator[List[UpdateRequest]]:
        """Yield the update stream chopped into lists of *batch_size*.

        The concatenation of the yielded batches is exactly the sequence
        :meth:`updates` would produce from the same generator state (the
        last batch may be shorter), so per-operation and batched executions
        of one spec consume byte-identical workloads — the property the
        batch-vs-per-op benchmark relies on.
        """
        return _chunks(self.updates(count), batch_size)

    # ------------------------------------------------------------------
    # Query stream
    # ------------------------------------------------------------------
    def queries(self, count: int = None) -> Iterator[Rect]:
        """Yield *count* query windows (default: the spec's ``num_queries``)."""
        if count is None:
            count = self.spec.num_queries
        return self._queries.iter_windows(count)

    # ------------------------------------------------------------------
    # Mixed stream (throughput experiment, Figure 8)
    # ------------------------------------------------------------------
    def mixed_operations(
        self, count: int, update_fraction: float
    ) -> Iterator[Tuple[str, object]]:
        """Yield *count* operations, a fraction of which are updates.

        Each yielded item is ``("update", (oid, old, new))`` or
        ``("query", window)`` — the legacy tuple shapes; :meth:`operations`
        is the typed form of the same stream.  The interleaving is random
        but reproducible, mirroring the 50-client mixed workload of the
        throughput study.
        """
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        update_stream = self.updates(count)  # drawn lazily; at most `count` are consumed
        for _ in range(count):
            if self._rng.random() < update_fraction:
                yield "update", next(update_stream)
            else:
                yield "query", self._queries.next_window()

    def operations(
        self, count: int, update_fraction: float
    ) -> Iterator["api_ops.Operation"]:
        """The mixed stream as typed :class:`~repro.api.operations.Operation` values.

        The native v2 form of :meth:`mixed_operations`: the identical seeded
        sequence (same RNG draws, same interleaving), with each item lifted
        into the typed operation model — :class:`~repro.api.operations.Update`
        or :class:`~repro.api.operations.RangeQuery` — ready for
        ``index.execute``/``execute_many`` or an engine session.
        """
        for item in self.mixed_operations(count, update_fraction):
            yield api_ops.Operation.from_tuple(item)

    def client_streams(
        self, num_clients: int, count: int, update_fraction: float
    ) -> List[List["api_ops.Operation"]]:
        """The typed mixed stream dealt round-robin onto *num_clients* streams.

        The concatenation of the streams, interleaved client by client, is
        exactly the sequence :meth:`operations` would produce from the same
        generator state, so a multi-client engine run consumes the
        byte-identical workload a shared-stream run would — only the
        assignment of operations to virtual clients differs.  Streams are
        materialised lists: the engine draws from them as clients go idle.
        """
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        streams: List[List["api_ops.Operation"]] = [[] for _ in range(num_clients)]
        for position, operation in enumerate(
            self.operations(count, update_fraction)
        ):
            streams[position % num_clients].append(operation)
        return streams

    def mixed_operation_batches(
        self, count: int, update_fraction: float, batch_size: int
    ) -> Iterator[List["api_ops.Operation"]]:
        """The typed :meth:`operations` stream chopped into *batch_size* lists.

        Batches respect the stream order, so feeding each batch to
        ``execute_many`` (queries act as barriers) yields the same query
        answers as driving the unbatched stream through per-op calls.
        """
        return _chunks(self.operations(count, update_fraction), batch_size)
