"""Declarative workload specification.

:class:`WorkloadSpec` captures the workload half of the paper's Table 1 — the
number of objects, the initial distribution, the number of updates and
queries, the maximum distance moved between updates, and the query-window
size range — independently of any index configuration.  The benchmark
harness combines one :class:`WorkloadSpec` with one
:class:`~repro.core.config.IndexConfig` per experimental point.

The paper runs at 1-10 million objects and updates; this reproduction scales
the defaults down (see DESIGN.md, "Substitutions") while keeping every ratio
configurable, so the spec also records the paper-scale values it stands in
for (``paper_num_objects`` etc.) purely for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one experiment workload."""

    num_objects: int = 10_000
    num_updates: int = 20_000
    num_queries: int = 1_000
    distribution: str = "uniform"
    max_distance: float = 0.03
    query_max_side: float = 0.1
    query_min_side: float = 0.0
    seed: int = 1
    #: Hotspot distribution shape (used only when ``distribution="hotspot"``):
    #: the space is a ``hotspot_cells x hotspot_cells`` grid whose cells get
    #: Zipf weights ``1/rank**hotspot_exponent``.
    hotspot_cells: int = 4
    hotspot_exponent: float = 1.5
    #: Paper-scale counterparts, recorded for reporting only.
    paper_num_objects: Optional[int] = 1_000_000
    paper_num_updates: Optional[int] = 1_000_000
    paper_num_queries: Optional[int] = 1_000_000

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if self.num_updates < 0 or self.num_queries < 0:
            raise ValueError("num_updates and num_queries must be non-negative")
        if self.max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if self.distribution.lower() not in (
            "uniform", "gaussian", "skew", "skewed", "hotspot"
        ):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.hotspot_cells <= 0:
            raise ValueError("hotspot_cells must be positive")
        if self.hotspot_exponent <= 0:
            raise ValueError("hotspot_exponent must be positive")

    def with_overrides(self, **changes) -> "WorkloadSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        return (
            f"objects={self.num_objects} updates={self.num_updates} "
            f"queries={self.num_queries} dist={self.distribution} "
            f"maxdist={self.max_distance:g} qside<={self.query_max_side:g}"
        )
