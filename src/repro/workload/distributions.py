"""Initial spatial distributions of the moving objects.

The paper evaluates three initial distributions (Figure 6(c)-(d)):

* **uniform** — positions drawn uniformly from the unit square (the default
  for every other experiment);
* **Gaussian** — positions clustered around the centre of the data space;
* **skewed** — positions concentrated in one corner region, leaving most of
  the space empty (the paper notes that queries are cheap for this
  distribution because "most of the space is empty").

Beyond the paper, the **hotspot** distribution assigns Zipf-skewed mass to
the cells of a regular grid: a few cells hold most of the objects while the
rest of the space stays sparsely populated.  This is the shard-imbalance
workload of the sharded index experiments — a uniform spatial partitioning
of a hotspot workload concentrates both data and update traffic on few
shards, which is exactly the skew scenario the ``shard_scaling`` figure
reports alongside its uniform baseline.

All generators take an explicit :class:`random.Random` instance or seed so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.geometry import Point

DistributionName = str

_VALID = ("uniform", "gaussian", "skewed", "hotspot")


def _rng(seed_or_rng: Union[int, random.Random, None]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def uniform_positions(count: int, seed: Union[int, random.Random, None] = 0) -> List[Point]:
    """*count* points drawn uniformly from the unit square."""
    rng = _rng(seed)
    return [Point(rng.random(), rng.random()) for _ in range(count)]


def gaussian_positions(
    count: int,
    seed: Union[int, random.Random, None] = 0,
    center: Point = Point(0.5, 0.5),
    sigma: float = 0.12,
) -> List[Point]:
    """*count* points normally distributed around *center* (clamped to the unit square)."""
    rng = _rng(seed)
    points = []
    for _ in range(count):
        x = rng.gauss(center.x, sigma)
        y = rng.gauss(center.y, sigma)
        points.append(Point(x, y).clamped())
    return points


def skewed_positions(
    count: int,
    seed: Union[int, random.Random, None] = 0,
    exponent: float = 3.0,
) -> List[Point]:
    """*count* points skewed towards the origin corner of the unit square.

    Coordinates are drawn as ``u**exponent`` with ``u`` uniform, so mass
    concentrates near zero and most of the data space stays empty.
    """
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = _rng(seed)
    return [Point(rng.random() ** exponent, rng.random() ** exponent) for _ in range(count)]


def hotspot_positions(
    count: int,
    seed: Union[int, random.Random, None] = 0,
    cells: int = 4,
    exponent: float = 1.5,
) -> List[Point]:
    """*count* points with Zipf-skewed occupancy over a ``cells x cells`` grid.

    Cell ranks are shuffled (seeded), cell *r* receives weight ``1/r**exponent``,
    and each point picks a weighted cell and a uniform position inside it.
    With the defaults roughly a third of all objects land in the single
    hottest cell, so any uniform spatial partitioning of the space yields
    strongly imbalanced shards.
    """
    if cells <= 0:
        raise ValueError("cells must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = _rng(seed)
    num_cells = cells * cells
    order = list(range(num_cells))
    rng.shuffle(order)
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_cells + 1)]
    points = []
    for cell in rng.choices(order, weights=weights, k=count):
        col, row = cell % cells, cell // cells
        points.append(
            Point((col + rng.random()) / cells, (row + rng.random()) / cells)
        )
    return points


def initial_positions(
    distribution: DistributionName,
    count: int,
    seed: Union[int, random.Random, None] = 0,
    **kwargs,
) -> List[Point]:
    """Dispatch on the distribution name used in experiment configurations.

    Extra keyword arguments are forwarded to the specific generator (the
    hotspot distribution takes ``cells`` and ``exponent``).
    """
    name = distribution.lower()
    if name == "uniform":
        return uniform_positions(count, seed, **kwargs)
    if name == "gaussian":
        return gaussian_positions(count, seed, **kwargs)
    if name in ("skew", "skewed"):
        return skewed_positions(count, seed, **kwargs)
    if name == "hotspot":
        return hotspot_positions(count, seed, **kwargs)
    raise ValueError(f"unknown distribution {distribution!r}; expected one of {_VALID}")
